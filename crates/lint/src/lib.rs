//! `mv-lint` library surface: the source-discipline pass (MV2xx) used by
//! the CLI's `--source` mode and by the fixture tests. The workload lint
//! (MV0xx/MV1xx) lives in the binary, which drives `mv-verify` and
//! `mv-audit` over the TPC-H workload.

pub mod source;
