//! `mv-lint` — the CI gate around the `mv-verify` analyzer.
//!
//! Builds the paper's section 5 workload (TPC-H catalog, random views and
//! queries with the benchmark seeds), registers the views in a matching
//! engine, and then:
//!
//! 1. lints every view definition and every query expression
//!    (`verify_view_expr` / `verify_expr`),
//! 2. runs the matcher over every query and re-verifies each produced
//!    substitute with the independent analyzer (`verify_substitute`),
//! 3. optionally (`--exec-check N`) cross-checks substitutes by executing
//!    both the substitute and the original query on small generated data
//!    and comparing row bags (rule MV018),
//! 4. optionally (`--audit`) runs the `mv-audit` completeness & catalog
//!    passes (rules MV101+) over the same engine and workload,
//! 5. optionally (`--maintain N`) registers every view with the
//!    `mv-maintain` driver, applies N insert/delete delta rounds to the
//!    generated base data, and audits after each round that maintained
//!    contents equal recompute-from-scratch (row-bag comparison, the
//!    `--exec-check` discipline) and that freshness-stamped serving is
//!    honest (rules MV401+).
//!
//! With `--source` the MV2xx source-discipline pass additionally lints
//! every workspace crate's `.rs` sources for concurrency hygiene (raw
//! sync primitives outside the `mv_parallel::sync` facade, relaxed
//! orderings, unguarded snapshot state, bare clock reads, lock unwraps
//! and expects); `--source-only` runs just that pass, skipping the
//! workload entirely.
//!
//! With `--prove` every substitute the matcher produces is additionally
//! run through the `mv-prove` bounded equivalence checker (MV3xx): the
//! symbolic pass first, then exhaustive enumeration of all constraint-
//! satisfying databases up to `--prove-k` rows per table. A refuted
//! rewrite reports MV301/MV302 with a replayable counterexample.
//!
//! The JSON report goes to stdout (or `--out FILE`); a human summary goes
//! to stderr. `--json` wraps the report in a machine-readable envelope
//! with per-gate counts (verify/audit/source/prove). Exit code 1 on any
//! ERROR diagnostic, and on warnings too under `--deny-warnings`.

use mv_bench::{build_workload, engine_with, DATA_SEED};
use mv_core::MatchConfig;
use mv_data::{generate_tpch, TpchScale};
use mv_exec::{bag_diff, execute_spjg, execute_substitute_with, materialize_view};
use mv_maintain::{audit_serving, Maintainer, TableDelta};
use mv_prove::{pair_tables, prove_diagnostics, prove_with_memo, ProveConfig, ProveCtx, ProveMemo};
use mv_verify::{json_string, Diagnostic, Report, RuleId, Severity, VerifyContext};
use mv_verify::{verify_expr, verify_substitute, verify_view_expr};
use std::process::ExitCode;

const USAGE: &str = "\
mv-lint: static soundness lint over the TPC-H view-matching workload

USAGE:
    mv-lint [OPTIONS]

OPTIONS:
    --views N          views to generate and register   [default: 200]
    --queries N        queries to generate and match    [default: 100]
    --exec-check N     execute up to N (query, substitute) pairs on tiny
                       generated data and compare row bags [default: 0]
    --audit            also run the mv-audit passes: filter-tree index
                       completeness, catalog redundancy, metadata (MV101+)
    --maintain N       apply N delta rounds through the mv-maintain driver
                       and audit maintained contents + freshness-stamped
                       serving (MV401+) [default: 0]
    --source           also run the MV2xx source-discipline pass over the
                       workspace's own .rs files
    --source-only      run only the MV2xx source pass (skips the workload)
    --source-root DIR  workspace root for --source [default: auto-detect]
    --prove            prove every produced substitute equivalent with the
                       mv-prove bounded checker (MV3xx)
    --prove-k N        rows-per-table bound for --prove [default: 2]
    --prove-budget N   databases enumerated per proof   [default: 20000]
    --prove-jobs N     worker threads for the enumerative pass: 0 = auto,
                       1 = serial; never changes verdicts [default: 0]
    --prove-wall-ms N  fail the prove gate when its wall time exceeds N ms
                       (0 = no budget) [default: 0]
    --deny-warnings    exit nonzero on warnings, not just errors
    --json             wrap the report in a machine-readable envelope with
                       per-gate counts (verify/audit/source/prove)
    --out FILE         write the JSON report to FILE instead of stdout
    -h, --help         print this help
";

struct Args {
    views: usize,
    queries: usize,
    exec_check: usize,
    audit: bool,
    maintain: usize,
    source: bool,
    source_only: bool,
    source_root: Option<String>,
    prove: bool,
    prove_k: usize,
    prove_budget: u64,
    prove_jobs: usize,
    prove_wall_ms: u64,
    deny_warnings: bool,
    json: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        views: 200,
        queries: 100,
        exec_check: 0,
        audit: false,
        maintain: 0,
        source: false,
        source_only: false,
        source_root: None,
        prove: false,
        prove_k: 2,
        prove_budget: 20_000,
        prove_jobs: 0,
        prove_wall_ms: 0,
        deny_warnings: false,
        json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--views" => args.views = parse_num(&value(&mut it, "--views"), "--views"),
            "--queries" => args.queries = parse_num(&value(&mut it, "--queries"), "--queries"),
            "--exec-check" => {
                args.exec_check = parse_num(&value(&mut it, "--exec-check"), "--exec-check")
            }
            "--audit" => args.audit = true,
            "--maintain" => args.maintain = parse_num(&value(&mut it, "--maintain"), "--maintain"),
            "--source" => args.source = true,
            "--source-only" => {
                args.source = true;
                args.source_only = true;
            }
            "--source-root" => args.source_root = Some(value(&mut it, "--source-root")),
            "--prove" => args.prove = true,
            "--prove-k" => args.prove_k = parse_num(&value(&mut it, "--prove-k"), "--prove-k"),
            "--prove-budget" => {
                args.prove_budget =
                    parse_num(&value(&mut it, "--prove-budget"), "--prove-budget") as u64
            }
            "--prove-jobs" => {
                args.prove_jobs = parse_num(&value(&mut it, "--prove-jobs"), "--prove-jobs")
            }
            "--prove-wall-ms" => {
                args.prove_wall_ms =
                    parse_num(&value(&mut it, "--prove-wall-ms"), "--prove-wall-ms") as u64
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--json" => args.json = true,
            "--out" => args.out = Some(value(&mut it, "--out")),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number {s:?} for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut report = Report::new();

    // MV2xx source-discipline pass over the workspace's own sources.
    let mut source_summary = String::new();
    let mut source_ms = 0u128;
    if args.source {
        // Phase wall time for the report only: mv-lint: allow(MV204)
        let source_start = std::time::Instant::now();
        let root = match &args.source_root {
            Some(dir) => std::path::PathBuf::from(dir),
            None => {
                let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
                match mv_lint::source::find_workspace_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!(
                            "mv-lint: cannot locate the workspace root for --source; \
                             pass --source-root DIR"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
        };
        match mv_lint::source::lint_workspace(&root) {
            Ok((diags, scanned)) => {
                source_summary = format!(", {} source files / {} MV2xx", scanned, diags.len());
                report.extend(diags);
            }
            Err(e) => {
                eprintln!("mv-lint: source scan under {} failed: {e}", root.display());
                return ExitCode::from(2);
            }
        }
        source_ms = source_start.elapsed().as_millis();
    }

    let mut stats = if args.source_only {
        WorkloadStats::default()
    } else {
        workload_lint(&args, &mut report)
    };
    stats.source_ms = source_ms;
    let substitutes = stats.substitutes;

    let prove_summary = if args.prove {
        format!(
            ", {} proved / {} refuted / {} inconclusive at k={} in {} ms ({} memo hits)",
            stats.proved,
            stats.refuted,
            stats.inconclusive,
            args.prove_k,
            stats.prove_ms,
            stats.memo_hits
        )
    } else {
        String::new()
    };
    let maintain_summary = if args.maintain > 0 {
        format!(
            ", {} maintain rounds ({} incremental / {} recompute views) in {} ms",
            stats.maintain_rounds,
            stats.maintain_incremental,
            stats.maintain_recompute,
            stats.maintain_ms
        )
    } else {
        String::new()
    };
    let title = if args.source_only {
        format!("mv-lint: source-discipline pass{source_summary}")
    } else {
        format!(
            "mv-lint: {} views, {} queries, {} substitutes, {} exec-checked, {} audit findings{}{}{}",
            args.views,
            args.queries,
            substitutes,
            stats.exec_checked,
            stats.audit_findings,
            source_summary,
            prove_summary,
            maintain_summary
        )
    };
    let json = if args.json {
        envelope_json(&args, &report, &stats, &title)
    } else {
        report.to_json(&title)
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("mv-lint: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => print!("{json}"),
    }

    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    eprintln!("mv-lint: {substitutes} substitutes verified, {errors} errors, {warnings} warnings");
    eprintln!(
        "mv-lint: phase wall: verify {} ms, exec {} ms, prove {} ms, audit {} ms, source {} ms, \
         maintain {} ms",
        stats.verify_ms,
        stats.exec_ms,
        stats.prove_ms,
        stats.audit_ms,
        stats.source_ms,
        stats.maintain_ms
    );
    for d in &report.diagnostics {
        if d.severity == Severity::Error || (args.deny_warnings && d.severity == Severity::Warning)
        {
            eprintln!("  {d}");
        }
    }
    // The prove gate also has a wall-clock budget: a slow prover is a CI
    // regression even when every pair proves.
    let over_wall_budget =
        args.prove && args.prove_wall_ms > 0 && stats.prove_ms > args.prove_wall_ms as u128;
    if over_wall_budget {
        eprintln!(
            "mv-lint: prove gate exceeded its wall budget: {} ms > {} ms",
            stats.prove_ms, args.prove_wall_ms
        );
    }
    if errors > 0 || over_wall_budget || (args.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Counters the workload lint reports back for the title line and the
/// `--json` envelope.
#[derive(Default)]
struct WorkloadStats {
    substitutes: usize,
    exec_checked: usize,
    audit_findings: usize,
    proved: usize,
    refuted: usize,
    inconclusive: usize,
    memo_hits: u64,
    maintain_rounds: usize,
    maintain_incremental: usize,
    maintain_recompute: usize,
    verify_ms: u128,
    exec_ms: u128,
    prove_ms: u128,
    audit_ms: u128,
    source_ms: u128,
    maintain_ms: u128,
}

/// The workload lint (MV0xx/MV1xx, plus MV3xx under `--prove`): verify
/// every view, query, and produced substitute; optionally exec-check,
/// prove, and audit.
fn workload_lint(args: &Args, report: &mut Report) -> WorkloadStats {
    let workload = build_workload(args.views, args.queries);
    let engine = engine_with(&workload, args.views, MatchConfig::default());
    let checks = engine.check_constraints();

    // Phase wall time for the report only: mv-lint: allow(MV204)
    let verify_start = std::time::Instant::now();
    // Expression-level rules over every registered view and every query.
    for (_, view) in engine.views().iter() {
        report.extend(verify_view_expr(
            &workload.catalog,
            &checks,
            &view.expr,
            &view.name,
        ));
    }
    for (i, query) in workload.queries.iter().enumerate() {
        report.extend(verify_expr(
            &workload.catalog,
            &checks,
            query,
            &format!("q{i}"),
        ));
    }

    // Substitute-level rules over everything the matcher produces.
    let ctx = VerifyContext::new(&workload.catalog, &checks);
    let mut pairs = Vec::new();
    for (i, query) in workload.queries.iter().enumerate() {
        for (id, sub) in engine.find_substitutes(query) {
            let views = engine.views();
            let view = views.get(id);
            let diags =
                verify_substitute(&ctx, query, &view.expr, &sub, &view.name, &format!("q{i}"));
            let flagged = diags.iter().any(|d| d.severity == Severity::Error);
            report.extend(diags);
            pairs.push((i, id, sub, flagged));
        }
    }
    let mut stats = WorkloadStats {
        substitutes: pairs.len(),
        verify_ms: verify_start.elapsed().as_millis(),
        ..WorkloadStats::default()
    };

    // Executed-plan cross-check on tiny generated data, statically flagged
    // substitutes first so a real unsoundness gets confirmed dynamically.
    if args.exec_check > 0 {
        // Phase wall time for the report only: mv-lint: allow(MV204)
        let exec_start = std::time::Instant::now();
        let (db, _) = generate_tpch(&TpchScale::tiny(), DATA_SEED);
        pairs.sort_by_key(|(_, _, _, flagged)| !flagged);
        let views = engine.views();
        for (i, id, sub, _) in pairs.iter().take(args.exec_check) {
            let view = views.get(*id);
            let view_rows = materialize_view(&db, view);
            let from_view = execute_substitute_with(&db, &view_rows, sub);
            let direct = execute_spjg(&db, &workload.queries[*i]);
            stats.exec_checked += 1;
            if let Some(diff) = bag_diff(&from_view, &direct) {
                report.push(
                    Diagnostic::error(
                        RuleId::ExecMismatch,
                        format!("substitute rows differ from query rows: {diff}"),
                    )
                    .with_view(&view.name)
                    .with_query(format!("q{i}")),
                );
            }
        }
        stats.exec_ms = exec_start.elapsed().as_millis();
    }

    // Bounded equivalence proof of every produced substitute (MV3xx):
    // the symbolic pass first, then exhaustive enumeration up to k —
    // compiled plan programs, chunked across `--prove-jobs` workers, with
    // a workload-scoped memo of already-proved canonical pairs.
    if args.prove {
        let prove_ctx = ProveCtx::new(&workload.catalog, &checks);
        let cfg = ProveConfig {
            k: args.prove_k,
            max_databases: args.prove_budget,
            symbolic: true,
            jobs: args.prove_jobs,
        };
        let mut memo = ProveMemo::new();
        let views = engine.views();
        // Wall-clock for the report only: mv-lint: allow(MV204)
        let start = std::time::Instant::now();
        for (i, id, sub, _) in &pairs {
            let view = views.get(*id);
            let query = &workload.queries[*i];
            let outcome = prove_with_memo(&prove_ctx, query, &view.expr, sub, &cfg, &mut memo);
            if outcome.is_proved() {
                stats.proved += 1;
            } else if outcome.is_refuted() {
                stats.refuted += 1;
            } else {
                stats.inconclusive += 1;
            }
            let tables = pair_tables(query, &view.expr, sub);
            report.extend(prove_diagnostics(
                &outcome,
                &view.name,
                &format!("q{i}"),
                &tables,
                &cfg,
            ));
        }
        stats.prove_ms = start.elapsed().as_millis();
        stats.memo_hits = memo.hits();
    }

    // Incremental-maintenance gate (MV401+): register every view with
    // the mv-maintain driver over the same tiny generated data the
    // exec-check uses, drive insert/delete delta rounds through base
    // tables the views actually read, and audit after each round that
    // maintained contents equal recompute-from-scratch; finish with a
    // freshness-stamped serving audit over the whole query workload.
    if args.maintain > 0 {
        // Phase wall time for the report only: mv-lint: allow(MV204)
        let maintain_start = std::time::Instant::now();
        let (db, _) = generate_tpch(&TpchScale::tiny(), DATA_SEED);
        let mut maintainer = Maintainer::new(db);
        let views = engine.views();
        let mut tables: Vec<_> = Vec::new();
        for (id, view) in views.iter() {
            match maintainer.register(id, view) {
                mv_maintain::MaintainStrategy::Incremental => stats.maintain_incremental += 1,
                mv_maintain::MaintainStrategy::Recompute => stats.maintain_recompute += 1,
            }
            tables.extend(view.expr.tables.iter().copied());
        }
        tables.sort_unstable();
        tables.dedup();
        for round in 0..args.maintain {
            let Some(&table) = tables.get(round % tables.len().max(1)) else {
                break;
            };
            let rows = maintainer.db().rows(table);
            if rows.is_empty() {
                continue;
            }
            // One row leaves, a copy of another arrives: both delta
            // directions every round, net row count unchanged.
            let delta = TableDelta {
                table,
                inserts: vec![rows[(round + 1) % rows.len()].clone()],
                deletes: vec![rows[round % rows.len()].clone()],
            };
            maintainer.apply_with_engine(&delta, &engine);
            for (id, _) in views.iter() {
                if maintainer.is_dirty(id) {
                    maintainer.refresh_with_engine(id, &engine);
                }
            }
            stats.maintain_rounds += 1;
            report.extend(maintainer.audit());
        }
        report.extend(audit_serving(&engine, &maintainer, &workload.queries));
        stats.maintain_ms = maintain_start.elapsed().as_millis();
    }

    // Completeness & catalog audit (MV101+) over the same engine/workload.
    if args.audit {
        // Phase wall time for the report only: mv-lint: allow(MV204)
        let audit_start = std::time::Instant::now();
        let audit = mv_audit::audit_all(&engine, &workload.queries);
        stats.audit_findings = audit.diagnostics.len();
        report.extend(audit.diagnostics);
        stats.audit_ms = audit_start.elapsed().as_millis();
    }

    stats
}

/// The `--json` envelope: the standard report fields plus a `gates`
/// object with per-band diagnostic counts, so CI can route failures
/// without parsing rule codes out of the flat list. Band = code prefix:
/// MV0xx verify, MV1xx audit, MV2xx source, MV3xx prove, MV4xx maintain.
fn envelope_json(args: &Args, report: &Report, stats: &WorkloadStats, title: &str) -> String {
    let band = |prefix: &str| {
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule.code().starts_with(prefix))
            .count()
    };
    let gate = |name: &str, enabled: bool, count: usize, extra: &str| {
        format!(
            "    {}: {{\"enabled\": {enabled}, \"diagnostics\": {count}{extra}}}",
            json_string(name)
        )
    };
    let prove_extra = format!(
        ", \"proved\": {}, \"refuted\": {}, \"inconclusive\": {}, \"memo_hits\": {}, \
         \"wall_ms\": {}, \"wall_budget_ms\": {}",
        stats.proved,
        stats.refuted,
        stats.inconclusive,
        stats.memo_hits,
        stats.prove_ms,
        args.prove_wall_ms
    );
    let verify_extra = format!(
        ", \"exec_checked\": {}, \"wall_ms\": {}, \"exec_wall_ms\": {}",
        stats.exec_checked, stats.verify_ms, stats.exec_ms
    );
    let audit_extra = format!(", \"wall_ms\": {}", stats.audit_ms);
    let source_extra = format!(", \"wall_ms\": {}", stats.source_ms);
    let maintain_extra = format!(
        ", \"rounds\": {}, \"incremental\": {}, \"recompute\": {}, \"wall_ms\": {}",
        stats.maintain_rounds,
        stats.maintain_incremental,
        stats.maintain_recompute,
        stats.maintain_ms
    );
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"report\": {},\n", json_string(title)));
    out.push_str(&format!(
        "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n",
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Info)
    ));
    out.push_str("  \"gates\": {\n");
    out.push_str(&gate(
        "verify",
        !args.source_only,
        band("MV0"),
        &verify_extra,
    ));
    out.push_str(",\n");
    out.push_str(&gate("audit", args.audit, band("MV1"), &audit_extra));
    out.push_str(",\n");
    out.push_str(&gate("source", args.source, band("MV2"), &source_extra));
    out.push_str(",\n");
    out.push_str(&gate("prove", args.prove, band("MV3"), &prove_extra));
    out.push_str(",\n");
    out.push_str(&gate(
        "maintain",
        args.maintain > 0,
        band("MV4"),
        &maintain_extra,
    ));
    out.push_str("\n  },\n");
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&d.to_json());
        if i + 1 < report.diagnostics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}
