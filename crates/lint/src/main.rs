//! `mv-lint` — the CI gate around the `mv-verify` analyzer.
//!
//! Builds the paper's section 5 workload (TPC-H catalog, random views and
//! queries with the benchmark seeds), registers the views in a matching
//! engine, and then:
//!
//! 1. lints every view definition and every query expression
//!    (`verify_view_expr` / `verify_expr`),
//! 2. runs the matcher over every query and re-verifies each produced
//!    substitute with the independent analyzer (`verify_substitute`),
//! 3. optionally (`--exec-check N`) cross-checks substitutes by executing
//!    both the substitute and the original query on small generated data
//!    and comparing row bags (rule MV018),
//! 4. optionally (`--audit`) runs the `mv-audit` completeness & catalog
//!    passes (rules MV101+) over the same engine and workload.
//!
//! With `--source` the MV2xx source-discipline pass additionally lints
//! every workspace crate's `.rs` sources for concurrency hygiene (raw
//! sync primitives outside the `mv_parallel::sync` facade, relaxed
//! orderings, unguarded snapshot state, bare clock reads, lock unwraps);
//! `--source-only` runs just that pass, skipping the workload entirely.
//!
//! The JSON report goes to stdout (or `--out FILE`); a human summary goes
//! to stderr. Exit code 1 on any ERROR diagnostic, and on warnings too
//! under `--deny-warnings`.

use mv_bench::{build_workload, engine_with, DATA_SEED};
use mv_core::MatchConfig;
use mv_data::{generate_tpch, TpchScale};
use mv_exec::{bag_diff, execute_spjg, execute_substitute_with, materialize_view};
use mv_verify::{verify_expr, verify_substitute, verify_view_expr};
use mv_verify::{Diagnostic, Report, RuleId, Severity, VerifyContext};
use std::process::ExitCode;

const USAGE: &str = "\
mv-lint: static soundness lint over the TPC-H view-matching workload

USAGE:
    mv-lint [OPTIONS]

OPTIONS:
    --views N          views to generate and register   [default: 200]
    --queries N        queries to generate and match    [default: 100]
    --exec-check N     execute up to N (query, substitute) pairs on tiny
                       generated data and compare row bags [default: 0]
    --audit            also run the mv-audit passes: filter-tree index
                       completeness, catalog redundancy, metadata (MV101+)
    --source           also run the MV2xx source-discipline pass over the
                       workspace's own .rs files
    --source-only      run only the MV2xx source pass (skips the workload)
    --source-root DIR  workspace root for --source [default: auto-detect]
    --deny-warnings    exit nonzero on warnings, not just errors
    --out FILE         write the JSON report to FILE instead of stdout
    -h, --help         print this help
";

struct Args {
    views: usize,
    queries: usize,
    exec_check: usize,
    audit: bool,
    source: bool,
    source_only: bool,
    source_root: Option<String>,
    deny_warnings: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        views: 200,
        queries: 100,
        exec_check: 0,
        audit: false,
        source: false,
        source_only: false,
        source_root: None,
        deny_warnings: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--views" => args.views = parse_num(&value(&mut it, "--views"), "--views"),
            "--queries" => args.queries = parse_num(&value(&mut it, "--queries"), "--queries"),
            "--exec-check" => {
                args.exec_check = parse_num(&value(&mut it, "--exec-check"), "--exec-check")
            }
            "--audit" => args.audit = true,
            "--source" => args.source = true,
            "--source-only" => {
                args.source = true;
                args.source_only = true;
            }
            "--source-root" => args.source_root = Some(value(&mut it, "--source-root")),
            "--deny-warnings" => args.deny_warnings = true,
            "--out" => args.out = Some(value(&mut it, "--out")),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number {s:?} for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut report = Report::new();

    // MV2xx source-discipline pass over the workspace's own sources.
    let mut source_summary = String::new();
    if args.source {
        let root = match &args.source_root {
            Some(dir) => std::path::PathBuf::from(dir),
            None => {
                let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
                match mv_lint::source::find_workspace_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!(
                            "mv-lint: cannot locate the workspace root for --source; \
                             pass --source-root DIR"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
        };
        match mv_lint::source::lint_workspace(&root) {
            Ok((diags, scanned)) => {
                source_summary = format!(", {} source files / {} MV2xx", scanned, diags.len());
                report.extend(diags);
            }
            Err(e) => {
                eprintln!("mv-lint: source scan under {} failed: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    let (substitutes, exec_checked, audit_findings) = if args.source_only {
        (0, 0, 0)
    } else {
        workload_lint(&args, &mut report)
    };

    let title = if args.source_only {
        format!("mv-lint: source-discipline pass{source_summary}")
    } else {
        format!(
            "mv-lint: {} views, {} queries, {} substitutes, {} exec-checked, {} audit findings{}",
            args.views, args.queries, substitutes, exec_checked, audit_findings, source_summary
        )
    };
    let json = report.to_json(&title);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("mv-lint: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => print!("{json}"),
    }

    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    eprintln!("mv-lint: {substitutes} substitutes verified, {errors} errors, {warnings} warnings");
    for d in &report.diagnostics {
        if d.severity == Severity::Error || (args.deny_warnings && d.severity == Severity::Warning)
        {
            eprintln!("  {d}");
        }
    }
    if errors > 0 || (args.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workload lint (MV0xx/MV1xx): verify every view, query, and
/// produced substitute; optionally exec-check and audit. Returns
/// (substitutes, exec_checked, audit_findings).
fn workload_lint(args: &Args, report: &mut Report) -> (usize, usize, usize) {
    let workload = build_workload(args.views, args.queries);
    let engine = engine_with(&workload, args.views, MatchConfig::default());
    let checks = engine.check_constraints();

    // Expression-level rules over every registered view and every query.
    for (_, view) in engine.views().iter() {
        report.extend(verify_view_expr(
            &workload.catalog,
            &checks,
            &view.expr,
            &view.name,
        ));
    }
    for (i, query) in workload.queries.iter().enumerate() {
        report.extend(verify_expr(
            &workload.catalog,
            &checks,
            query,
            &format!("q{i}"),
        ));
    }

    // Substitute-level rules over everything the matcher produces.
    let ctx = VerifyContext::new(&workload.catalog, &checks);
    let mut pairs = Vec::new();
    for (i, query) in workload.queries.iter().enumerate() {
        for (id, sub) in engine.find_substitutes(query) {
            let views = engine.views();
            let view = views.get(id);
            let diags =
                verify_substitute(&ctx, query, &view.expr, &sub, &view.name, &format!("q{i}"));
            let flagged = diags.iter().any(|d| d.severity == Severity::Error);
            report.extend(diags);
            pairs.push((i, id, sub, flagged));
        }
    }
    let substitutes = pairs.len();

    // Executed-plan cross-check on tiny generated data, statically flagged
    // substitutes first so a real unsoundness gets confirmed dynamically.
    let mut exec_checked = 0usize;
    if args.exec_check > 0 {
        let (db, _) = generate_tpch(&TpchScale::tiny(), DATA_SEED);
        pairs.sort_by_key(|(_, _, _, flagged)| !flagged);
        let views = engine.views();
        for (i, id, sub, _) in pairs.iter().take(args.exec_check) {
            let view = views.get(*id);
            let view_rows = materialize_view(&db, view);
            let from_view = execute_substitute_with(&db, &view_rows, sub);
            let direct = execute_spjg(&db, &workload.queries[*i]);
            exec_checked += 1;
            if let Some(diff) = bag_diff(&from_view, &direct) {
                report.push(
                    Diagnostic::error(
                        RuleId::ExecMismatch,
                        format!("substitute rows differ from query rows: {diff}"),
                    )
                    .with_view(&view.name)
                    .with_query(format!("q{i}")),
                );
            }
        }
    }

    // Completeness & catalog audit (MV101+) over the same engine/workload.
    let mut audit_findings = 0usize;
    if args.audit {
        let audit = mv_audit::audit_all(&engine, &workload.queries);
        audit_findings = audit.diagnostics.len();
        report.extend(audit.diagnostics);
    }

    (substitutes, exec_checked, audit_findings)
}
