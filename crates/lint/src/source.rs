//! The MV2xx source-discipline pass: a dependency-free, token-level lint
//! over the workspace's own `.rs` files that keeps the online catalog's
//! concurrency protocol auditable by the `mv-model` schedule explorer.
//!
//! The rules (DESIGN.md §14):
//!
//! * **MV201** `raw-sync-primitive` — `std::sync::Mutex`, `std::sync::RwLock`
//!   or `std::sync::atomic` types outside the `mv_parallel::sync` facade.
//!   A raw primitive is invisible under `--cfg mv_model`, so the schedule
//!   explorer can never exercise the interleavings it creates.
//! * **MV202** `relaxed-ordering` — `Ordering::Relaxed` outside the
//!   statistics counters (`crates/core/src/stats.rs`).
//! * **MV203** `raw-engine-state` — the engine's published snapshot field
//!   (`self.shared`) loaded outside the `snapshot` accessor, or published
//!   from a function that never took `writer_guard()`.
//! * **MV204** `unguarded-clock` — a bare `Instant::now` outside the bench
//!   crate; the engine reads the clock only through the
//!   `timing.then(Instant::now)` gate.
//! * **MV205** `unwrap-on-lock` — `.lock().unwrap()` (or `.read()` /
//!   `.write()`) in non-test code; poisoning then cascades. Use
//!   `mv_parallel::sync::lock_or_recover` and friends.
//! * **MV206** `expect-on-lock` — `.lock().expect(…)` (or `.read()` /
//!   `.write()`) in non-test code; the message dresses up the same
//!   poisoning cascade MV205 flags. Use the recover helpers instead.
//!
//! Suppressions: a comment `mv-lint: allow(MVnnn)` disables rule `nnn`
//! on its own line and the next line; placed in a file's comment header
//! (before any code), it disables the rule for the whole file. Regions
//! under `#[cfg(test)] mod … { … }` are skipped entirely.
//!
//! The pass owns a tiny lexer that blanks comments and string/char
//! literal contents (so a pattern inside a doc comment or a string never
//! fires) while collecting the comment text for suppression parsing.

use mv_verify::{Diagnostic, RuleId};
use std::path::{Path, PathBuf};

/// One file's worth of lexed source: per-line code with comments and
/// literal contents blanked, plus the comment text per line.
struct Lexed {
    /// Code lines with comments/literals blanked to spaces.
    code: Vec<String>,
    /// Comment text collected per line (doc and block comments included).
    comments: Vec<String>,
}

/// Blank comments and string/char literal contents, keeping the line
/// structure. Handles nested block comments, raw strings with hashes,
/// byte strings/chars, escapes, and lifetimes.
fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comments_flat = String::with_capacity(src.len());
    let mut i = 0usize;
    let n = bytes.len();

    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        match c {
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment: blank in code, keep in comments.
                while i < n && bytes[i] != '\n' {
                    code.push(' ');
                    comments_flat.push(bytes[i]);
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let mut depth = 0usize;
                while i < n {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        code.push_str("  ");
                        comments_flat.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        code.push_str("  ");
                        comments_flat.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] == '\n' {
                            code.push('\n');
                            comments_flat.push('\n');
                        } else {
                            code.push(' ');
                            comments_flat.push(bytes[i]);
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                // Plain string literal: keep the quotes, blank the contents.
                code.push('"');
                comments_flat.push(' ');
                i += 1;
                while i < n {
                    if bytes[i] == '\\' && i + 1 < n {
                        code.push_str("  ");
                        comments_flat.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        code.push('"');
                        comments_flat.push(' ');
                        i += 1;
                        break;
                    } else {
                        if bytes[i] == '\n' {
                            code.push('\n');
                            comments_flat.push('\n');
                        } else {
                            code.push(' ');
                            comments_flat.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                // r"…", r#"…"#, b"…", br#"…"# — skip prefix then hashes.
                let start = i;
                while i < n && (bytes[i] == 'r' || bytes[i] == 'b') {
                    i += 1;
                }
                let raw = bytes[start..i].contains(&'r');
                let mut hashes = 0usize;
                while raw && i < n && bytes[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                for _ in start..i {
                    code.push(' ');
                    comments_flat.push(' ');
                }
                if i < n && bytes[i] == '"' {
                    code.push('"');
                    comments_flat.push(' ');
                    i += 1;
                    'body: while i < n {
                        if !raw && bytes[i] == '\\' && i + 1 < n {
                            code.push_str("  ");
                            comments_flat.push_str("  ");
                            i += 2;
                            continue;
                        }
                        if bytes[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                code.push('"');
                                comments_flat.push(' ');
                                for _ in 0..hashes {
                                    code.push(' ');
                                    comments_flat.push(' ');
                                }
                                i += 1 + hashes;
                                break 'body;
                            }
                        }
                        if bytes[i] == '\n' {
                            code.push('\n');
                            comments_flat.push('\n');
                        } else {
                            code.push(' ');
                            comments_flat.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: a lifetime is ' followed by an
                // identifier not closed by another quote.
                let is_lifetime = i + 1 < n
                    && (is_ident(bytes[i + 1]))
                    && !(i + 2 < n && bytes[i + 2] == '\'')
                    && bytes[i + 1] != '\\';
                if is_lifetime {
                    code.push('\'');
                    comments_flat.push(' ');
                    i += 1;
                } else {
                    code.push('\'');
                    comments_flat.push(' ');
                    i += 1;
                    if i < n && bytes[i] == '\\' {
                        code.push_str("  ");
                        comments_flat.push_str("  ");
                        i += 2;
                        // Possibly multi-char escapes like \u{…}.
                        while i < n && bytes[i] != '\'' && bytes[i] != '\n' {
                            code.push(' ');
                            comments_flat.push(' ');
                            i += 1;
                        }
                    } else if i < n && bytes[i] != '\'' {
                        code.push(' ');
                        comments_flat.push(' ');
                        i += 1;
                    }
                    if i < n && bytes[i] == '\'' {
                        code.push('\'');
                        comments_flat.push(' ');
                        i += 1;
                    }
                }
            }
            _ => {
                code.push(c);
                comments_flat.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
        }
    }

    Lexed {
        code: code.lines().map(str::to_string).collect(),
        comments: comments_flat.lines().map(str::to_string).collect(),
    }
}

fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    // r" r# b" br" br# — but not an identifier like `rate` or `br0ken`.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == 'r' || bytes[j] == 'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

/// Parse `mv-lint: allow(MVnnn[, MVmmm…])` suppressions out of one
/// line's comment text.
fn parse_allows(comment: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("mv-lint: allow(") {
        let after = &rest[pos + "mv-lint: allow(".len()..];
        if let Some(end) = after.find(')') {
            for code in after[..end].split(',') {
                out.push(code.trim());
            }
            rest = &after[end..];
        } else {
            break;
        }
    }
    out
}

/// Per-line rule suppression state for one file.
struct Allows {
    /// Rule codes allowed for the whole file (header suppressions).
    file: Vec<String>,
    /// Rule codes allowed per line (the comment's line and the next).
    lines: Vec<Vec<String>>,
}

impl Allows {
    fn permits(&self, code: &str, line_idx: usize) -> bool {
        if self.file.iter().any(|c| c == code) {
            return true;
        }
        let near = |i: usize| {
            self.lines
                .get(i)
                .is_some_and(|v| v.iter().any(|c| c == code))
        };
        near(line_idx) || (line_idx > 0 && near(line_idx - 1))
    }
}

fn collect_allows(lexed: &Lexed) -> Allows {
    let first_code_line = lexed
        .code
        .iter()
        .position(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("#!")
        })
        .unwrap_or(usize::MAX);
    let mut file = Vec::new();
    let mut lines = vec![Vec::new(); lexed.comments.len()];
    for (i, comment) in lexed.comments.iter().enumerate() {
        for code in parse_allows(comment) {
            if i < first_code_line {
                file.push(code.to_string());
            } else {
                lines[i].push(code.to_string());
            }
        }
    }
    Allows { file, lines }
}

/// Mark every line inside a `#[cfg(test)] mod … { … }` region.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        let squashed: String = code[i].chars().filter(|c| !c.is_whitespace()).collect();
        if squashed.contains("#[cfg(test)]") {
            // Find the opening brace of the item that follows (same line
            // or later), then skip to its matching close.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            'scan: while j < code.len() {
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                    if opened && depth == 0 {
                        in_test[j] = true;
                        i = j;
                        break 'scan;
                    }
                }
                in_test[j] = true;
                j += 1;
                if j == code.len() {
                    i = j - 1;
                    break;
                }
            }
        }
        i += 1;
    }
    in_test
}

/// The function tracker MV203 needs: which `fn` a line belongs to and
/// whether that function has called `writer_guard()` so far.
struct FnTracker {
    stack: Vec<(i64, String, bool)>,
    depth: i64,
    pending: Option<String>,
}

impl FnTracker {
    fn new() -> Self {
        FnTracker {
            stack: Vec::new(),
            depth: 0,
            pending: None,
        }
    }

    /// Feed one blanked line *before* rule checks run on it; returns
    /// (current fn name, has the fn seen `writer_guard()` so far).
    fn observe(&mut self, line: &str, squashed: &str) -> (Option<String>, bool) {
        let declared = fn_name(line);
        let top_before = self.stack.last().cloned();
        let guard_here = squashed.contains("writer_guard(");
        if guard_here {
            if let Some(top) = self.stack.last_mut() {
                top.2 = true;
            }
        }
        // A one-line `fn f() { … }` belongs to the declared fn, not the
        // enclosing scope; its guard call can only be on this same line.
        let state = if declared.is_some() && line.contains('{') {
            (declared.clone(), guard_here)
        } else {
            (
                top_before.as_ref().map(|(_, n, _)| n.clone()),
                top_before.as_ref().is_some_and(|(_, _, g)| *g) || guard_here,
            )
        };
        if let Some(name) = declared {
            self.pending = Some(name);
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    self.depth += 1;
                    if let Some(name) = self.pending.take() {
                        self.stack.push((self.depth, name, false));
                    }
                }
                '}' => {
                    if self.stack.last().is_some_and(|(d, _, _)| *d == self.depth) {
                        self.stack.pop();
                    }
                    self.depth -= 1;
                }
                ';' => {
                    // `fn f();` — a signature with no body.
                    self.pending = None;
                }
                _ => {}
            }
        }
        state
    }
}

fn fn_name(line: &str) -> Option<String> {
    let pos = line.find("fn ")?;
    if pos > 0 {
        let prev = line.as_bytes()[pos - 1] as char;
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let rest = &line[pos + 3..];
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Files where MV201 raw primitives are legitimate: the facade itself,
/// the model checker's shims, and the bench driver's counters.
fn mv201_path_allowed(path: &str) -> bool {
    path.starts_with("crates/model/src")
        || path.starts_with("crates/bench/src")
        || path == "crates/parallel/src/sync.rs"
}

/// Files where MV202 relaxed orderings are legitimate: the statistics
/// counters, the model checker (which models them), and the bench driver.
fn mv202_path_allowed(path: &str) -> bool {
    path.starts_with("crates/model/src")
        || path.starts_with("crates/bench/src")
        || path == "crates/core/src/stats.rs"
}

/// Files where MV204 bare clock reads are legitimate.
fn mv204_path_allowed(path: &str) -> bool {
    path.starts_with("crates/bench/src")
}

fn finding(rule: RuleId, path: &str, line_idx: usize, message: String) -> Diagnostic {
    Diagnostic::error(rule, message).with_detail(format!("{path}:{}", line_idx + 1))
}

/// Lint one file's source text. `path` is the workspace-relative path
/// used for allowlisting and diagnostics.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let allows = collect_allows(&lexed);
    let in_test = test_regions(&lexed.code);
    let mut tracker = FnTracker::new();
    let mut out = Vec::new();

    for (i, line) in lexed.code.iter().enumerate() {
        let squashed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        let (current_fn, saw_guard) = tracker.observe(line, &squashed);
        if in_test[i] {
            continue;
        }

        // MV201 — raw std sync primitives outside the facade.
        if !mv201_path_allowed(path) && !allows.permits("MV201", i) {
            let use_of_sync = line.trim_start().starts_with("use std::sync::")
                && ["Mutex", "RwLock", "atomic", "Condvar"]
                    .iter()
                    .any(|t| squashed.contains(t));
            if squashed.contains("std::sync::Mutex")
                || squashed.contains("std::sync::RwLock")
                || squashed.contains("std::sync::atomic")
                || use_of_sync
            {
                out.push(finding(
                    RuleId::RawSyncPrimitive,
                    path,
                    i,
                    "raw std::sync primitive outside the mv_parallel::sync facade; \
                     it is invisible to the mv-model schedule explorer"
                        .to_string(),
                ));
            }
        }

        // MV202 — Ordering::Relaxed outside the stats counters.
        if !mv202_path_allowed(path)
            && !allows.permits("MV202", i)
            && squashed.contains("Ordering::Relaxed")
        {
            out.push(finding(
                RuleId::RelaxedOrdering,
                path,
                i,
                "Ordering::Relaxed outside the statistics counters orders nothing; \
                 use the facade's acquire/release types or justify with an allow"
                    .to_string(),
            ));
        }

        // MV203 — engine snapshot field discipline.
        if !allows.permits("MV203", i) && squashed.contains("self.shared") {
            if squashed.contains("self.shared.load(") {
                if current_fn.as_deref() != Some("snapshot") {
                    out.push(finding(
                        RuleId::RawEngineState,
                        path,
                        i,
                        "published snapshot loaded outside the snapshot() accessor".to_string(),
                    ));
                }
            } else if squashed.contains("self.shared.store(") {
                if !saw_guard {
                    out.push(finding(
                        RuleId::RawEngineState,
                        path,
                        i,
                        "snapshot published in a function that never took writer_guard()"
                            .to_string(),
                    ));
                }
            } else {
                out.push(finding(
                    RuleId::RawEngineState,
                    path,
                    i,
                    "published snapshot field used outside the load/store discipline".to_string(),
                ));
            }
        }

        // MV204 — unguarded clock reads.
        if !mv204_path_allowed(path)
            && !allows.permits("MV204", i)
            && squashed.contains("Instant::now")
            && !squashed.contains(".then(Instant::now)")
        {
            out.push(finding(
                RuleId::UnguardedClock,
                path,
                i,
                "bare Instant::now outside the timing gate; use \
                 `config.timing.then(Instant::now)` so model runs stay clock-free"
                    .to_string(),
            ));
        }

        // MV205 — .unwrap() on lock results in non-test code.
        if !allows.permits("MV205", i)
            && [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"]
                .iter()
                .any(|p| squashed.contains(*p))
        {
            out.push(finding(
                RuleId::UnwrapOnLock,
                path,
                i,
                "lock result unwrapped in non-test code; poisoning cascades — use \
                 mv_parallel::sync::lock_or_recover / read_or_recover / write_or_recover"
                    .to_string(),
            ));
        }

        // MV206 — .expect() on lock results in non-test code.
        if !allows.permits("MV206", i)
            && [".lock().expect(", ".read().expect(", ".write().expect("]
                .iter()
                .any(|p| squashed.contains(*p))
        {
            out.push(finding(
                RuleId::ExpectOnLock,
                path,
                i,
                "lock result expect()ed in non-test code; the message only renames the \
                 poisoning cascade — use mv_parallel::sync::lock_or_recover and friends"
                    .to_string(),
            ));
        }
    }
    out
}

/// Recursively collect the `.rs` files of every crate's `src/` tree under
/// `root/crates`, returning (workspace-relative path, absolute path).
fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path();
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    let mut rel = Vec::new();
    for p in out {
        let r = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        rel.push((r, p));
    }
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Run the MV2xx pass over every crate source file in the workspace at
/// `root`. Returns the findings plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = workspace_sources(root)?;
    let mut out = Vec::new();
    let scanned = files.len();
    for (rel, abs) in files {
        let src = std::fs::read_to_string(&abs)?;
        out.extend(lint_source(&rel, &src));
    }
    Ok((out, scanned))
}

/// Locate the workspace root by walking up from `start` until a
/// directory holding both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = String::from("// std::sync::Mutex in a comment\n")
            + "/* Ordering::Relaxed in a block comment */\n"
            + "fn f() {\n"
            + "    let s = \"std::sync::Mutex and Instant::now()\";\n"
            + "    let r = r#\"Ordering::Relaxed\"#;\n"
            + "    let c = '\\u{1F600}';\n"
            + "}\n";
        assert!(lint_source("crates/x/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn raw_mutex_fires_mv201() {
        let src =
            "use std::sync::Mutex;\nstatic M: std::sync::Mutex<u8> = std::sync::Mutex::new(0);\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(codes(&diags), vec!["MV201", "MV201"]);
    }

    #[test]
    fn facade_and_model_paths_are_allowlisted() {
        let src = "use std::sync::Mutex;\n";
        assert!(lint_source("crates/parallel/src/sync.rs", src).is_empty());
        assert!(lint_source("crates/model/src/exec.rs", src).is_empty());
        assert_eq!(
            codes(&lint_source("crates/core/src/engine.rs", src)),
            vec!["MV201"]
        );
    }

    #[test]
    fn relaxed_fires_mv202_except_stats() {
        let src = "fn f(a: &A) { a.x.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(
            codes(&lint_source("crates/core/src/engine.rs", src)),
            vec!["MV202"]
        );
        assert!(lint_source("crates/core/src/stats.rs", src).is_empty());
    }

    #[test]
    fn engine_state_discipline_mv203() {
        let ok = "impl E {\n fn snapshot(&self) -> S { self.shared.load() }\n\
                  fn publish(&self) { let _g = self.writer_guard(); self.shared.store(x); }\n}\n";
        assert!(lint_source("crates/core/src/engine.rs", ok).is_empty());
        let bad_load = "impl E {\n fn peek(&self) -> S { self.shared.load() }\n}\n";
        assert_eq!(
            codes(&lint_source("crates/core/src/engine.rs", bad_load)),
            vec!["MV203"]
        );
        let bad_store = "impl E {\n fn publish(&self) { self.shared.store(x); }\n}\n";
        assert_eq!(
            codes(&lint_source("crates/core/src/engine.rs", bad_store)),
            vec!["MV203"]
        );
    }

    #[test]
    fn clock_gate_mv204() {
        let gated = "fn f(t: bool) { let s = t.then(Instant::now); }\n";
        assert!(lint_source("crates/core/src/engine.rs", gated).is_empty());
        let bare = "fn f() { let s = Instant::now(); }\n";
        assert_eq!(
            codes(&lint_source("crates/core/src/engine.rs", bare)),
            vec!["MV204"]
        );
        assert!(lint_source("crates/bench/src/lib.rs", bare).is_empty());
    }

    #[test]
    fn lock_unwrap_mv205_and_test_regions() {
        let src = "fn f(m: &Mutex<u8>) { let _ = m.lock().unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(m: &Mutex<u8>) { let _ = m.lock().unwrap(); }\n}\n";
        assert_eq!(
            codes(&lint_source("crates/x/src/lib.rs", src)),
            vec!["MV205"]
        );
    }

    #[test]
    fn lock_expect_mv206_and_test_regions() {
        let src = "fn f(m: &Mutex<u8>) { let _ = m.lock().expect(\"poisoned\"); }\n\
                   fn g(r: &RwLock<u8>) { let _ = r.read().expect(\"poisoned\"); }\n\
                   #[cfg(test)]\nmod tests {\n  fn h(m: &Mutex<u8>) { let _ = m.lock().expect(\"x\"); }\n}\n";
        assert_eq!(
            codes(&lint_source("crates/x/src/lib.rs", src)),
            vec!["MV206", "MV206"]
        );
    }

    #[test]
    fn suppressions_line_and_header() {
        let line = "fn f(m: &Mutex<u8>) {\n  // justified: mv-lint: allow(MV205)\n  let _ = m.lock().unwrap();\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", line).is_empty());
        let header = "// mv-lint: allow(MV201)\nuse std::sync::Mutex;\nfn f() { let m: std::sync::Mutex<u8> = std::sync::Mutex::new(0); }\n";
        assert!(lint_source("crates/x/src/lib.rs", header).is_empty());
        let wrong_rule = "// mv-lint: allow(MV204)\nuse std::sync::Mutex;\n";
        assert_eq!(
            codes(&lint_source("crates/x/src/lib.rs", wrong_rule)),
            vec!["MV201"]
        );
    }
}
