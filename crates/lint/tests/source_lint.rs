//! Integration tests for the MV2xx source-discipline pass: the unmutated
//! workspace lints clean, and each corruption fixture under
//! `fixtures/source/` is flagged with exactly its rule.

use mv_lint::source::{find_workspace_root, lint_source, lint_workspace};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

/// The real workspace carries zero MV2xx findings: every raw primitive
/// lives in an allowlisted home or justifies itself with an allow.
#[test]
fn workspace_is_clean() {
    let (diags, scanned) = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        scanned > 50,
        "expected to scan the whole workspace, saw only {scanned} files"
    );
    assert!(
        diags.is_empty(),
        "workspace must be MV2xx-clean, got:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every fixture is named `mvNNN_*.rs` and must be flagged with rule
/// MVNNN (at least once, and with no *other* rule misfiring).
#[test]
fn fixtures_are_flagged() {
    let dir = workspace_root().join("crates/lint/fixtures/source");
    let mut seen_rules = std::collections::BTreeSet::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures/source exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "expected at least one fixture per MV2xx rule, found {}",
        entries.len()
    );
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let expected = name[..5].to_uppercase(); // "mv201_..." -> "MV201"
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        // Fixtures are linted under a non-allowlisted pseudo-path so the
        // rule logic, not the path allowlist, decides.
        let diags = lint_source(&format!("crates/fixture/src/{name}"), &src);
        assert!(
            diags.iter().any(|d| d.rule.code() == expected),
            "fixture {name} must trigger {expected}, got: {:?}",
            diags.iter().map(|d| d.rule.code()).collect::<Vec<_>>()
        );
        for d in &diags {
            assert_eq!(
                d.rule.code(),
                expected,
                "fixture {name} fired an unexpected rule: {d}"
            );
        }
        seen_rules.insert(expected);
    }
    assert_eq!(
        seen_rules.into_iter().collect::<Vec<_>>(),
        vec!["MV201", "MV202", "MV203", "MV204", "MV205", "MV206"],
        "fixtures must cover every MV2xx rule"
    );
}

/// The diagnostics carry the MV2xx codes through the standard JSON
/// rendering, so `mv-lint --source` reports look like the MV0xx bands.
#[test]
fn findings_render_like_other_bands() {
    let diags = lint_source("crates/x/src/lib.rs", "use std::sync::Mutex;\n");
    assert_eq!(diags.len(), 1);
    let json = diags[0].to_json();
    assert!(json.contains("\"rule\": \"MV201\""));
    assert!(json.contains("\"name\": \"raw-sync-primitive\""));
    assert!(json.contains("crates/x/src/lib.rs:1"));
}
