//! MV201 fixture: a raw `std::sync` primitive smuggled in outside the
//! `mv_parallel::sync` facade. The schedule explorer cannot see this
//! mutex, so no interleaving through it is ever model-checked.

use std::sync::Mutex;

pub struct SneakyCache {
    slots: std::sync::RwLock<Vec<u64>>,
    epoch: std::sync::atomic::AtomicU64,
    guard: Mutex<()>,
}

pub fn bump(c: &SneakyCache) {
    let _g = c.guard.lock();
    c.epoch
        .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let _ = c.slots.read();
}
