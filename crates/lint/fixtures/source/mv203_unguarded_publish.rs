//! MV203 fixture: engine snapshot-state discipline violations. The
//! published snapshot may only be loaded through the `snapshot()`
//! accessor, and only published by functions that hold the writer guard
//! for their whole clone-modify-publish sequence.

impl Engine {
    /// Loads the published snapshot outside `snapshot()`.
    pub fn peek(&self) -> Arc<CatalogSnapshot> {
        self.shared.load()
    }

    /// Publishes without ever taking `writer_guard()`: two concurrent
    /// callers clone the same base snapshot and one update is lost.
    pub fn publish_racy(&self, next: CatalogSnapshot) {
        self.shared.store(Arc::new(next));
    }
}
