//! MV202 fixture: publication flag set with `Ordering::Relaxed`. A
//! relaxed store orders nothing before it, so a reader that observes the
//! flag may still read the unpublished payload — the exact bug the model
//! crate pins in `relaxed_publication_is_pinned_to_a_failing_schedule`.

use mv_parallel::sync::atomic::{AtomicU64, Ordering};

pub fn publish(data: &AtomicU64, ready: &AtomicU64) {
    data.store(42, Ordering::Relaxed);
    ready.store(1, Ordering::Relaxed);
}

pub fn consume(data: &AtomicU64, ready: &AtomicU64) -> Option<u64> {
    if ready.load(Ordering::Relaxed) == 1 {
        Some(data.load(Ordering::Relaxed))
    } else {
        None
    }
}
