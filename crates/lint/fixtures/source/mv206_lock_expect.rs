//! MV206 fixture: lock results `.expect()`ed in non-test code. The
//! message only renames the poisoning cascade MV205 flags — once one
//! holder panics, every later `.expect(…)` still takes the whole process
//! down, just with nicer last words. `mv_parallel::sync::lock_or_recover`
//! (and the read/write variants) recovers the data instead.

use mv_parallel::sync::{Mutex, RwLock};

pub fn drain(q: &Mutex<Vec<u64>>) -> Vec<u64> {
    std::mem::take(&mut *q.lock().expect("queue lock poisoned"))
}

pub fn peek(r: &RwLock<u64>) -> u64 {
    *r.read().expect("stats lock poisoned")
}

pub fn set(r: &RwLock<u64>, v: u64) {
    *r.write().expect("stats lock poisoned") = v;
}
