//! MV205 fixture: lock results unwrapped in non-test code. One panicking
//! holder poisons the lock; every later `.unwrap()` converts that single
//! panic into a process-wide cascade. `mv_parallel::sync::lock_or_recover`
//! (and the read/write variants) takes the data instead — counters and
//! caches stay usable because every writer publishes complete values.

use mv_parallel::sync::{Mutex, RwLock};

pub fn drain(q: &Mutex<Vec<u64>>) -> Vec<u64> {
    std::mem::take(&mut *q.lock().unwrap())
}

pub fn peek(r: &RwLock<u64>) -> u64 {
    *r.read().unwrap()
}

pub fn set(r: &RwLock<u64>, v: u64) {
    *r.write().unwrap() = v;
}
