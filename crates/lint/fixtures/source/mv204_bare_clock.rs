//! MV204 fixture: an unconditional clock read on the match path. The
//! engine's discipline is `config.timing.then(Instant::now)`, which
//! compiles to zero clock reads when timing is off and keeps model-checker
//! runs deterministic.

use std::time::Instant;

pub fn match_with_timing(queries: &[Query]) -> Duration {
    let started = Instant::now();
    for q in queries {
        run(q);
    }
    started.elapsed()
}
