//! Base-table backjoins (the section 7 extension): "Base table backjoins
//! cover the case when a view contains all tables and rows needed but some
//! columns are missing. In that case, it may be worthwhile backjoining the
//! view to a base table to pull in the missing columns."
//!
//! Every test verifies the rewrite by execution against the direct oracle.

use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{generate_tpch, TpchScale};
use mv_exec::{bag_diff, execute_spjg, execute_substitute_with, materialize_view};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn backjoin_config() -> MatchConfig {
    MatchConfig {
        allow_backjoins: true,
        ..MatchConfig::default()
    }
}

/// View outputs lineitem's primary key but not l_extendedprice; the query
/// needs it. With backjoins the view still answers the query.
#[test]
fn spj_backjoin_recovers_missing_column() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 61);
    let view = ViewDef::new(
        "li_slim",
        SpjgExpr::spj(
            vec![t.lineitem],
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                NamedExpr::new(S::col(cr(0, 3)), "l_linenumber"),
                NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
            ],
        ),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Le, S::lit(30i64)),
        ]),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 5)), "l_extendedprice"), // not in view
        ],
    );

    // Baseline engine: rejected.
    let strict = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    strict.add_view(view.clone()).unwrap();
    assert!(strict.find_substitutes(&query).is_empty());

    // Backjoin engine: matched and exact.
    let engine = MatchingEngine::new(db.catalog.clone(), backjoin_config());
    let rows = materialize_view(&db, &view);
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let sub = &subs[0].1;
    assert_eq!(sub.backjoins.len(), 1);
    assert_eq!(sub.backjoins[0].table, t.lineitem);
    let got = execute_substitute_with(&db, &rows, sub);
    let want = execute_spjg(&db, &query);
    assert!(
        bag_diff(&got, &want).is_none(),
        "{:?}",
        bag_diff(&got, &want)
    );
    assert!(!want.is_empty());
}

/// Backjoin via an *equivalent* key: the view outputs o_orderkey (equal to
/// l_orderkey through the join) — good enough to key the orders backjoin.
#[test]
fn backjoin_key_through_equivalence_class() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 62);
    let view = ViewDef::new(
        "lo",
        SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"), // == o_orderkey
                NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
                NamedExpr::new(S::col(cr(0, 3)), "l_linenumber"),
            ],
        ),
    );
    // The query needs o_totalprice, never output by the view.
    let query = SpjgExpr::spj(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![
            NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
            NamedExpr::new(S::col(cr(1, 3)), "o_totalprice"),
        ],
    );
    let engine = MatchingEngine::new(db.catalog.clone(), backjoin_config());
    let rows = materialize_view(&db, &view);
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let sub = &subs[0].1;
    assert_eq!(sub.backjoins.len(), 1);
    assert_eq!(sub.backjoins[0].table, t.orders);
    let got = execute_substitute_with(&db, &rows, sub);
    assert!(bag_diff(&got, &execute_spjg(&db, &query)).is_none());
}

/// Compensating predicates can live on backjoined columns too.
#[test]
fn compensating_predicate_on_backjoined_column() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 63);
    let view = ViewDef::new(
        "orders_keys",
        SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
        ),
    );
    // Query filters on o_custkey, which only the backjoin can reach.
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Le, S::lit(10i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    let engine = MatchingEngine::new(db.catalog.clone(), backjoin_config());
    let rows = materialize_view(&db, &view);
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let got = execute_substitute_with(&db, &rows, &subs[0].1);
    let want = execute_spjg(&db, &query);
    assert!(bag_diff(&got, &want).is_none());
    assert!(!want.is_empty());
}

/// Aggregation view grouped by a table's primary key: the backjoin
/// recovers functionally-determined columns and the query can regroup on
/// them.
#[test]
fn aggregation_view_backjoin_with_regroup() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 64);
    // Revenue per order (grouped by the orders PK).
    let view = ViewDef::new(
        "rev_by_order",
        SpjgExpr::aggregate(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(1, 0)), "o_orderkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 4))), "qty"),
            ],
        ),
    );
    // Quantity per customer: o_custkey is reachable only by backjoining
    // orders on the grouped key; regrouping rolls the sums up.
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "n"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 4))), "qty"),
        ],
    );
    let engine = MatchingEngine::new(db.catalog.clone(), backjoin_config());
    let rows = materialize_view(&db, &view);
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1, "grouped backjoin should match");
    let sub = &subs[0].1;
    assert_eq!(sub.backjoins.len(), 1);
    assert!(sub.regroups());
    let got = execute_substitute_with(&db, &rows, sub);
    let want = execute_spjg(&db, &query);
    assert!(
        bag_diff(&got, &want).is_none(),
        "{:?}",
        bag_diff(&got, &want)
    );
}

/// No usable key → no backjoin: a view without key columns still rejects.
#[test]
fn backjoin_requires_an_output_key() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 65);
    let view = ViewDef::new(
        "no_keys",
        SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")], // not a key
        ),
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 3)), "o_totalprice")],
    );
    let engine = MatchingEngine::new(db.catalog.clone(), backjoin_config());
    engine.add_view(view).unwrap();
    assert!(engine.find_substitutes(&query).is_empty());
}

/// The optimizer turns backjoins into hash joins and the end-to-end plan
/// is still exact.
#[test]
fn optimizer_executes_backjoin_plans() {
    use mv_exec::{execute_plan, ViewStore};
    use mv_optimizer::{Optimizer, OptimizerConfig};
    let (db, t) = generate_tpch(&TpchScale::tiny(), 66);
    let view = ViewDef::new(
        "li_slim",
        SpjgExpr::spj(
            vec![t.lineitem],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                NamedExpr::new(S::col(cr(0, 3)), "l_linenumber"),
            ],
        ),
    );
    let engine = MatchingEngine::new(db.catalog.clone(), backjoin_config());
    let rows = materialize_view(&db, &view);
    let id = engine.add_view(view).unwrap();
    let mut store = ViewStore::new();
    store.put(id, rows);
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Le, S::lit(25i64)),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 5)), "l_extendedprice"),
        ],
    );
    // Force the optimizer to prove the substitute correct even when it
    // would not win on cost: pick whichever plan wins and execute it.
    let optimizer = Optimizer::new(&engine, OptimizerConfig::default());
    let optimized = optimizer.optimize(&query);
    let got = execute_plan(&db, &store, &optimized.plan);
    let want = execute_spjg(&db, &query);
    assert!(bag_diff(&got, &want).is_none(), "plan:\n{}", optimized.plan);
    // And the substitute alternative itself must execute correctly.
    if let Some(sub) = engine.match_one(&query, id) {
        let got = execute_substitute_with(&db, store.rows(id), &sub);
        assert!(bag_diff(&got, &want).is_none());
    } else {
        panic!("backjoin substitute expected");
    }
}
