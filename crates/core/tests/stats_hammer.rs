//! Concurrent hammer over [`AtomicMatchStats`]: many writer threads
//! record invocations, cache probes, and registrations while a reader
//! snapshots continuously. Checks the two properties the engine's
//! quiescent invariants rely on:
//!
//! * **per-counter monotonicity** — every counter in every snapshot is
//!   at least the same counter in the previous snapshot (each counter
//!   is a single atomic, so its modification order is total even
//!   though the stats use relaxed ordering), and
//! * **exact quiescent totals** — after all writers join, every counter
//!   equals the arithmetic sum of what was recorded; nothing is lost or
//!   double-counted, and `cache_hits + cache_misses == invocations`.

use mv_core::stats::{AtomicMatchStats, MatchStats};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Counter-by-counter monotonicity between successive snapshots.
fn regressed(prev: &MatchStats, cur: &MatchStats) -> Option<String> {
    let pairs: [(&str, u64, u64); 9] = [
        ("invocations", prev.invocations, cur.invocations),
        ("candidates", prev.candidates, cur.candidates),
        ("views_available", prev.views_available, cur.views_available),
        ("substitutes", prev.substitutes, cur.substitutes),
        ("cache_hits", prev.cache_hits, cur.cache_hits),
        ("cache_misses", prev.cache_misses, cur.cache_misses),
        (
            "cache_invalidations",
            prev.cache_invalidations,
            cur.cache_invalidations,
        ),
        ("registrations", prev.registrations, cur.registrations),
        ("removals", prev.removals, cur.removals),
    ];
    for (name, p, c) in pairs {
        if c < p {
            return Some(format!("{name} went backwards: {p} -> {c}"));
        }
    }
    if cur.filter_time < prev.filter_time {
        return Some("filter_time went backwards".to_string());
    }
    if cur.match_time < prev.match_time {
        return Some("match_time went backwards".to_string());
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn hammered_counters_stay_monotone_and_exact(
        threads in 2usize..6,
        ops in 50usize..300,
    ) {
        let stats = AtomicMatchStats::default();
        let stop = AtomicBool::new(false);
        let violation: Mutex<Option<String>> = Mutex::new(None);

        std::thread::scope(|scope| {
            // Reader: snapshot continuously, checking monotonicity.
            scope.spawn(|| {
                let mut prev = stats.snapshot();
                let mut reads = 0u64;
                while !stop.load(Ordering::SeqCst) || reads == 0 {
                    let cur = stats.snapshot();
                    if let Some(msg) = regressed(&prev, &cur) {
                        *violation.lock().unwrap() = Some(msg);
                        return;
                    }
                    prev = cur;
                    reads += 1;
                }
            });
            let writers: Vec<_> = (0..threads)
                .map(|t| {
                    let stats = &stats;
                    scope.spawn(move || {
                        for j in 0..ops {
                            if (t + j) % 3 == 0 {
                                stats.record_cache_miss();
                            } else {
                                stats.record_cache_hit();
                            }
                            stats.record(
                                2,
                                10,
                                (t + j) % 2,
                                Duration::from_nanos(10),
                                Duration::from_nanos(20),
                            );
                            if j % 7 == 0 {
                                stats.record_cache_invalidation();
                            }
                            if j % 11 == 0 {
                                stats.record_registrations(1);
                            }
                            if j % 13 == 0 {
                                stats.record_removal();
                            }
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().expect("writer thread panicked");
            }
            // Only once every writer has joined does the reader stand
            // down, so snapshots overlap the full write storm.
            stop.store(true, Ordering::SeqCst);
        });

        prop_assert!(
            violation.lock().unwrap().is_none(),
            "snapshot monotonicity violated: {:?}",
            violation.lock().unwrap()
        );

        // Exact quiescent totals.
        let total = (threads * ops) as u64;
        let expected_misses: u64 = (0..threads)
            .map(|t| (0..ops).filter(|j| (t + j) % 3 == 0).count() as u64)
            .sum();
        let expected_subs: u64 = (0..threads)
            .map(|t| (0..ops).map(|j| ((t + j) % 2) as u64).sum::<u64>())
            .sum();
        let per_thread = |m: usize| (0..ops).filter(|j| j % m == 0).count() as u64;
        let s = stats.snapshot();
        prop_assert_eq!(s.invocations, total);
        prop_assert_eq!(s.candidates, 2 * total);
        prop_assert_eq!(s.views_available, 10 * total);
        prop_assert_eq!(s.substitutes, expected_subs);
        prop_assert_eq!(s.cache_hits + s.cache_misses, s.invocations);
        prop_assert_eq!(s.cache_misses, expected_misses);
        prop_assert_eq!(s.cache_invalidations, threads as u64 * per_thread(7));
        prop_assert_eq!(s.registrations, threads as u64 * per_thread(11));
        prop_assert_eq!(s.removals, threads as u64 * per_thread(13));
        prop_assert_eq!(s.filter_time, Duration::from_nanos(10) * total as u32);
        prop_assert_eq!(s.match_time, Duration::from_nanos(20) * total as u32);
    }
}
