//! The substitute cache must be invisible: under any interleaving of
//! `add_view` / `remove_view` / `find_substitutes`, an engine with the
//! cache enabled returns byte-identical results to an engine with the
//! cache disabled. In debug builds every cache hit additionally runs the
//! engine's own differential assertion (cached == freshly computed), so
//! these tests double as a harness for that oracle.

use mv_catalog::tpch::tpch_catalog;
use mv_core::{MatchConfig, MatchingEngine};
use mv_plan::{OutputList, SpjgExpr, ViewDef, ViewId};
use mv_workload::{Generator, WorkloadParams};
use proptest::prelude::*;

const VIEW_SEED: u64 = 0x5EED_CAFE;
const QUERY_SEED: u64 = 0x00DD_BA11;

fn pools(n_views: usize, n_queries: usize) -> (Vec<ViewDef>, Vec<SpjgExpr>) {
    let (catalog, _) = tpch_catalog();
    let views = Generator::new(&catalog, WorkloadParams::views(), VIEW_SEED).views(n_views);
    let queries =
        Generator::new(&catalog, WorkloadParams::queries(), QUERY_SEED).queries(n_queries);
    (views, queries)
}

fn engine_with(config: MatchConfig) -> MatchingEngine {
    let (catalog, _) = tpch_catalog();
    MatchingEngine::new(catalog, config)
}

fn uncached_config() -> MatchConfig {
    MatchConfig {
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    }
}

/// One step of the interleaving, decoded from a `(kind, index)` pair
/// (the vendored proptest stand-in has no `prop_oneof`).
#[derive(Debug, Clone, Copy)]
enum Op {
    AddView(usize),
    RemoveView(usize),
    Find(usize),
}

fn decode(kind: usize, idx: usize) -> Op {
    match kind {
        0 => Op::AddView(idx),
        1 => Op::RemoveView(idx),
        _ => Op::Find(idx),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Apply the same op sequence to a cached and an uncached engine;
    /// every `find_substitutes` must agree byte-for-byte. Repeated query
    /// indices make real cache hits, removals and additions exercise the
    /// epoch invalidation mid-sequence.
    #[test]
    fn interleaving_equals_uncached_engine(
        ops in prop::collection::vec((0usize..3, 0usize..16), 1..40),
    ) {
        let (views, queries) = pools(16, 8);
        let cached = engine_with(MatchConfig::default());
        let uncached = engine_with(uncached_config());
        let mut live: Vec<ViewId> = Vec::new();

        for (kind, idx) in ops {
            match decode(kind, idx) {
                Op::AddView(i) => {
                    let def = views[i % views.len()].clone();
                    let a = cached.add_view(def.clone());
                    let b = uncached.add_view(def);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    if let Ok(id) = a {
                        prop_assert_eq!(Ok(id), b);
                        live.push(id);
                    }
                }
                Op::RemoveView(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(i % live.len());
                    prop_assert!(cached.remove_view(id));
                    prop_assert!(uncached.remove_view(id));
                }
                Op::Find(qi) => {
                    let q = &queries[qi % queries.len()];
                    let a = cached.find_substitutes(q);
                    let b = uncached.find_substitutes(q);
                    prop_assert_eq!(a, b, "cached engine diverged from uncached");
                }
            }
        }
        prop_assert_eq!(
            cached.stats().substitutes,
            uncached.stats().substitutes,
            "both engines must have produced the same substitute totals"
        );
    }
}

/// Registering a view after a query was cached must evict the stale entry
/// (reported in `cache_invalidations`) and return the refreshed result —
/// including any match against the newly added view.
#[test]
fn epoch_bump_evicts_stale_hits() {
    let (views, queries) = pools(12, 4);
    let engine = engine_with(MatchConfig::default());
    for v in &views[..6] {
        engine
            .add_view(v.clone())
            .expect("generated views are valid");
    }
    let q = &queries[0];

    let first = engine.find_substitutes(q);
    let warm = engine.find_substitutes(q);
    assert_eq!(first, warm);
    let s = engine.stats();
    assert_eq!(s.cache_hits, 1, "second identical query must hit");
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.cache_invalidations, 0);

    // Any registration bumps the epoch; the cached entry is now stale.
    for v in &views[6..] {
        engine
            .add_view(v.clone())
            .expect("generated views are valid");
    }
    let refreshed = engine.find_substitutes(q);
    let s = engine.stats();
    assert_eq!(s.cache_invalidations, 1, "stale entry must be discarded");
    assert_eq!(s.cache_misses, 2, "stale hit recomputes");

    // The refreshed result must agree with a fresh uncached engine over
    // the full view set.
    let fresh = engine_with(uncached_config());
    for v in &views {
        fresh
            .add_view(v.clone())
            .expect("generated views are valid");
    }
    assert_eq!(refreshed, fresh.find_substitutes(q));
}

/// α-equivalent queries (same shape, different output names) share one
/// cache entry, and the hit is restamped with the probing query's names.
#[test]
fn renamed_outputs_hit_and_restamp() {
    let (views, queries) = pools(16, 8);
    let engine = engine_with(MatchConfig::default());
    for v in &views {
        engine
            .add_view(v.clone())
            .expect("generated views are valid");
    }

    let q = queries
        .iter()
        .find(|q| !engine.find_substitutes(q).is_empty())
        .expect("workload produced at least one matching query");
    engine.reset_stats();
    engine.clear_substitute_cache();

    let mut renamed = q.clone();
    match &mut renamed.output {
        OutputList::Spj(items) => {
            for (i, item) in items.iter_mut().enumerate() {
                item.name = format!("r{i}");
            }
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            for (i, item) in group_by.iter_mut().enumerate() {
                item.name = format!("g{i}");
            }
            for (i, item) in aggregates.iter_mut().enumerate() {
                item.name = format!("a{i}");
            }
        }
    }

    let original = engine.find_substitutes(q);
    let restamped = engine.find_substitutes(&renamed);
    let s = engine.stats();
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.cache_hits, 1, "renamed variant must share the entry");
    assert_eq!(original.len(), restamped.len());
    let want = renamed.output_names();
    for (_, sub) in &restamped {
        match &sub.output {
            OutputList::Spj(items) => {
                let got: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
                assert_eq!(got, want, "hit must carry the probing query's names");
            }
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                let got: Vec<&str> = group_by
                    .iter()
                    .map(|i| i.name.as_str())
                    .chain(aggregates.iter().map(|i| i.name.as_str()))
                    .collect();
                assert_eq!(got, want, "hit must carry the probing query's names");
            }
        }
    }
}

/// The cache never holds more entries than its configured capacity, and
/// a warm entry keeps answering across unrelated traffic (clock eviction
/// gives referenced entries a second chance).
#[test]
fn capacity_bounds_resident_entries() {
    let (views, queries) = pools(16, 8);
    let config = MatchConfig {
        substitute_cache_capacity: 3,
        substitute_cache_shards: 1,
        ..MatchConfig::default()
    };
    let engine = engine_with(config);
    for v in &views {
        engine
            .add_view(v.clone())
            .expect("generated views are valid");
    }
    for _round in 0..3 {
        for q in &queries {
            engine.find_substitutes(q);
            assert!(engine.substitute_cache_len() <= 3, "capacity exceeded");
        }
    }
    let s = engine.stats();
    assert!(
        s.cache_hits + s.cache_misses == 3 * queries.len() as u64,
        "every find probed the cache"
    );
}
