//! The debug-build prove oracle: with [`MatchConfig::prove_budget`]
//! nonzero, `find_substitutes` hands every substitute it is about to
//! return to the `mv-prove` bounded equivalence checker and panics on a
//! refutation (MV301/MV302). The engine is sound, so enabling the oracle
//! must be invisible — these tests simply run real matches through it.
//! In release builds the hook compiles out and the tests degrade to
//! plain matching assertions.

use mv_catalog::tpch::tpch_catalog;
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn prove_config() -> MatchConfig {
    MatchConfig {
        prove_budget: 20_000,
        ..MatchConfig::default()
    }
}

/// A range-compensated SPJ match runs through the oracle without
/// tripping it.
#[test]
fn oracle_accepts_range_compensation() {
    let (cat, t) = tpch_catalog();
    let engine = MatchingEngine::new(cat, prove_config());
    engine
        .add_view(ViewDef::new(
            "big_items",
            SpjgExpr::spj(
                vec![t.lineitem],
                BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
                    NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
                ],
            ),
        ))
        .unwrap();
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(30i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
    );
    assert_eq!(engine.find_substitutes(&query).len(), 1);
}

/// An aggregation-rollup match (the paper's Example 4 shape) takes the
/// enumerative path of the prover; still clean.
#[test]
fn oracle_accepts_aggregate_rollup() {
    let (cat, t) = tpch_catalog();
    let engine = MatchingEngine::new(cat, prove_config());
    engine
        .add_view(ViewDef::new(
            "rev_by_order",
            SpjgExpr::aggregate(
                vec![t.lineitem],
                BoolExpr::Literal(true),
                vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
                vec![
                    NamedAgg::new(AggFunc::CountStar, "cnt"),
                    NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "revenue"),
                ],
            ),
        ))
        .unwrap();
    let query = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![],
        vec![NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "revenue")],
    );
    assert_eq!(engine.find_substitutes(&query).len(), 1);
}

/// The oracle defaults **on** in debug builds (the compiled-program
/// prover made it cheap enough — DESIGN.md §16) and off in release,
/// where the hook compiles out anyway. `prove_budget: 0` still disables
/// it entirely: same matches, no proving.
#[test]
fn oracle_default_tracks_build_profile() {
    if cfg!(debug_assertions) {
        assert!(MatchConfig::default().prove_budget > 0);
    } else {
        assert_eq!(MatchConfig::default().prove_budget, 0);
    }
    let (cat, t) = tpch_catalog();
    let engine = MatchingEngine::new(
        cat,
        MatchConfig {
            prove_budget: 0,
            ..MatchConfig::default()
        },
    );
    engine
        .add_view(ViewDef::new(
            "all_items",
            SpjgExpr::spj(
                vec![t.lineitem],
                BoolExpr::Literal(true),
                vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
            ),
        ))
        .unwrap();
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
    );
    assert_eq!(engine.find_substitutes(&query).len(), 1);
}
