//! Edge cases of the matching algorithm beyond the paper's worked
//! examples: composite foreign keys, chains of extra tables, expression
//! grouping, and multi-view ranking. All positive cases are verified by
//! execution against the direct oracle.

use mv_core::{MatchConfig, MatchingEngine};
use mv_data::{generate_tpch, TpchScale};
use mv_exec::{bag_diff, execute_spjg, execute_substitute, materialize_view};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, ViewDef};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn check_pair(view: SpjgExpr, query: SpjgExpr, seed: u64) -> usize {
    let (db, _) = generate_tpch(&TpchScale::tiny(), seed);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let vdef = ViewDef::new("v", view);
    let rows = materialize_view(&db, &vdef);
    engine.add_view(vdef).unwrap();
    let subs = engine.find_substitutes(&query);
    let direct = execute_spjg(&db, &query);
    for (_, sub) in &subs {
        let rewritten = execute_substitute(&rows, sub);
        assert!(
            bag_diff(&direct, &rewritten).is_none(),
            "{:?}",
            bag_diff(&direct, &rewritten)
        );
    }
    subs.len()
}

/// Extra table joined through the *composite* foreign key
/// lineitem(l_partkey, l_suppkey) → partsupp(ps_partkey, ps_suppkey).
#[test]
fn composite_fk_extra_table_eliminated() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.partsupp],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 1), cr(1, 0)), // l_partkey = ps_partkey
            BoolExpr::col_eq(cr(0, 2), cr(1, 1)), // l_suppkey = ps_suppkey
        ]),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
        ],
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
        ],
    );
    assert_eq!(check_pair(view, query, 71), 1);
}

/// Composite FK with only *one* of the two columns equated: the join is
/// not cardinality preserving and the view must be rejected.
#[test]
fn partial_composite_fk_rejected() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.partsupp],
        BoolExpr::col_eq(cr(0, 1), cr(1, 0)), // partkey only
        vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
    );
    assert_eq!(check_pair(view, query, 71), 0);
}

/// A three-deep chain of extra tables: lineitem → orders → customer →
/// nation, query over lineitem only.
#[test]
fn chain_of_three_extra_tables() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.customer, t.nation],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)), // l_orderkey = o_orderkey
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)), // o_custkey = c_custkey
            BoolExpr::col_eq(cr(2, 3), cr(3, 0)), // c_nationkey = n_nationkey
        ]),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
        ],
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
        ],
    );
    assert_eq!(check_pair(view, query, 72), 1);
}

/// Two branching extra tables (orders and part) hanging off lineitem.
#[test]
fn branching_extra_tables() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.part],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::col_eq(cr(0, 1), cr(2, 0)),
        ]),
        vec![NamedExpr::new(S::col(cr(0, 4)), "l_quantity")],
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 4)), "l_quantity")],
    );
    assert_eq!(check_pair(view, query, 73), 1);
}

/// A query over a *middle* table of the view's chain: orders answered from
/// a lineitem-orders-customer view must be rejected (lineitem cannot be
/// eliminated: the FK points from lineitem to orders, and dropping it
/// would change cardinality).
#[test]
fn upstream_extra_table_cannot_be_eliminated() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.customer],
        BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
        ]),
        vec![
            NamedExpr::new(S::col(cr(1, 0)), "o_orderkey"),
            NamedExpr::new(S::col(cr(1, 3)), "o_totalprice"),
        ],
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "o_orderkey"),
            NamedExpr::new(S::col(cr(0, 3)), "o_totalprice"),
        ],
    );
    assert_eq!(check_pair(view, query, 74), 0);
}

/// Grouping on an *expression*: both sides group by l_quantity * 10; the
/// templates must match through the shallow matcher.
#[test]
fn expression_grouping_matches_textually() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let bucket = S::col(cr(0, 4)).binary(BinOp::Mul, S::lit(10i64));
    let view = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(bucket.clone(), "bucket")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "price"),
        ],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(bucket, "bucket")],
        vec![NamedAgg::new(AggFunc::Sum(S::col(cr(0, 5))), "price")],
    );
    assert_eq!(check_pair(view, query, 75), 1);
    // A *different* grouping expression must not match.
    let other = S::col(cr(0, 4)).binary(BinOp::Mul, S::lit(20i64));
    let view = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(other, "bucket")],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(
            S::col(cr(0, 4)).binary(BinOp::Mul, S::lit(10i64)),
            "bucket",
        )],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    assert_eq!(check_pair(view, query, 75), 0);
}

/// The shallow matcher's commutativity is *textual* (the paper's level
/// one beyond pure syntax): `SUM(10 * a)` matches `SUM(a * 10)` because
/// the rendered operand texts differ and canonicalize, but `SUM(b * a)`
/// vs `SUM(a * b)` does not — both operands render as `?`, so the
/// placeholder order is positional, exactly the kind of missed
/// opportunity the paper accepts for speed.
#[test]
fn commutativity_is_textual_not_positional() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    // Literal-column products commute.
    let view = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "l_partkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(
                AggFunc::Sum(S::lit(10i64).binary(BinOp::Mul, S::col(cr(0, 4)))),
                "rev",
            ),
        ],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "l_partkey")],
        vec![NamedAgg::new(
            AggFunc::Sum(S::col(cr(0, 4)).binary(BinOp::Mul, S::lit(10i64))),
            "rev",
        )],
    );
    assert_eq!(check_pair(view, query, 76), 1);
    // Column-column products do not (both operands render as `?`).
    let view = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "l_partkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(
                AggFunc::Sum(S::col(cr(0, 5)).binary(BinOp::Mul, S::col(cr(0, 4)))),
                "rev",
            ),
        ],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "l_partkey")],
        vec![NamedAgg::new(
            AggFunc::Sum(S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)))),
            "rev",
        )],
    );
    assert_eq!(check_pair(view, query, 76), 0);
}

/// Several views match one query; all produced substitutes are correct
/// and distinct.
#[test]
fn multiple_views_all_produce_correct_substitutes() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 77);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    let mut materialized = Vec::new();
    for (name, lo, hi) in [("wide", 0, 10_000), ("mid", 0, 5_000), ("snug", 50, 900)] {
        let view = ViewDef::new(
            name,
            SpjgExpr::spj(
                vec![t.orders],
                BoolExpr::and(vec![
                    BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
                    BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Le, S::lit(hi)),
                ]),
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "o_orderkey"),
                    NamedExpr::new(S::col(cr(0, 3)), "o_totalprice"),
                ],
            ),
        );
        let rows = materialize_view(&db, &view);
        let id = engine.add_view(view).unwrap();
        materialized.push((id, rows));
    }
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(60i64)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Le, S::lit(80i64)),
        ]),
        vec![NamedExpr::new(S::col(cr(0, 3)), "o_totalprice")],
    );
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 3, "all three views contain the window");
    let direct = execute_spjg(&db, &query);
    for (vid, sub) in &subs {
        let rows = &materialized.iter().find(|(id, _)| id == vid).unwrap().1;
        let rewritten = execute_substitute(rows, sub);
        assert!(bag_diff(&direct, &rewritten).is_none());
    }
}

/// A view with an exclusive bound does not cover a query with the matching
/// inclusive bound (the open/closed distinction of the range test).
#[test]
fn open_bound_does_not_cover_closed_bound() {
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Gt, S::lit(100i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(100i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    assert_eq!(check_pair(view, query, 78), 0);
    // The other way around works, with a compensating strict bound.
    let view = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(100i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Gt, S::lit(100i64)),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    assert_eq!(check_pair(view, query, 78), 1);
}

/// Date-typed ranges flow through the whole pipeline.
#[test]
fn date_range_subsumption_and_compensation() {
    use mv_catalog::types::days_from_date;
    let (_, t) = mv_catalog::tpch::tpch_catalog();
    let d = |y, m, day| S::lit(mv_catalog::Value::Date(days_from_date(y, m, day)));
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 10)), CmpOp::Ge, d(1994, 1, 1)),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(S::col(cr(0, 10)), "l_shipdate"),
        ],
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 10)), CmpOp::Ge, d(1995, 6, 1)),
            BoolExpr::cmp(S::col(cr(0, 10)), CmpOp::Lt, d(1996, 6, 1)),
        ]),
        vec![NamedExpr::new(S::col(cr(0, 0)), "l_orderkey")],
    );
    assert_eq!(check_pair(view, query, 79), 1);
}

/// Scalar-aggregate query (empty GROUP BY) from a grouped view: full
/// roll-up including the zero-count edge when compensation empties it.
#[test]
fn scalar_rollup_with_empty_compensation_window() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 80);
    let view = ViewDef::new(
        "per_cust",
        SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
            ],
        ),
    );
    let rows = materialize_view(&db, &view);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    engine.add_view(view).unwrap();
    // Compensating window selects NO customers: count must be 0, not NULL.
    let query = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(-5i64)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::CountStar, "n"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
        ],
    );
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let got = execute_substitute(&rows, &subs[0].1);
    let want = execute_spjg(&db, &query);
    assert!(bag_diff(&got, &want).is_none(), "{got:?} vs {want:?}");
    assert_eq!(
        got,
        vec![vec![mv_catalog::Value::Int(0), mv_catalog::Value::Null]]
    );
}

/// An aggregate view's count column answers a count-only query directly
/// (projection, no re-aggregation) when the grouping lists coincide.
#[test]
fn equal_grouping_projects_count_directly() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 81);
    let view = ViewDef::new(
        "per_cust",
        SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        ),
    );
    let rows = materialize_view(&db, &view);
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    engine.add_view(view).unwrap();
    let query = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::CountStar, "n")],
    );
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    assert!(
        matches!(subs[0].1.output, OutputList::Spj(_)),
        "same grouping ⇒ plain projection"
    );
    let got = execute_substitute(&rows, &subs[0].1);
    assert!(bag_diff(&got, &execute_spjg(&db, &query)).is_none());
}

/// Self-joins end to end: both the occurrence-mapping in the matcher and
/// the executor handle repeated base tables.
#[test]
fn self_join_substitute_executes_correctly() {
    let (db, t) = generate_tpch(&TpchScale::tiny(), 82);
    // Pairs of nations in the same region.
    let pred = BoolExpr::col_eq(cr(0, 2), cr(1, 2));
    let view = ViewDef::new(
        "nation_pairs",
        SpjgExpr::spj(
            vec![t.nation, t.nation],
            pred.clone(),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "a_key"),
                NamedExpr::new(S::col(cr(1, 0)), "b_key"),
                NamedExpr::new(S::col(cr(0, 1)), "a_name"),
                NamedExpr::new(S::col(cr(1, 1)), "b_name"),
            ],
        ),
    );
    let rows = materialize_view(&db, &view);
    assert_eq!(rows.len(), 125, "25 nations over 5 regions: 5 * 25 pairs");
    let engine = MatchingEngine::new(db.catalog.clone(), MatchConfig::default());
    engine.add_view(view).unwrap();
    let query = SpjgExpr::spj(
        vec![t.nation, t.nation],
        BoolExpr::and(vec![
            pred,
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(5i64)),
        ]),
        vec![
            NamedExpr::new(S::col(cr(0, 1)), "a_name"),
            NamedExpr::new(S::col(cr(1, 1)), "b_name"),
        ],
    );
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    let direct = execute_spjg(&db, &query);
    let rewritten = execute_substitute(&rows, &subs[0].1);
    assert!(bag_diff(&direct, &rewritten).is_none());
    assert!(!direct.is_empty());
}
