//! The engine's concurrency contract: `MatchingEngine` is `Send + Sync`,
//! any number of threads may run `find_substitutes` against one shared
//! engine, every path (serial candidate loop, parallel candidate loop,
//! batch fan-out) returns identical substitute lists in ascending
//! `ViewId` order, and the atomic instrumentation counters add up
//! exactly under contention.

use mv_catalog::tpch::tpch_catalog;
use mv_core::{MatchConfig, MatchingEngine};
use mv_plan::{SpjgExpr, ViewDef};
use mv_workload::{Generator, WorkloadParams};
use std::sync::Arc;

const VIEW_SEED: u64 = 0xC0_FFEE;
const QUERY_SEED: u64 = 0xBEEF;

fn workload(n_views: usize, n_queries: usize) -> (Vec<ViewDef>, Vec<SpjgExpr>) {
    let (catalog, _) = tpch_catalog();
    let views = Generator::new(&catalog, WorkloadParams::views(), VIEW_SEED).views(n_views);
    let queries =
        Generator::new(&catalog, WorkloadParams::queries(), QUERY_SEED).queries(n_queries);
    (views, queries)
}

fn engine(views: &[ViewDef], config: MatchConfig) -> MatchingEngine {
    let (catalog, _) = tpch_catalog();
    let engine = MatchingEngine::new(catalog, config);
    for v in views {
        engine
            .add_view(v.clone())
            .expect("generated views are valid");
    }
    engine
}

/// Force the candidate loop serial regardless of candidate count.
fn serial_config() -> MatchConfig {
    MatchConfig {
        parallel_threshold: usize::MAX,
        ..MatchConfig::default()
    }
}

/// Force the candidate loop parallel from the first candidate on, with
/// real threads even on a single-CPU machine.
fn parallel_config() -> MatchConfig {
    MatchConfig {
        parallel_threshold: 2,
        parallel_workers: 4,
        ..MatchConfig::default()
    }
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<MatchingEngine>();
    assert_sync::<Arc<MatchingEngine>>();
}

#[test]
fn concurrent_matching_equals_serial() {
    let (views, queries) = workload(80, 24);
    let engine = Arc::new(engine(&views, MatchConfig::default()));

    let serial: Vec<_> = queries.iter().map(|q| engine.find_substitutes(q)).collect();
    let serial_stats = engine.stats();
    assert_eq!(serial_stats.invocations, queries.len() as u64);

    // 4 threads each run the full query list against the shared engine.
    const THREADS: u64 = 4;
    engine.reset_stats();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let engine = Arc::clone(&engine);
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                for (q, expected) in queries.iter().zip(serial) {
                    assert_eq!(&engine.find_substitutes(q), expected);
                }
            });
        }
    });

    // Atomic counters: exactly THREADS times the serial totals.
    let stats = engine.stats();
    assert_eq!(stats.invocations, THREADS * serial_stats.invocations);
    assert_eq!(stats.candidates, THREADS * serial_stats.candidates);
    assert_eq!(
        stats.views_available,
        THREADS * serial_stats.views_available
    );
    assert_eq!(stats.substitutes, THREADS * serial_stats.substitutes);
}

#[test]
fn parallel_candidate_loop_equals_serial() {
    let (views, queries) = workload(60, 24);
    let serial_engine = engine(&views, serial_config());
    let parallel_engine = engine(&views, parallel_config());
    let mut matched = 0usize;
    for q in &queries {
        let s = serial_engine.find_substitutes(q);
        let p = parallel_engine.find_substitutes(q);
        assert_eq!(p, s, "parallel candidate loop diverged");
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0), "ViewId order");
        matched += s.len();
    }
    assert!(matched > 0, "workload produced no matches to compare");
}

#[test]
fn batch_equals_query_at_a_time() {
    let (views, queries) = workload(60, 24);
    let engine = engine(&views, parallel_config());
    let one_by_one: Vec<_> = queries.iter().map(|q| engine.find_substitutes(q)).collect();
    engine.reset_stats();
    let batch = engine.find_substitutes_batch(&queries);
    assert_eq!(batch, one_by_one);
    assert_eq!(engine.stats().invocations, queries.len() as u64);
}

/// `find_substitutes_many` racing concurrent registration: the batch
/// pins one snapshot, so every answer within one batch call must be
/// consistent with a single catalog version — and once the writer is
/// done, batches must agree with query-at-a-time matching.
#[test]
fn batched_matching_races_registration() {
    let (views, queries) = workload(60, 24);
    let (seed_views, late_views) = views.split_at(30);
    let engine = Arc::new(engine(seed_views, parallel_config()));

    std::thread::scope(|scope| {
        // Writer registers the second half of the catalog.
        {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for v in late_views {
                    engine
                        .add_view(v.clone())
                        .expect("generated views are valid");
                }
            });
        }
        // Readers run batches throughout; each batch's rows must match
        // a per-query replay against the snapshot the batch pinned —
        // checked indirectly: every reported ViewId must be live at
        // some point, and rows stay sorted ascending.
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let queries = &queries;
            scope.spawn(move || {
                for _ in 0..4 {
                    let batch = engine.find_substitutes_many(queries);
                    assert_eq!(batch.len(), queries.len());
                    for rows in &batch {
                        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "ViewId order");
                    }
                }
            });
        }
    });

    // Quiescent: the batch path must agree byte-for-byte with the
    // query-at-a-time path over the full catalog.
    let one_by_one: Vec<_> = queries.iter().map(|q| engine.find_substitutes(q)).collect();
    assert_eq!(engine.find_substitutes_many(&queries), one_by_one);
    assert!(
        one_by_one.iter().any(|rows| !rows.is_empty()),
        "workload produced no matches to compare"
    );
}

/// Many threads hammering a small set of repeated queries against the
/// shared cache: every hit must return exactly the serial answer, and
/// with the working set far below capacity the cache must serve most of
/// the repeated traffic.
#[test]
fn concurrent_cache_hits_are_identical() {
    let (views, queries) = workload(80, 8);
    let engine = Arc::new(engine(&views, MatchConfig::default()));
    let serial: Vec<_> = queries.iter().map(|q| engine.find_substitutes(q)).collect();
    engine.reset_stats();

    const THREADS: usize = 4;
    const ROUNDS: usize = 5;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let engine = Arc::clone(&engine);
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    for (q, expected) in queries.iter().zip(serial) {
                        assert_eq!(&engine.find_substitutes(q), expected);
                    }
                }
            });
        }
    });

    let stats = engine.stats();
    let probes = (THREADS * ROUNDS * queries.len()) as u64;
    assert_eq!(stats.cache_hits + stats.cache_misses, probes);
    // The warm-up pass above already cached every query shape.
    assert_eq!(stats.cache_hits, probes, "all repeated probes must hit");
    assert_eq!(stats.cache_invalidations, 0);
}

/// `remove_view` (an exclusive `&mut` operation) interleaved with
/// matching rounds: removed views drop out of the results immediately
/// and never reappear, on both the serial and the parallel path.
#[test]
fn remove_view_interleaved_with_matching() {
    for config in [serial_config(), parallel_config()] {
        let (views, queries) = workload(60, 24);
        let engine = engine(&views, config);

        let initial: Vec<_> = queries.iter().map(|q| engine.find_substitutes(q)).collect();
        let matched: Vec<_> = initial.iter().flatten().map(|(id, _)| *id).collect();
        assert!(!matched.is_empty(), "workload produced no matches");

        // Remove every matched view, one matching round per removal.
        let mut removed = Vec::new();
        for &victim in &matched {
            if removed.contains(&victim) {
                continue;
            }
            engine.remove_view(victim);
            removed.push(victim);
            for q in &queries {
                for (id, _) in engine.find_substitutes(q) {
                    assert!(!removed.contains(&id), "removed view {id:?} reappeared");
                }
            }
        }

        // With every previously-matching view gone, all that remains are
        // matches on never-removed views — and the survivors must agree
        // with a fresh engine holding only the surviving views.
        let survivors: Vec<ViewDef> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.iter().any(|r| r.0 as usize == *i))
            .map(|(_, v)| v.clone())
            .collect();
        let fresh = self::engine(&survivors, MatchConfig::default());
        for q in &queries {
            assert_eq!(
                engine.find_substitutes(q).len(),
                fresh.find_substitutes(q).len()
            );
        }
    }
}
