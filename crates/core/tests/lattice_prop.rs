//! Property tests for the lattice index: under arbitrary insertion
//! sequences (and payload removals), subset/superset searches must return
//! exactly what a naive scan over the stored key sets returns.

use mv_core::LatticeIndex;
use proptest::prelude::*;

fn is_subset(a: &[u8], b: &[u8]) -> bool {
    a.iter().all(|x| b.contains(x))
}

fn normalize(mut v: Vec<u8>) -> Vec<u8> {
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn search_equals_naive_scan(
        keys in prop::collection::vec(prop::collection::vec(0u8..12, 0..6), 1..40),
        probe in prop::collection::vec(0u8..12, 0..6),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        let stored: Vec<Vec<u8>> = keys.iter().cloned().map(normalize).collect();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        let probe = normalize(probe);

        let mut found_subsets: Vec<usize> =
            idx.find_subsets(&probe).into_iter().copied().collect();
        found_subsets.sort();
        let mut naive_subsets: Vec<usize> = stored
            .iter()
            .enumerate()
            .filter(|(_, k)| is_subset(k, &probe))
            .map(|(i, _)| i)
            .collect();
        naive_subsets.sort();
        prop_assert_eq!(found_subsets, naive_subsets);

        let mut found_supers: Vec<usize> =
            idx.find_supersets(&probe).into_iter().copied().collect();
        found_supers.sort();
        let mut naive_supers: Vec<usize> = stored
            .iter()
            .enumerate()
            .filter(|(_, k)| is_subset(&probe, k))
            .map(|(i, _)| i)
            .collect();
        naive_supers.sort();
        prop_assert_eq!(found_supers, naive_supers);
    }

    #[test]
    fn removal_respects_searches(
        keys in prop::collection::vec(prop::collection::vec(0u8..10, 0..5), 1..25),
        remove_mask in prop::collection::vec(any::<bool>(), 1..25),
        probe in prop::collection::vec(0u8..10, 0..5),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        let mut alive: Vec<bool> = vec![true; keys.len()];
        for (i, k) in keys.iter().enumerate() {
            if *remove_mask.get(i).unwrap_or(&false) {
                prop_assert!(idx.remove(k.clone(), &i));
                alive[i] = false;
            }
        }
        let probe = normalize(probe);
        let mut found: Vec<usize> = idx.find_subsets(&probe).into_iter().copied().collect();
        found.sort();
        let mut naive: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(i, k)| alive[*i] && is_subset(&normalize((*k).clone()), &probe))
            .map(|(i, _)| i)
            .collect();
        naive.sort();
        prop_assert_eq!(found, naive);
    }

    #[test]
    fn monotone_hitting_search_equals_naive(
        keys in prop::collection::vec(prop::collection::vec(0u8..10, 0..5), 1..30),
        classes in prop::collection::vec(prop::collection::vec(0u8..10, 1..4), 0..4),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        let hits = |k: &[u8]| classes.iter().all(|cl| cl.iter().any(|e| k.contains(e)));
        let mut found: Vec<usize> = idx.find_monotone_down(hits).into_iter().copied().collect();
        found.sort();
        let mut naive: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| {
                let k = normalize((*k).clone());
                classes.iter().all(|cl| cl.iter().any(|e| k.contains(e)))
            })
            .map(|(i, _)| i)
            .collect();
        naive.sort();
        prop_assert_eq!(found, naive);
    }
}
