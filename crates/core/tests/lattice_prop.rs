//! Property tests for the lattice index: under arbitrary insertion
//! sequences (and payload removals), subset/superset searches must return
//! exactly what a naive scan over the stored key sets returns.

use mv_core::LatticeIndex;
use proptest::prelude::*;

fn is_subset(a: &[u8], b: &[u8]) -> bool {
    a.iter().all(|x| b.contains(x))
}

fn normalize(mut v: Vec<u8>) -> Vec<u8> {
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn search_equals_naive_scan(
        keys in prop::collection::vec(prop::collection::vec(0u8..12, 0..6), 1..40),
        probe in prop::collection::vec(0u8..12, 0..6),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        let stored: Vec<Vec<u8>> = keys.iter().cloned().map(normalize).collect();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        let probe = normalize(probe);

        let mut found_subsets: Vec<usize> =
            idx.find_subsets(&probe).into_iter().copied().collect();
        found_subsets.sort();
        let mut naive_subsets: Vec<usize> = stored
            .iter()
            .enumerate()
            .filter(|(_, k)| is_subset(k, &probe))
            .map(|(i, _)| i)
            .collect();
        naive_subsets.sort();
        prop_assert_eq!(found_subsets, naive_subsets);

        let mut found_supers: Vec<usize> =
            idx.find_supersets(&probe).into_iter().copied().collect();
        found_supers.sort();
        let mut naive_supers: Vec<usize> = stored
            .iter()
            .enumerate()
            .filter(|(_, k)| is_subset(&probe, k))
            .map(|(i, _)| i)
            .collect();
        naive_supers.sort();
        prop_assert_eq!(found_supers, naive_supers);
    }

    #[test]
    fn removal_respects_searches(
        keys in prop::collection::vec(prop::collection::vec(0u8..10, 0..5), 1..25),
        remove_mask in prop::collection::vec(any::<bool>(), 1..25),
        probe in prop::collection::vec(0u8..10, 0..5),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        let mut alive: Vec<bool> = vec![true; keys.len()];
        for (i, k) in keys.iter().enumerate() {
            if *remove_mask.get(i).unwrap_or(&false) {
                prop_assert!(idx.remove(k.clone(), &i));
                alive[i] = false;
            }
        }
        let probe = normalize(probe);
        let mut found: Vec<usize> = idx.find_subsets(&probe).into_iter().copied().collect();
        found.sort();
        let mut naive: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(i, k)| alive[*i] && is_subset(&normalize((*k).clone()), &probe))
            .map(|(i, _)| i)
            .collect();
        naive.sort();
        prop_assert_eq!(found, naive);
    }

    #[test]
    fn monotone_up_search_equals_naive(
        keys in prop::collection::vec(prop::collection::vec(0u8..10, 0..5), 1..30),
        forbidden in prop::collection::vec(0u8..10, 0..4),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        // "Avoids every forbidden element" fails for all supersets once it
        // fails for a key — the shape of the range-column subset condition.
        let qualifies = |k: &[u8]| !k.iter().any(|e| forbidden.contains(e));
        let mut found: Vec<usize> = idx.find_monotone_up(qualifies).into_iter().copied().collect();
        found.sort();
        let mut naive: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.iter().any(|e| forbidden.contains(e)))
            .map(|(i, _)| i)
            .collect();
        naive.sort();
        prop_assert_eq!(found, naive);
    }

    #[test]
    fn duplicate_inserts_keep_every_payload(
        key in prop::collection::vec(0u8..8, 0..5),
        copies in 1usize..6,
        probe_extra in prop::collection::vec(0u8..8, 0..3),
    ) {
        // Re-inserting under the same key (including the empty key) must
        // accumulate payloads on one node, and every search that reaches
        // the key must return all of them exactly once.
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        for i in 0..copies {
            idx.insert(key.clone(), i);
        }
        prop_assert_eq!(idx.len(), copies);
        prop_assert_eq!(idx.node_count(), 1);

        let key_n = normalize(key.clone());
        let mut probe = key_n.clone();
        probe.extend(probe_extra.iter().copied());
        let probe = normalize(probe);
        let mut found: Vec<usize> = idx.find_subsets(&probe).into_iter().copied().collect();
        found.sort();
        prop_assert_eq!(found, (0..copies).collect::<Vec<_>>());

        // The empty probe finds the key via the superset search, and via
        // the subset search exactly when the key itself is empty.
        let mut sup: Vec<usize> = idx.find_supersets(&[]).into_iter().copied().collect();
        sup.sort();
        prop_assert_eq!(sup, (0..copies).collect::<Vec<_>>());
        let subs = idx.find_subsets(&[]).len();
        prop_assert_eq!(subs, if key_n.is_empty() { copies } else { 0 });

        // Removing one copy leaves the rest reachable.
        prop_assert!(idx.remove(key.clone(), &0));
        prop_assert_eq!(idx.len(), copies - 1);
        prop_assert_eq!(idx.find_subsets(&probe).len(), copies - 1);
    }

    #[test]
    fn monotone_hitting_search_equals_naive(
        keys in prop::collection::vec(prop::collection::vec(0u8..10, 0..5), 1..30),
        classes in prop::collection::vec(prop::collection::vec(0u8..10, 1..4), 0..4),
    ) {
        let mut idx: LatticeIndex<u8, usize> = LatticeIndex::new();
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k.clone(), i);
        }
        let hits = |k: &[u8]| classes.iter().all(|cl| cl.iter().any(|e| k.contains(e)));
        let mut found: Vec<usize> = idx.find_monotone_down(hits).into_iter().copied().collect();
        found.sort();
        let mut naive: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| {
                let k = normalize((*k).clone());
                classes.iter().all(|cl| cl.iter().any(|e| k.contains(e)))
            })
            .map(|(i, _)| i)
            .collect();
        naive.sort();
        prop_assert_eq!(found, naive);
    }
}
