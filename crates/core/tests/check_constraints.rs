//! Check-constraint folding (section 3.1.2): "The key observation is that
//! check constraints on the tables of a query can be added to the
//! where-clause without changing the query result."

use mv_catalog::tpch::tpch_catalog;
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{NamedExpr, SpjgExpr, ViewDef};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

/// View: orders with o_totalprice >= 0 (redundant under the constraint).
fn view_with_redundant_range() -> (mv_catalog::Catalog, mv_catalog::tpch::TpchTables, ViewDef) {
    let (cat, t) = tpch_catalog();
    let view = ViewDef::new(
        "nonneg_orders",
        SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::cmp(S::col(cr(0, 3)), CmpOp::Ge, S::lit(0i64)),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "o_orderkey"),
                NamedExpr::new(S::col(cr(0, 3)), "o_totalprice"),
            ],
        ),
    );
    (cat, t, view)
}

fn plain_query(t: &mv_catalog::tpch::TpchTables) -> SpjgExpr {
    // No predicate at all: without the check constraint, the view's range
    // o_totalprice >= 0 fails the range subsumption test.
    SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    )
}

#[test]
fn check_constraint_unlocks_redundant_view_range() {
    let (cat, t, view) = view_with_redundant_range();

    // Without the constraint: rejected.
    let engine = MatchingEngine::new(cat.clone(), MatchConfig::default());
    engine.add_view(view.clone()).unwrap();
    assert!(engine.find_substitutes(&plain_query(&t)).is_empty());

    // With CHECK (o_totalprice >= 0): accepted with no compensation.
    let engine = MatchingEngine::new(cat, MatchConfig::default());
    engine
        .add_check_constraint(
            t.orders,
            BoolExpr::cmp(S::col(cr(0, 3)), CmpOp::Ge, S::lit(0i64)),
        )
        .unwrap();
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&plain_query(&t));
    assert_eq!(subs.len(), 1);
    assert!(
        subs[0].1.predicates.is_empty(),
        "{:?}",
        subs[0].1.predicates
    );
}

#[test]
fn check_constraints_can_be_disabled() {
    let (cat, t, view) = view_with_redundant_range();
    let engine = MatchingEngine::new(
        cat,
        MatchConfig {
            use_check_constraints: false,
            ..MatchConfig::default()
        },
    );
    engine
        .add_check_constraint(
            t.orders,
            BoolExpr::cmp(S::col(cr(0, 3)), CmpOp::Ge, S::lit(0i64)),
        )
        .unwrap();
    engine.add_view(view).unwrap();
    assert!(engine.find_substitutes(&plain_query(&t)).is_empty());
}

#[test]
fn check_residual_satisfies_view_residual_without_compensation() {
    let (cat, t) = tpch_catalog();
    // View keeps only 'O' status orders; a CHECK pins every order to 'O'.
    let like_o = BoolExpr::Like {
        expr: S::col(cr(0, 2)),
        pattern: "O".into(),
        negated: false,
    };
    let view = ViewDef::new(
        "open_orders",
        SpjgExpr::spj(
            vec![t.orders],
            like_o.clone(),
            vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
        ),
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    // Without the constraint: the view's residual is not in the query.
    let engine = MatchingEngine::new(cat.clone(), MatchConfig::default());
    engine.add_view(view.clone()).unwrap();
    assert!(engine.find_substitutes(&query).is_empty());
    // With the constraint: matched, and crucially the check-derived
    // residual is NOT emitted as a compensating predicate (it could not
    // be: o_orderstatus is not a view output).
    let engine = MatchingEngine::new(cat, MatchConfig::default());
    engine.add_check_constraint(t.orders, like_o).unwrap();
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    assert!(subs[0].1.predicates.is_empty());
}

#[test]
fn genuine_residuals_still_compensated_alongside_checks() {
    let (cat, t) = tpch_catalog();
    let view = ViewDef::new(
        "plain",
        SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "o_orderkey"),
                NamedExpr::new(S::col(cr(0, 8)), "o_comment"),
            ],
        ),
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Like {
            expr: S::col(cr(0, 8)),
            pattern: "%pending%".into(),
            negated: false,
        },
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
    );
    let engine = MatchingEngine::new(cat, MatchConfig::default());
    engine
        .add_check_constraint(
            t.orders,
            BoolExpr::cmp(S::col(cr(0, 3)), CmpOp::Ge, S::lit(0i64)),
        )
        .unwrap();
    engine.add_view(view).unwrap();
    let subs = engine.find_substitutes(&query);
    assert_eq!(subs.len(), 1);
    // The genuine LIKE residual is compensated; the check range is not.
    assert_eq!(subs[0].1.predicates.len(), 1);
    assert!(subs[0].1.predicates[0].to_string().contains("pending"));
}

#[test]
fn invalid_check_constraint_rejected() {
    let (cat, t) = tpch_catalog();
    let engine = MatchingEngine::new(cat, MatchConfig::default());
    // Wrong occurrence.
    assert!(engine
        .add_check_constraint(t.orders, BoolExpr::col_eq(cr(1, 0), cr(0, 0)))
        .is_err());
    // Column out of range.
    assert!(engine
        .add_check_constraint(
            t.orders,
            BoolExpr::cmp(S::col(cr(0, 99)), CmpOp::Ge, S::lit(0i64))
        )
        .is_err());
}
