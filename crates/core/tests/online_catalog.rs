//! The online-catalog contract: registration (`add_view`, `add_views`,
//! `remove_view`, `add_check_constraint`) runs concurrently with matching
//! against one shared engine. Matchers pin a snapshot per match and must
//! never observe a half-registered view; every substitute produced mid-
//! churn must pass the independent `mv-verify` analyzer (checked here
//! explicitly, so release builds prove it too); and the per-table cache
//! invalidation must be conservative — a cached engine never serves a
//! result an uncached engine with the same history would not produce.

use mv_catalog::tpch::tpch_catalog;
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{SpjgExpr, Substitute, ViewDef, ViewId};
use mv_workload::{Generator, WorkloadParams};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const VIEW_SEED: u64 = 0x0CA7A106;
const QUERY_SEED: u64 = 0xD1CE;

fn workload(n_views: usize, n_queries: usize) -> (Vec<ViewDef>, Vec<SpjgExpr>) {
    let (catalog, _) = tpch_catalog();
    let views = Generator::new(&catalog, WorkloadParams::views(), VIEW_SEED).views(n_views);
    let queries =
        Generator::new(&catalog, WorkloadParams::queries(), QUERY_SEED).queries(n_queries);
    (views, queries)
}

/// Run the independent static analyzer over a substitute and panic on any
/// ERROR diagnostic — the release-mode equivalent of the engine's
/// debug-only oracle.
fn assert_verifies(engine: &MatchingEngine, query: &SpjgExpr, id: ViewId, sub: &Substitute) {
    let views = engine.views();
    let checks = engine.check_constraints();
    let ctx = mv_verify::VerifyContext::new(engine.catalog(), &checks);
    let view = views.get(id);
    let errors: Vec<String> =
        mv_verify::verify_substitute(&ctx, query, &view.expr, sub, &view.name, "query")
            .into_iter()
            .filter(|d| d.severity == mv_verify::Severity::Error)
            .map(|d| d.to_json())
            .collect();
    assert!(
        errors.is_empty(),
        "mv-verify rejected a mid-churn substitute for `{}`:\n{}",
        view.name,
        errors.join("\n")
    );
}

/// Matcher threads race one registration thread that adds views from a
/// reserve pool and removes earlier ones. Every result observed mid-churn
/// must be internally coherent: ids resolve in the pinned registry, lists
/// arrive in ascending `ViewId` order, and every substitute passes
/// `mv-verify`.
#[test]
fn writers_racing_matchers_stay_coherent() {
    let (views, queries) = workload(60, 12);
    let (initial, reserve) = views.split_at(30);
    let (catalog, _) = tpch_catalog();
    let engine = Arc::new(MatchingEngine::new(catalog, MatchConfig::default()));
    engine
        .add_views(initial.to_vec())
        .expect("generated views are valid");

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Registration thread: one add per step, removing an older view
        // every third step; publication rate is the natural writer pace.
        scope.spawn(|| {
            for (i, v) in reserve.iter().enumerate() {
                let id = engine.add_view(v.clone()).expect("valid view");
                if i % 3 == 2 {
                    engine.remove_view(ViewId(id.0 / 2));
                }
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            scope.spawn(|| {
                // Keep matching until the writer finishes, then one final
                // full pass over the settled catalog.
                loop {
                    let finished = done.load(Ordering::Acquire);
                    for q in &queries {
                        let subs = engine.find_substitutes(q);
                        assert!(
                            subs.windows(2).all(|w| w[0].0 < w[1].0),
                            "results must stay in ascending ViewId order"
                        );
                        for (id, sub) in &subs {
                            assert_verifies(&engine, q, *id, sub);
                        }
                    }
                    if finished {
                        break;
                    }
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.registrations, 60);
    assert_eq!(stats.removals as usize, reserve.len() / 3);
    assert_eq!(
        engine.live_view_count() as u64,
        stats.registrations - stats.removals
    );
}

/// A reader that pins the registry guard across a write sees one coherent
/// snapshot: the length it observed cannot change under its feet, while
/// the engine itself moves on.
#[test]
fn pinned_guard_is_isolated_from_writers() {
    let (views, _) = workload(4, 0);
    let (catalog, _) = tpch_catalog();
    let engine = MatchingEngine::new(catalog, MatchConfig::default());
    engine.add_views(views[..3].to_vec()).unwrap();

    let pinned = engine.views();
    let before = pinned.len();
    engine.add_view(views[3].clone()).unwrap();
    assert_eq!(pinned.len(), before, "pinned snapshot must not move");
    assert_eq!(engine.views().len(), before + 1, "fresh pin sees the write");
}

// Per-table invalidation is conservative: a cached engine and an
// uncached engine fed the same interleaving of registrations, removals,
// check-constraint declarations and queries must answer every query
// identically. If a stale entry ever survived an invalidation it should
// not have, the cached side diverges. Ops arrive as `(kind, selector)`
// tuples: 0 = add view, 1 = remove view, 2 = declare check constraint,
// 3 = match query.
proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn per_table_invalidation_is_conservative(
        ops in prop::collection::vec((0u8..4, 0usize..10), 1..40)
    ) {
        let (views, queries) = workload(10, 6);
        let (catalog, _) = tpch_catalog();
        let n_tables = catalog.table_count();
        let cached = MatchingEngine::new(catalog.clone(), MatchConfig::default());
        let uncached = MatchingEngine::new(catalog, MatchConfig {
            substitute_cache_capacity: 0,
            ..MatchConfig::default()
        });
        let mut added: Vec<Option<ViewId>> = vec![None; views.len()];
        for (kind, sel) in &ops {
            match kind {
                0 => {
                    if added[*sel].is_none() {
                        let a = cached.add_view(views[*sel].clone()).unwrap();
                        let b = uncached.add_view(views[*sel].clone()).unwrap();
                        prop_assert_eq!(a, b, "identical histories assign identical ids");
                        added[*sel] = Some(a);
                    }
                }
                1 => {
                    if let Some(id) = added[*sel] {
                        prop_assert_eq!(cached.remove_view(id), uncached.remove_view(id));
                    }
                }
                2 => {
                    // Column 0 exists in every TPC-H table; a trivial range
                    // on it still reshapes every affected query summary.
                    let pred = BoolExpr::cmp(
                        S::col(ColRef::new(0, 0)),
                        CmpOp::Ge,
                        S::lit(0i64),
                    );
                    let table = mv_catalog::TableId((sel % n_tables) as u32);
                    cached.add_check_constraint(table, pred.clone()).unwrap();
                    uncached.add_check_constraint(table, pred).unwrap();
                }
                _ => {
                    let q = &queries[sel % queries.len()];
                    prop_assert_eq!(
                        cached.find_substitutes(q),
                        uncached.find_substitutes(q),
                        "cached result diverged from fresh computation"
                    );
                }
            }
        }
        // Cached traffic must be conservative, never wrong — and the two
        // engines must agree on the final catalog shape.
        prop_assert_eq!(cached.live_view_count(), uncached.live_view_count());
    }
}
