//! Concurrency corruption suite: prove the model-checker harness has
//! teeth by weakening one edge of the catalog's concurrency protocol at a
//! time (`mv_core::mutation`) and asserting that `mv_model::explore` pins
//! every weakening to a *failing schedule with a replayable seed*. This
//! is the concurrency analogue of mv-verify's soundness corruption suite:
//! a checker that never fails proves nothing.
//!
//! The sixth seeded mutation — publication downgraded from release/acquire
//! to relaxed — lives in `crates/model/tests/explorer.rs`
//! (`relaxed_publication_is_pinned_to_a_failing_schedule`), where the
//! memory-model shims themselves are exercised directly.
//!
//! The mutation selector is process-global, so every test serializes on
//! one mutex and restores `NONE` before releasing it.
#![cfg(mv_model)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use mv_catalog::tpch::tpch_catalog;
use mv_catalog::{Catalog, TableId};
use mv_core::{mutation, MatchConfig, MatchingEngine};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_model::{explore, replay, Config};
use mv_plan::{NamedExpr, SpjgExpr, ViewDef};

/// Serializes the tests in this binary: the mutation selector is a
/// process-global, and the default test harness runs `#[test]`s on
/// concurrent threads.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

struct Fixture {
    catalog: Catalog,
    part: TableId,
}

fn fixture() -> Fixture {
    let (catalog, t) = tpch_catalog();
    Fixture {
        catalog,
        part: t.part,
    }
}

/// `SELECT p_partkey, p_size FROM part WHERE p_size < bound`.
fn part_view(fx: &Fixture, name: &str, bound: i64) -> ViewDef {
    ViewDef::new(
        name,
        SpjgExpr::spj(
            vec![fx.part],
            BoolExpr::cmp(S::col(ColRef::new(0, 5)), CmpOp::Lt, S::lit(bound)),
            vec![
                NamedExpr::new(S::col(ColRef::new(0, 0)), "p_partkey"),
                NamedExpr::new(S::col(ColRef::new(0, 5)), "p_size"),
            ],
        ),
    )
}

/// `SELECT p_partkey FROM part WHERE p_size < 50`.
fn part_query(fx: &Fixture) -> SpjgExpr {
    SpjgExpr::spj(
        vec![fx.part],
        BoolExpr::cmp(S::col(ColRef::new(0, 5)), CmpOp::Lt, S::lit(50)),
        vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "p_partkey")],
    )
}

fn engine(fx: &Fixture, cache_capacity: usize) -> Arc<MatchingEngine> {
    Arc::new(MatchingEngine::new(
        fx.catalog.clone(),
        MatchConfig {
            timing: false,
            parallel_threshold: usize::MAX,
            substitute_cache_capacity: cache_capacity,
            substitute_cache_shards: 1,
            ..MatchConfig::default()
        },
    ))
}

fn names(engine: &MatchingEngine, query: &SpjgExpr) -> BTreeSet<String> {
    let views = engine.views();
    engine
        .find_substitutes(query)
        .iter()
        .map(|(id, _)| views.get(*id).name.clone())
        .collect()
}

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_schedules: 60_000,
        ..Config::default()
    }
}

/// Activate `mutation`, explore `program` until it fails, then prove the
/// printed seed deterministically replays the failure.
fn pin(mutation: u32, what: &str, program: impl Fn()) {
    let _guard = serial();
    mutation::set(mutation);
    let report = explore(&cfg(), &program);
    let outcome = report.failure.clone();
    let replayed = outcome
        .as_ref()
        .map(|failure| replay(&cfg(), &failure.seed, &program));
    mutation::set(mutation::NONE);

    let failure = outcome.unwrap_or_else(|| {
        panic!("{what}: mutation {mutation} was not pinned to any failing schedule")
    });
    eprintln!(
        "{what}: pinned mutation {mutation} in {} schedules — replay seed: {}",
        report.schedules,
        if failure.seed.is_empty() {
            "<first schedule>"
        } else {
            &failure.seed
        }
    );
    let replayed = replayed.expect("replay ran");
    assert!(
        replayed.is_some(),
        "{what}: seed {:?} did not replay the failure",
        failure.seed
    );
}

/// Mutation 1: writers skip the writer mutex, so two clone-modify-publish
/// registrations interleave and one is lost.
#[test]
fn skip_writer_lock_loses_a_registration() {
    let fx = fixture();
    pin(mutation::SKIP_WRITER_LOCK, "skip-writer-lock", || {
        let engine = engine(&fx, 0);
        let handles: Vec<_> = [part_view(&fx, "left", 70), part_view(&fx, "right", 90)]
            .into_iter()
            .map(|view| {
                let engine = Arc::clone(&engine);
                mv_model::thread::spawn(move || {
                    engine.add_view(view).expect("registration succeeds");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("writer joins");
        }
        assert_eq!(engine.live_view_count(), 2, "a registration was lost");
    });
}

/// Mutation 2: `add_view` publishes without bumping the view's table
/// epochs, so a cache entry from before the registration keeps matching
/// the current stamp and is served stale.
#[test]
fn skip_epoch_bump_on_add_serves_stale_cache() {
    let fx = fixture();
    let query = part_query(&fx);
    pin(
        mutation::SKIP_EPOCH_BUMP_ON_ADD,
        "skip-epoch-bump-on-add",
        || {
            let engine = engine(&fx, 16);
            engine
                .add_view(part_view(&fx, "old", 100))
                .expect("base view registers");
            let stale = names(&engine, &query);
            let writer = {
                let engine = Arc::clone(&engine);
                let view = part_view(&fx, "fresh", 60);
                mv_model::thread::spawn(move || {
                    engine.add_view(view).expect("racing registration succeeds");
                })
            };
            writer.join().expect("writer joins");
            let got = names(&engine, &query);
            assert_ne!(got, stale, "registration must invalidate the cached result");
            assert!(got.contains("fresh"), "new view must appear once quiescent");
        },
    );
}

/// Mutation 3: cache entries are stamped from the *currently published*
/// snapshot at insert time instead of the pinned snapshot the results
/// were computed from — a concurrent publication between pin and insert
/// makes a pre-registration entry look fresh forever.
#[test]
fn stamp_after_publish_freezes_a_stale_entry() {
    let fx = fixture();
    let query = part_query(&fx);
    pin(mutation::STAMP_AFTER_PUBLISH, "stamp-after-publish", || {
        let engine = engine(&fx, 16);
        engine
            .add_view(part_view(&fx, "old", 100))
            .expect("base view registers");
        let writer = {
            let engine = Arc::clone(&engine);
            let view = part_view(&fx, "fresh", 60);
            mv_model::thread::spawn(move || {
                engine.add_view(view).expect("racing registration succeeds");
            })
        };
        let matcher = {
            let engine = Arc::clone(&engine);
            let query = query.clone();
            mv_model::thread::spawn(move || {
                // Populate the cache while the registration may be mid-flight.
                engine.find_substitutes(&query);
            })
        };
        writer.join().expect("writer joins");
        matcher.join().expect("matcher joins");
        let got = names(&engine, &query);
        assert!(
            got.contains("fresh"),
            "quiescent result {got:?} is missing the registered view"
        );
    });
}

/// Mutation 4: `remove_view` publishes without bumping the removed view's
/// table epochs, so a stale cache entry keeps serving the dropped view.
#[test]
fn skip_epoch_bump_on_remove_serves_dropped_view() {
    let fx = fixture();
    let query = part_query(&fx);
    pin(
        mutation::SKIP_EPOCH_BUMP_ON_REMOVE,
        "skip-epoch-bump-on-remove",
        || {
            let engine = engine(&fx, 16);
            engine
                .add_view(part_view(&fx, "keeper", 100))
                .expect("keeper registers");
            let doomed = engine
                .add_view(part_view(&fx, "doomed", 60))
                .expect("doomed view registers");
            let cached = names(&engine, &query);
            assert!(
                cached.contains("doomed"),
                "cache warmed with the doomed view"
            );
            let writer = {
                let engine = Arc::clone(&engine);
                mv_model::thread::spawn(move || {
                    assert!(engine.remove_view(doomed), "doomed view is live");
                })
            };
            writer.join().expect("writer joins");
            let got = names(&engine, &query);
            assert!(
                !got.contains("doomed"),
                "removed view still served from the cache: {got:?}"
            );
        },
    );
}

/// Mutation 5: the cache-miss counter is dropped, breaking the exact
/// quiescent invariant `cache_hits + cache_misses == invocations`.
#[test]
fn skip_cache_miss_stat_unbalances_the_counters() {
    let fx = fixture();
    let query = part_query(&fx);
    pin(
        mutation::SKIP_CACHE_MISS_STAT,
        "skip-cache-miss-stat",
        || {
            let engine = engine(&fx, 16);
            engine
                .add_view(part_view(&fx, "old", 100))
                .expect("base view registers");
            let matcher = {
                let engine = Arc::clone(&engine);
                let query = query.clone();
                mv_model::thread::spawn(move || {
                    engine.find_substitutes(&query);
                })
            };
            matcher.join().expect("matcher joins");
            let stats = engine.stats();
            assert_eq!(
                stats.cache_hits + stats.cache_misses,
                stats.invocations,
                "every invocation is exactly one cache hit or miss"
            );
        },
    );
}

/// With no mutation active the same race programs pass clean — the
/// failures above come from the seeded weakenings, not the checker.
#[test]
fn unmutated_programs_pass() {
    let _guard = serial();
    mutation::set(mutation::NONE);
    let fx = fixture();
    let query = part_query(&fx);
    let report = explore(&cfg(), || {
        let engine = engine(&fx, 16);
        engine
            .add_view(part_view(&fx, "old", 100))
            .expect("base view registers");
        let stale = names(&engine, &query);
        let writer = {
            let engine = Arc::clone(&engine);
            let view = part_view(&fx, "fresh", 60);
            mv_model::thread::spawn(move || {
                engine.add_view(view).expect("racing registration succeeds");
            })
        };
        let matcher = {
            let engine = Arc::clone(&engine);
            let query = query.clone();
            mv_model::thread::spawn(move || {
                engine.find_substitutes(&query);
            })
        };
        writer.join().expect("writer joins");
        matcher.join().expect("matcher joins");
        let got = names(&engine, &query);
        assert_ne!(got, stale, "registration invalidates the cached result");
        assert!(got.contains("fresh"));
        let stats = engine.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.invocations);
    });
    report.assert_pass("unmutated add/match race");
}
