//! Linearizability harness for the online catalog, run under the
//! `mv-model` schedule explorer (`RUSTFLAGS="--cfg mv_model"`).
//!
//! Each model program builds a fresh [`MatchingEngine`] over a three-table
//! slice of TPC-H (part / orders / lineitem, six base range views), then
//! races writer threads (`add_view` / `remove_view`) against matcher
//! threads (`find_substitutes`). Every schedule the explorer generates is
//! checked against sequential reference executions computed *outside* the
//! explorer:
//!
//! * **Window check** — writers publish a `started` bit before their
//!   registration and a `done` bit after it; a matcher records
//!   `before = done` at invocation and `after = started` at return. The
//!   observed substitute set must equal the reference result of *some*
//!   catalog state `M` with `before ⊆ M ⊆ after` — i.e. each
//!   `find_substitutes` call takes effect atomically at some point between
//!   invocation and return.
//! * **Quiescence** — after all threads join, results equal the
//!   all-writers-applied reference, and the stats invariant
//!   `cache_hits + cache_misses == invocations` holds exactly.
//!
//! The corruption suite in `model_corruption.rs` proves these checks have
//! teeth: weakening any edge of the engine's concurrency protocol makes
//! the same programs fail with a replayable schedule seed.
#![cfg(mv_model)]

use std::collections::BTreeSet;
use std::sync::Arc;

use mv_catalog::tpch::tpch_catalog;
use mv_catalog::Catalog;
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_model::{explore, replay, Config, Ordering};
use mv_plan::{NamedExpr, SpjgExpr, Substitute, ViewDef, ViewId};

/// A three-table catalog slice with two range views per table, two
/// pending registrations, and one probe query per pending view.
struct Fixture {
    catalog: Catalog,
    base: Vec<ViewDef>,
    pending: [ViewDef; 2],
    queries: [SpjgExpr; 2],
}

/// `SELECT proj FROM table WHERE col < bound`.
fn range_expr(table: mv_catalog::TableId, col: u32, bound: i64, proj: &[(u32, &str)]) -> SpjgExpr {
    SpjgExpr::spj(
        vec![table],
        BoolExpr::cmp(S::col(ColRef::new(0, col)), CmpOp::Lt, S::lit(bound)),
        proj.iter()
            .map(|&(c, n)| NamedExpr::new(S::col(ColRef::new(0, c)), n))
            .collect(),
    )
}

fn fixture() -> Fixture {
    let (catalog, t) = tpch_catalog();
    let part_proj: &[(u32, &str)] = &[(0, "p_partkey"), (5, "p_size")];
    let ord_proj: &[(u32, &str)] = &[(0, "o_orderkey"), (1, "o_custkey")];
    let li_proj: &[(u32, &str)] = &[(0, "l_orderkey"), (2, "l_suppkey")];
    Fixture {
        base: vec![
            ViewDef::new("part_wide", range_expr(t.part, 5, 100, part_proj)),
            ViewDef::new("part_mid", range_expr(t.part, 5, 80, part_proj)),
            ViewDef::new("orders_wide", range_expr(t.orders, 1, 100, ord_proj)),
            ViewDef::new("orders_mid", range_expr(t.orders, 1, 80, ord_proj)),
            ViewDef::new("lineitem_wide", range_expr(t.lineitem, 2, 100, li_proj)),
            ViewDef::new("lineitem_mid", range_expr(t.lineitem, 2, 80, li_proj)),
        ],
        pending: [
            ViewDef::new("part_new", range_expr(t.part, 5, 60, part_proj)),
            ViewDef::new("orders_new", range_expr(t.orders, 1, 60, ord_proj)),
        ],
        queries: [
            range_expr(t.part, 5, 50, &[(0, "p_partkey")]),
            range_expr(t.orders, 1, 50, &[(0, "o_orderkey")]),
        ],
        catalog,
    }
}

/// Engine configuration for the modeled runs: no clock reads, serial
/// matching, and a single cache stripe so the schedule space stays
/// focused on the synchronization that matters.
fn model_config() -> MatchConfig {
    MatchConfig {
        timing: false,
        parallel_threshold: usize::MAX,
        substitute_cache_capacity: 16,
        substitute_cache_shards: 1,
        ..MatchConfig::default()
    }
}

/// Reference engines run outside the explorer (plain std primitives) with
/// the cache disabled — the uncached path is the semantic ground truth.
fn reference_config() -> MatchConfig {
    MatchConfig {
        timing: false,
        parallel_threshold: usize::MAX,
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    }
}

fn names_of(engine: &MatchingEngine, subs: &[(ViewId, Substitute)]) -> BTreeSet<String> {
    let views = engine.views();
    subs.iter()
        .map(|(id, _)| views.get(*id).name.clone())
        .collect()
}

/// Sequential reference: the substitute name-sets for both probe queries
/// with the pending registrations in `mask` applied.
fn reference_names(fx: &Fixture, mask: u64) -> [BTreeSet<String>; 2] {
    let engine = MatchingEngine::new(fx.catalog.clone(), reference_config());
    engine
        .add_views(fx.base.clone())
        .expect("base views register");
    for (i, w) in fx.pending.iter().enumerate() {
        if mask & (1 << i) != 0 {
            engine.add_view(w.clone()).expect("pending view registers");
        }
    }
    [0, 1].map(|qi| names_of(&engine, &engine.find_substitutes(&fx.queries[qi])))
}

type Expected = [[BTreeSet<String>; 2]; 4];

fn expected_tables(fx: &Fixture) -> Arc<Expected> {
    let expected = Arc::new([0u64, 1, 2, 3].map(|m| reference_names(fx, m)));
    // The fixture is only a fixture if each pending view visibly changes
    // its probe query's answer.
    assert_ne!(
        expected[0][0], expected[1][0],
        "pending part view must affect q0"
    );
    assert_ne!(
        expected[0][1], expected[2][1],
        "pending orders view must affect q1"
    );
    expected
}

/// The add-window program: two writers race two matchers on one engine.
fn program_adds(fx: &Fixture, expected: &Expected) {
    let engine = Arc::new(MatchingEngine::new(fx.catalog.clone(), model_config()));
    engine
        .add_views(fx.base.clone())
        .expect("base views register");

    let started = Arc::new(mv_model::AtomicU64::new(0));
    let done = Arc::new(mv_model::AtomicU64::new(0));
    let mut handles = Vec::new();

    for (i, view) in fx.pending.iter().cloned().enumerate() {
        let engine = Arc::clone(&engine);
        let started = Arc::clone(&started);
        let done = Arc::clone(&done);
        handles.push(mv_model::thread::spawn(move || {
            started.fetch_or(1 << i, Ordering::SeqCst);
            engine.add_view(view).expect("racing registration succeeds");
            done.fetch_or(1 << i, Ordering::SeqCst);
        }));
    }
    for (qi, query) in fx.queries.iter().cloned().enumerate() {
        let engine = Arc::clone(&engine);
        let started = Arc::clone(&started);
        let done = Arc::clone(&done);
        let expected = expected.clone();
        handles.push(mv_model::thread::spawn(move || {
            let before = done.load(Ordering::SeqCst);
            let got = names_of(&engine, &engine.find_substitutes(&query));
            let after = started.load(Ordering::SeqCst);
            let linearizable = (0u64..4).any(|m| {
                m & before == before && m | after == after && expected[m as usize][qi] == got
            });
            assert!(
                linearizable,
                "find_substitutes(q{qi}) = {got:?} matches no catalog state in \
                 its window (before={before:#b}, after={after:#b})"
            );
        }));
    }
    for handle in handles {
        handle.join().expect("model thread joins");
    }

    // Quiescence: the final answers are the all-registered reference and
    // the cache counters balance exactly.
    for (qi, query) in fx.queries.iter().enumerate() {
        let got = names_of(&engine, &engine.find_substitutes(query));
        assert_eq!(got, expected[3][qi], "quiescent result for q{qi}");
    }
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stats.invocations,
        "every invocation is exactly one cache hit or miss"
    );
    assert_eq!(
        stats.registrations,
        fx.base.len() as u64 + 2,
        "no registration lost"
    );
}

/// The remove-window program: one writer drops a cached-and-matching view
/// while a matcher probes it. Ids are fixed before the race, so the
/// matcher resolves names through a prebuilt table instead of a guard.
fn program_remove(fx: &Fixture, expected: &Expected) {
    let engine = Arc::new(MatchingEngine::new(fx.catalog.clone(), model_config()));
    engine
        .add_views(fx.base.clone())
        .expect("base views register");
    let doomed = engine
        .add_view(fx.pending[0].clone())
        .expect("pending part view registers");
    let names: Arc<Vec<(ViewId, String)>> = {
        let views = engine.views();
        Arc::new(
            views
                .iter()
                .map(|(id, def)| (id, def.name.clone()))
                .collect(),
        )
    };
    // Warm the cache so a stale entry naming the doomed view exists.
    let warm = names_of(&engine, &engine.find_substitutes(&fx.queries[0]));
    assert_eq!(
        warm, expected[1][0],
        "warmed result includes the doomed view"
    );

    let started = Arc::new(mv_model::AtomicU64::new(0));
    let done = Arc::new(mv_model::AtomicU64::new(0));

    let writer = {
        let engine = Arc::clone(&engine);
        let started = Arc::clone(&started);
        let done = Arc::clone(&done);
        mv_model::thread::spawn(move || {
            started.fetch_or(1, Ordering::SeqCst);
            assert!(engine.remove_view(doomed), "doomed view is live");
            done.fetch_or(1, Ordering::SeqCst);
        })
    };
    let matchers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let started = Arc::clone(&started);
            let done = Arc::clone(&done);
            let names = Arc::clone(&names);
            let query = fx.queries[0].clone();
            // Mask 0 = view still present, mask 1 = view removed.
            let with = expected[1][0].clone();
            let without = expected[0][0].clone();
            mv_model::thread::spawn(move || {
                let before = done.load(Ordering::SeqCst);
                let got: BTreeSet<String> = engine
                    .find_substitutes(&query)
                    .iter()
                    .map(|(id, _)| {
                        names
                            .iter()
                            .find(|(nid, _)| nid == id)
                            .expect("result id predates the race")
                            .1
                            .clone()
                    })
                    .collect();
                let after = started.load(Ordering::SeqCst);
                let admissible = [(0u64, &with), (1u64, &without)]
                    .into_iter()
                    .any(|(m, want)| m & before == before && m | after == after && *want == got);
                assert!(
                    admissible,
                    "find_substitutes(q0) = {got:?} matches neither side of the \
                     removal window (before={before:#b}, after={after:#b})"
                );
            })
        })
        .collect();
    writer.join().expect("writer joins");
    for matcher in matchers {
        matcher.join().expect("matcher joins");
    }

    let got = names_of(&engine, &engine.find_substitutes(&fx.queries[0]));
    assert_eq!(
        got, expected[0][0],
        "quiescent result excludes the removed view"
    );
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stats.invocations,
        "every invocation is exactly one cache hit or miss"
    );
    assert_eq!(stats.removals, 1, "exactly one removal recorded");
}

fn harness_config() -> Config {
    Config {
        preemption_bound: 2,
        max_schedules: 60_000,
        ..Config::default()
    }
}

#[test]
fn concurrent_adds_are_linearizable() {
    let fx = fixture();
    let expected = expected_tables(&fx);
    let report = explore(&harness_config(), || program_adds(&fx, &expected));
    eprintln!(
        "add-window program: {} schedules ({} pruned, max depth {}, budget exhausted: {})",
        report.schedules, report.pruned, report.max_depth, report.budget_exhausted
    );
    report.assert_pass("concurrent add_view vs find_substitutes");
    assert!(
        report.schedules >= 10_000,
        "expected at least 10k distinct schedules, explored {}",
        report.schedules
    );
}

#[test]
fn concurrent_removal_is_linearizable() {
    let fx = fixture();
    let expected = expected_tables(&fx);
    // The remove program has fewer threads than the add program, so its
    // preemption-bound-2 space is small; a deeper bound keeps the
    // explored-schedule floor meaningful.
    let cfg = Config {
        preemption_bound: 4,
        ..harness_config()
    };
    let report = explore(&cfg, || program_remove(&fx, &expected));
    eprintln!(
        "remove-window program: {} schedules ({} pruned, max depth {}, budget exhausted: {})",
        report.schedules, report.pruned, report.max_depth, report.budget_exhausted
    );
    report.assert_pass("remove_view vs find_substitutes");
    assert!(
        report.schedules >= 10_000,
        "expected at least 10k distinct schedules, explored {}",
        report.schedules
    );
}

/// A passing schedule's seed replays to the same (passing) outcome.
#[test]
fn first_schedule_replays_clean() {
    let fx = fixture();
    let expected = expected_tables(&fx);
    // The empty seed is the explorer's first schedule (run every thread
    // as long as it stays runnable, always picking the first choice).
    let outcome = replay(&harness_config(), "", || program_adds(&fx, &expected));
    assert!(outcome.is_none(), "first schedule fails: {outcome:?}");
}
