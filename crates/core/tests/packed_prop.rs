//! The packed catalog must be invisible: under any interleaving of
//! `add_view` / `remove_view` / `find_substitutes`, the engine — whose
//! hot path runs the arena-backed precheck, the filter tree, and the
//! prepared matcher — returns byte-identical results to a brute-force
//! oracle that calls the legacy `match_view` entry point on every live
//! view. The sorted-slice kernels backing the precheck are additionally
//! checked against a `HashSet` model, and `find_substitutes_many` must
//! agree with query-at-a-time matching under arbitrary batches.

use mv_catalog::tpch::tpch_catalog;
use mv_core::{
    match_view, sorted_intersects, sorted_subset, ExprSummary, MatchConfig, MatchingEngine,
};
use mv_plan::{OutputList, SpjgExpr, ViewDef, ViewId};
use mv_workload::{Generator, WorkloadParams};
use proptest::prelude::*;
use std::collections::HashSet;

const VIEW_SEED: u64 = 0x5EED_CAFE;
const QUERY_SEED: u64 = 0x00DD_BA11;

fn pools(n_views: usize, n_queries: usize) -> (Vec<ViewDef>, Vec<SpjgExpr>) {
    let (catalog, _) = tpch_catalog();
    let views = Generator::new(&catalog, WorkloadParams::views(), VIEW_SEED).views(n_views);
    let queries =
        Generator::new(&catalog, WorkloadParams::queries(), QUERY_SEED).queries(n_queries);
    (views, queries)
}

fn uncached_config() -> MatchConfig {
    MatchConfig {
        substitute_cache_capacity: 0,
        ..MatchConfig::default()
    }
}

fn engine() -> MatchingEngine {
    let (catalog, _) = tpch_catalog();
    MatchingEngine::new(catalog, uncached_config())
}

/// One step of the interleaving, decoded from a `(kind, index)` pair
/// (the vendored proptest stand-in has no `prop_oneof`).
#[derive(Debug, Clone, Copy)]
enum Op {
    AddView(usize),
    RemoveView(usize),
    Find(usize),
}

fn decode(kind: usize, idx: usize) -> Op {
    match kind {
        0 => Op::AddView(idx),
        1 => Op::RemoveView(idx),
        _ => Op::Find(idx),
    }
}

/// Brute-force oracle: match every live view with the unprepared entry
/// point (no filter tree, no packed precheck, no residual-token spans),
/// in ascending `ViewId` order — the order the engine reports.
fn oracle(
    catalog: &mv_catalog::Catalog,
    config: &MatchConfig,
    live: &[(ViewId, ViewDef)],
    query: &SpjgExpr,
) -> Vec<(ViewId, mv_plan::Substitute)> {
    let qsum = ExprSummary::analyze(query);
    let mut out = Vec::new();
    for (id, def) in live {
        let vsum = ExprSummary::analyze(&def.expr);
        if let Some(sub) = match_view(catalog, config, query, &qsum, *id, def, &vsum) {
            out.push((*id, sub));
        }
    }
    out.sort_by_key(|(id, _)| *id);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Apply an arbitrary op sequence; every `find_substitutes` must
    /// agree byte-for-byte with the brute-force oracle. This pins down
    /// three things at once: the packed precheck rejects no true match,
    /// the filter tree loses no candidate, and the prepared matcher
    /// (spans, interned tokens, precomputed outputs) produces the same
    /// substitutes as the legacy per-view path.
    #[test]
    fn packed_engine_equals_bruteforce_oracle(
        ops in prop::collection::vec((0usize..3, 0usize..16), 1..40),
    ) {
        let (views, queries) = pools(16, 8);
        let (catalog, _) = tpch_catalog();
        let config = uncached_config();
        let engine = engine();
        let mut live: Vec<(ViewId, ViewDef)> = Vec::new();

        for (kind, idx) in ops {
            match decode(kind, idx) {
                Op::AddView(i) => {
                    // Re-adding a live view fails (duplicate name); the
                    // oracle only tracks successful registrations.
                    let def = views[i % views.len()].clone();
                    if let Ok(id) = engine.add_view(def.clone()) {
                        live.push((id, def));
                    }
                }
                Op::RemoveView(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, _) = live.remove(i % live.len());
                    prop_assert!(engine.remove_view(id));
                }
                Op::Find(i) => {
                    let q = &queries[i % queries.len()];
                    let mut got = engine.find_substitutes(q);
                    got.sort_by_key(|(id, _)| *id);
                    let want = oracle(&catalog, &config, &live, q);
                    prop_assert_eq!(got, want);
                }
            }
        }

        // Every arena span the interleaving produced must still be
        // in bounds and sorted, including spans of removed views
        // (slots stay sealed in their segment).
        let packed = engine.packed();
        for id in 0..packed.len() {
            prop_assert!(packed.validate_spans(ViewId(id as u32)).is_ok());
        }
    }

    /// The sorted-slice kernels against a `HashSet` model. Inputs are
    /// sorted but deliberately not deduplicated: the kernels promise
    /// set semantics over multisets.
    #[test]
    fn sorted_kernels_match_hashset_model(
        a in prop::collection::vec(0u32..48, 0..24),
        b in prop::collection::vec(0u32..48, 0..24),
    ) {
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        let set_a: HashSet<u32> = a.into_iter().collect();
        let set_b: HashSet<u32> = b.into_iter().collect();
        prop_assert_eq!(sorted_subset(&sa, &sb), set_a.is_subset(&set_b));
        prop_assert_eq!(sorted_intersects(&sa, &sb), !set_a.is_disjoint(&set_b));
        // Degenerate slices behave like the empty set.
        prop_assert!(sorted_subset(&[], &sa));
        prop_assert!(!sorted_intersects(&[], &sa));
    }

    /// Batched matching must be a pure reordering optimization:
    /// `find_substitutes_many` over an arbitrary multiset of queries
    /// (duplicates make fingerprint groups of size > 1) returns exactly
    /// what query-at-a-time calls return, in input order.
    #[test]
    fn batch_equals_query_at_a_time(
        picks in prop::collection::vec(0usize..16, 1..24),
    ) {
        let (views, queries) = pools(16, 8);
        let engine = engine();
        for v in &views {
            engine.add_view(v.clone()).expect("generated views are valid");
        }
        let batch: Vec<SpjgExpr> = picks
            .iter()
            .map(|&i| queries[i % queries.len()].clone())
            .collect();
        let got = engine.find_substitutes_many(&batch);
        prop_assert_eq!(got.len(), batch.len());
        for (q, got_q) in batch.iter().zip(&got) {
            prop_assert_eq!(got_q, &engine.find_substitutes(q));
        }
    }

    /// With the cache enabled, batching must also be invisible in the
    /// *statistics*: a replayed duplicate is served from the group
    /// representative exactly as a repeated query is served from the
    /// cache, so every count-type counter (invocations, candidates,
    /// substitutes, cache hits/misses/invalidations) must come out equal
    /// to query-at-a-time matching — both cold and after a warm-up pass
    /// that makes the representatives themselves cache hits.
    #[test]
    fn batch_matches_per_query_counters(
        picks in prop::collection::vec(0usize..16, 1..24),
    ) {
        let (views, queries) = pools(16, 8);
        let batched = MatchingEngine::new(tpch_catalog().0, MatchConfig::default());
        let one_by_one = MatchingEngine::new(tpch_catalog().0, MatchConfig::default());
        for v in &views {
            batched.add_view(v.clone()).expect("generated views are valid");
            one_by_one.add_view(v.clone()).expect("generated views are valid");
        }
        let batch: Vec<SpjgExpr> = picks
            .iter()
            .map(|&i| queries[i % queries.len()].clone())
            .collect();
        for pass in ["cold", "warm"] {
            let got = batched.find_substitutes_many(&batch);
            let mut want = Vec::with_capacity(batch.len());
            for q in &batch {
                want.push(one_by_one.find_substitutes(q));
            }
            prop_assert_eq!(&got, &want, "{} pass results", pass);
            let (a, b) = (batched.stats(), one_by_one.stats());
            prop_assert_eq!(a.invocations, b.invocations, "{} invocations", pass);
            prop_assert_eq!(a.candidates, b.candidates, "{} candidates", pass);
            prop_assert_eq!(a.views_available, b.views_available, "{} views_available", pass);
            prop_assert_eq!(a.substitutes, b.substitutes, "{} substitutes", pass);
            prop_assert_eq!(a.cache_hits, b.cache_hits, "{} cache_hits", pass);
            prop_assert_eq!(a.cache_misses, b.cache_misses, "{} cache_misses", pass);
            prop_assert_eq!(
                a.cache_invalidations, b.cache_invalidations,
                "{} cache_invalidations", pass
            );
        }
    }
}

/// α-renamed duplicates land in the same fingerprint group; the batch
/// path must restamp each member's output names from its own query,
/// not the group representative's.
#[test]
fn batch_restamps_renamed_duplicates() {
    let (views, queries) = pools(16, 8);
    let engine = engine();
    for v in &views {
        engine
            .add_view(v.clone())
            .expect("generated views are valid");
    }
    let q = queries
        .iter()
        .find(|q| !engine.find_substitutes(q).is_empty())
        .expect("workload produced at least one matching query");

    let mut renamed = q.clone();
    match &mut renamed.output {
        OutputList::Spj(items) => {
            for (i, item) in items.iter_mut().enumerate() {
                item.name = format!("r{i}");
            }
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            for (i, item) in group_by.iter_mut().enumerate() {
                item.name = format!("g{i}");
            }
            for (i, item) in aggregates.iter_mut().enumerate() {
                item.name = format!("a{i}");
            }
        }
    }

    let batch = vec![q.clone(), renamed.clone(), q.clone()];
    let got = engine.find_substitutes_many(&batch);
    assert_eq!(got[0], engine.find_substitutes(q));
    assert_eq!(got[1], engine.find_substitutes(&renamed));
    assert_eq!(got[2], got[0]);
    assert_ne!(
        got[0], got[1],
        "renamed outputs must restamp differently from the original"
    );
}
