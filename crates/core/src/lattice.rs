//! The lattice index of section 4.1.
//!
//! "The subset relationship between sets imposes a partial order among
//! sets, which can be represented as a lattice. ... a node in the lattice
//! index contains two collections of pointers, superset pointers and subset
//! pointers. A superset pointer of a node V points to a node that
//! represents a *minimal* superset of the set represented by V. Similarly,
//! a subset pointer of V points to a node that represents a *maximal*
//! subset. Sets with no subsets are called roots and sets without supersets
//! are called tops."
//!
//! Searches prune whole branches: looking for supersets of `S`, a node that
//! fails `S ⊆ key` cannot have any qualifying node below it (every subset
//! of a failing key also fails); looking for subsets, the dual holds going
//! upwards. The same pruning argument extends to any predicate that is
//! monotone with respect to set inclusion — the filter tree exploits this
//! for its "hitting" conditions (section 4.2.3).

use std::collections::HashMap;
use std::hash::Hash;

/// One node of the lattice.
#[derive(Debug, Clone)]
struct Node<K, V> {
    /// The key set, sorted and deduplicated.
    key: Vec<K>,
    /// Indices of nodes holding minimal proper supersets of `key`.
    supersets: Vec<usize>,
    /// Indices of nodes holding maximal proper subsets of `key`.
    subsets: Vec<usize>,
    /// The values stored under this key. A node whose payload empties
    /// stays in the graph as structure (re-insertion reuses it).
    payload: Vec<V>,
}

/// A lattice index: a map from key *sets* to values supporting efficient
/// subset and superset queries.
#[derive(Debug, Clone)]
pub struct LatticeIndex<K, V> {
    nodes: Vec<Node<K, V>>,
    by_key: HashMap<Vec<K>, usize>,
}

impl<K, V> Default for LatticeIndex<K, V> {
    fn default() -> Self {
        LatticeIndex {
            nodes: Vec::new(),
            by_key: HashMap::new(),
        }
    }
}

/// Is sorted slice `a` a subset of sorted slice `b`?
fn is_subset<K: Ord>(a: &[K], b: &[K]) -> bool {
    let mut bi = 0;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl<K: Ord + Hash + Clone, V> LatticeIndex<K, V> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct key sets stored.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of stored values.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.payload.len()).sum()
    }

    /// Whether the index stores no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn normalize(mut key: Vec<K>) -> Vec<K> {
        key.sort();
        key.dedup();
        key
    }

    /// Insert `value` under the key set `key`.
    pub fn insert(&mut self, key: Vec<K>, value: V) {
        let id = self.get_or_create_node(Self::normalize(key));
        self.nodes[id].payload.push(value);
    }

    /// The first value stored under exactly `key`, mutably (the filter
    /// tree stores exactly one child per key set).
    pub fn peek_mut(&mut self, key: Vec<K>) -> Option<&mut V> {
        let key = Self::normalize(key);
        let &id = self.by_key.get(&key)?;
        self.nodes[id].payload.first_mut()
    }

    /// The first value stored under exactly `key`, read-only. The dual of
    /// [`LatticeIndex::peek_mut`] for audit paths that must not mutate the
    /// index (and in particular must not mint new interner tokens).
    pub fn peek(&self, key: Vec<K>) -> Option<&V> {
        let key = Self::normalize(key);
        let &id = self.by_key.get(&key)?;
        self.nodes[id].payload.first()
    }

    /// Every `(key, value)` pair in the index, in unspecified order. Keys
    /// are the normalized (sorted, deduplicated) stored keys; a key with
    /// several values is yielded once per value.
    pub fn iter(&self) -> impl Iterator<Item = (&[K], &V)> {
        self.nodes
            .iter()
            .flat_map(|n| n.payload.iter().map(move |v| (n.key.as_slice(), v)))
    }

    /// Fetch the payload slot for `key`, creating the node (with a payload
    /// built by `make`) if absent. Used by the filter tree, where each key
    /// set owns exactly one child node.
    pub fn get_or_insert_with(&mut self, key: Vec<K>, make: impl FnOnce() -> V) -> &mut V {
        let id = self.get_or_create_node(Self::normalize(key));
        if self.nodes[id].payload.is_empty() {
            self.nodes[id].payload.push(make());
        }
        &mut self.nodes[id].payload[0]
    }

    /// Remove one value equal to `value` stored under `key`. Returns
    /// whether a value was removed. The node itself remains as graph
    /// structure.
    pub fn remove(&mut self, key: Vec<K>, value: &V) -> bool
    where
        V: PartialEq,
    {
        let key = Self::normalize(key);
        if let Some(&id) = self.by_key.get(&key) {
            if let Some(pos) = self.nodes[id].payload.iter().position(|v| v == value) {
                self.nodes[id].payload.remove(pos);
                return true;
            }
        }
        false
    }

    fn get_or_create_node(&mut self, key: Vec<K>) -> usize {
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.nodes.len();

        // Find the existing supersets and subsets of the new key via the
        // lattice itself, then reduce them to the minimal / maximal ones.
        let supers = self.collect_down(|k| is_subset(&key, k));
        let minimal_supers: Vec<usize> = supers
            .iter()
            .copied()
            .filter(|&s| {
                !supers
                    .iter()
                    .any(|&o| o != s && is_subset(&self.nodes[o].key, &self.nodes[s].key))
            })
            .collect();
        let subs = self.collect_up(|k| is_subset(k, &key));
        let maximal_subs: Vec<usize> = subs
            .iter()
            .copied()
            .filter(|&s| {
                !subs
                    .iter()
                    .any(|&o| o != s && is_subset(&self.nodes[s].key, &self.nodes[o].key))
            })
            .collect();

        // Cut direct links that now route through the new node.
        for &u in &minimal_supers {
            for &l in &maximal_subs {
                if let Some(p) = self.nodes[u].subsets.iter().position(|&x| x == l) {
                    self.nodes[u].subsets.remove(p);
                }
                if let Some(p) = self.nodes[l].supersets.iter().position(|&x| x == u) {
                    self.nodes[l].supersets.remove(p);
                }
            }
        }
        // Wire the new node in.
        for &u in &minimal_supers {
            self.nodes[u].subsets.push(id);
        }
        for &l in &maximal_subs {
            self.nodes[l].supersets.push(id);
        }
        self.nodes.push(Node {
            key: key.clone(),
            supersets: minimal_supers,
            subsets: maximal_subs,
            payload: Vec::new(),
        });
        self.by_key.insert(key, id);
        id
    }

    /// Node ids whose key satisfies `qualifies`, where `qualifies` is
    /// monotone decreasing under ⊆ (if a key fails, all its subsets fail).
    /// Starts from the tops and follows subset pointers.
    fn collect_down(&self, qualifies: impl Fn(&[K]) -> bool) -> Vec<usize> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].supersets.is_empty())
            .collect();
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            if !qualifies(&self.nodes[i].key) {
                continue;
            }
            out.push(i);
            stack.extend(&self.nodes[i].subsets);
        }
        out
    }

    /// Dual of [`collect_down`]: `qualifies` monotone decreasing under ⊇.
    /// Starts from the roots and follows superset pointers.
    fn collect_up(&self, qualifies: impl Fn(&[K]) -> bool) -> Vec<usize> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].subsets.is_empty())
            .collect();
        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            if !qualifies(&self.nodes[i].key) {
                continue;
            }
            out.push(i);
            stack.extend(&self.nodes[i].supersets);
        }
        out
    }

    /// Values stored under keys that are supersets of (or equal to)
    /// `search`.
    pub fn find_supersets(&self, search: &[K]) -> Vec<&V> {
        let search = Self::normalize(search.to_vec());
        self.collect_down(|k| is_subset(&search, k))
            .into_iter()
            .flat_map(|i| self.nodes[i].payload.iter())
            .collect()
    }

    /// Values stored under keys that are subsets of (or equal to) `search`.
    pub fn find_subsets(&self, search: &[K]) -> Vec<&V> {
        let search = Self::normalize(search.to_vec());
        self.collect_up(|k| is_subset(k, &search))
            .into_iter()
            .flat_map(|i| self.nodes[i].payload.iter())
            .collect()
    }

    /// Values under keys satisfying an arbitrary predicate that is
    /// monotone decreasing under subset (used for the hitting conditions
    /// of sections 4.2.3/4.2.4). The predicate sees the sorted key.
    pub fn find_monotone_down(&self, qualifies: impl Fn(&[K]) -> bool) -> Vec<&V> {
        self.collect_down(qualifies)
            .into_iter()
            .flat_map(|i| self.nodes[i].payload.iter())
            .collect()
    }

    /// Values under keys satisfying a predicate monotone decreasing under
    /// superset.
    pub fn find_monotone_up(&self, qualifies: impl Fn(&[K]) -> bool) -> Vec<&V> {
        self.collect_up(qualifies)
            .into_iter()
            .flat_map(|i| self.nodes[i].payload.iter())
            .collect()
    }

    /// All values (ignores the lattice structure).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.nodes.iter().flat_map(|n| n.payload.iter())
    }

    /// All values, mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.nodes.iter_mut().flat_map(|n| n.payload.iter_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Figure 1 lattice: keys A, B, D, AB, BE, ABC, ABF, BCDE.
    fn figure1() -> LatticeIndex<char, String> {
        let mut idx = LatticeIndex::new();
        for key in ["A", "B", "D", "AB", "BE", "ABC", "ABF", "BCDE"] {
            idx.insert(key.chars().collect(), key.to_string());
        }
        idx
    }

    fn sorted(mut v: Vec<&String>) -> Vec<String> {
        v.sort();
        v.into_iter().cloned().collect()
    }

    #[test]
    fn figure1_superset_search() {
        let idx = figure1();
        // "Suppose we want to find supersets of AB. ... The search returns
        // ABC, ABF, and AB."
        let found = sorted(idx.find_supersets(&['A', 'B']));
        assert_eq!(found, vec!["AB", "ABC", "ABF"]);
    }

    #[test]
    fn figure1_subset_search() {
        let idx = figure1();
        let found = sorted(idx.find_subsets(&['B', 'C', 'D', 'E']));
        assert_eq!(found, vec!["B", "BCDE", "BE", "D"]);
        let found = sorted(idx.find_subsets(&['A', 'B', 'E']));
        assert_eq!(found, vec!["A", "AB", "B", "BE"]);
    }

    #[test]
    fn figure1_structure() {
        let idx = figure1();
        // Tops: ABC, ABF, BCDE. Roots: A, B, D.
        let tops: Vec<&str> = idx
            .nodes
            .iter()
            .filter(|n| n.supersets.is_empty())
            .map(|n| n.key.iter().collect::<String>())
            .map(|s| match s.as_str() {
                "ABC" => "ABC",
                "ABF" => "ABF",
                "BCDE" => "BCDE",
                other => panic!("unexpected top {other}"),
            })
            .collect();
        assert_eq!(tops.len(), 3);
        let roots = idx.nodes.iter().filter(|n| n.subsets.is_empty()).count();
        assert_eq!(roots, 3);
        // AB's minimal supersets are ABC and ABF; its maximal subsets are
        // A and B.
        let ab = idx.by_key[&vec!['A', 'B']];
        assert_eq!(idx.nodes[ab].supersets.len(), 2);
        assert_eq!(idx.nodes[ab].subsets.len(), 2);
    }

    #[test]
    fn duplicate_keys_share_node() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2], "x");
        idx.insert(vec![2, 1, 2], "y"); // same set after normalization
        assert_eq!(idx.node_count(), 1);
        assert_eq!(idx.len(), 2);
        let found = idx.find_supersets(&[1]);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn empty_key_is_subset_of_everything() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![], "empty");
        idx.insert(vec![1], "one");
        let found = idx.find_subsets(&[5, 6]);
        assert_eq!(found, vec![&"empty"]);
        let found = idx.find_supersets(&[]);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn remove_values() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2], "x");
        idx.insert(vec![1, 2], "y");
        assert!(idx.remove(vec![2, 1], &"x"));
        assert!(!idx.remove(vec![2, 1], &"x"));
        assert_eq!(idx.find_supersets(&[1]), vec![&"y"]);
        assert!(idx.remove(vec![1, 2], &"y"));
        assert!(idx.is_empty());
        // Node remains as structure; re-insertion reuses it.
        idx.insert(vec![1, 2], "z");
        assert_eq!(idx.node_count(), 1);
    }

    #[test]
    fn monotone_hitting_search() {
        // Condition: key must intersect each of the given classes — the
        // output-column condition of section 4.2.3.
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2, 3], "v123");
        idx.insert(vec![1, 4], "v14");
        idx.insert(vec![2], "v2");
        let classes: Vec<Vec<u32>> = vec![vec![1, 9], vec![3, 4]];
        let hits = |k: &[u32]| {
            classes
                .iter()
                .all(|cl| cl.iter().any(|e| k.binary_search(e).is_ok()))
        };
        let mut found: Vec<_> = idx.find_monotone_down(hits);
        found.sort();
        assert_eq!(found, vec![&"v123", &"v14"]);
    }

    #[test]
    fn chain_insertion_orders() {
        // Insert in an order that forces re-linking: supersets first.
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2, 3, 4], "a");
        idx.insert(vec![1], "b");
        // Now 1 is a subset of 1234 directly.
        idx.insert(vec![1, 2], "c"); // splits the direct link
        idx.insert(vec![1, 2, 3], "d"); // splits again
        let found = sorted(
            idx.find_supersets(&[1])
                .into_iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .iter()
                .collect(),
        );
        assert_eq!(found, vec!["a", "b", "c", "d"]);
        let found = idx.find_subsets(&[1, 2]);
        assert_eq!(found.len(), 2);
        // The direct link 1 -> 1234 must be gone (replaced by chains).
        let one = idx.by_key[&vec![1]];
        let big = idx.by_key[&vec![1, 2, 3, 4]];
        assert!(!idx.nodes[one].supersets.contains(&big));
        assert!(!idx.nodes[big].subsets.contains(&one));
    }

    #[test]
    fn incomparable_keys_are_both_roots_and_tops() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1], "a");
        idx.insert(vec![2], "b");
        assert_eq!(idx.nodes.iter().filter(|n| n.subsets.is_empty()).count(), 2);
        assert_eq!(
            idx.nodes.iter().filter(|n| n.supersets.is_empty()).count(),
            2
        );
        assert!(idx.find_supersets(&[1, 2]).is_empty());
        assert_eq!(idx.find_subsets(&[1, 2]).len(), 2);
    }
}
