//! The lattice index of section 4.1.
//!
//! "The subset relationship between sets imposes a partial order among
//! sets, which can be represented as a lattice. ... a node in the lattice
//! index contains two collections of pointers, superset pointers and subset
//! pointers. A superset pointer of a node V points to a node that
//! represents a *minimal* superset of the set represented by V. Similarly,
//! a subset pointer of V points to a node that represents a *maximal*
//! subset. Sets with no subsets are called roots and sets without supersets
//! are called tops."
//!
//! Searches prune whole branches: looking for supersets of `S`, a node that
//! fails `S ⊆ key` cannot have any qualifying node below it (every subset
//! of a failing key also fails); looking for subsets, the dual holds going
//! upwards. The same pruning argument extends to any predicate that is
//! monotone with respect to set inclusion — the filter tree exploits this
//! for its "hitting" conditions (section 4.2.3).
//!
//! # Storage layout
//!
//! Node key sets live in one shared arena (`keys`), addressed per node by
//! an `(offset, len)` span; the nodes themselves are flat records. Cloning
//! an index — which the filter tree's copy-on-write does on first write to
//! a shared partition — therefore copies a few contiguous pages instead of
//! one heap allocation per node key. The top and root node lists are
//! maintained incrementally on insert, and searches mark visited nodes in
//! a pooled, epoch-stamped scratch instead of allocating a fresh `visited`
//! bitmap per search: a search over a million-node catalog does no
//! per-call allocation at all.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;

/// One node of the lattice. The key set lives in the index's shared key
/// arena as the span `[key_off, key_off + key_len)`.
#[derive(Debug, Clone)]
struct Node<V> {
    /// Offset of the key set in the shared key arena.
    key_off: u32,
    /// Length of the key set.
    key_len: u32,
    /// Indices of nodes holding minimal proper supersets of the key.
    supersets: Vec<u32>,
    /// Indices of nodes holding maximal proper subsets of the key.
    subsets: Vec<u32>,
    /// The values stored under this key. A node whose payload empties
    /// stays in the graph as structure (re-insertion reuses it).
    payload: Vec<V>,
}

/// A lattice index: a map from key *sets* to values supporting efficient
/// subset and superset queries.
#[derive(Debug, Clone)]
pub struct LatticeIndex<K, V> {
    nodes: Vec<Node<V>>,
    /// Shared key arena; each node's key is a contiguous sorted slice.
    keys: Vec<K>,
    by_key: HashMap<Vec<K>, u32>,
    /// Nodes with no supersets, maintained incrementally — searches start
    /// here instead of scanning every node.
    tops: Vec<u32>,
    /// Nodes with no subsets, maintained incrementally.
    roots: Vec<u32>,
}

impl<K, V> Default for LatticeIndex<K, V> {
    fn default() -> Self {
        LatticeIndex {
            nodes: Vec::new(),
            keys: Vec::new(),
            by_key: HashMap::new(),
            tops: Vec::new(),
            roots: Vec::new(),
        }
    }
}

/// Is sorted slice `a` a subset of sorted slice `b`?
pub(crate) fn is_subset<K: Ord>(a: &[K], b: &[K]) -> bool {
    let mut bi = 0;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Reusable per-search state: an epoch-stamped visited mark per node (a
/// stale epoch means "not visited", so clearing is one counter bump) and
/// the traversal stack.
#[derive(Default)]
struct SearchScratch {
    mark: Vec<u64>,
    epoch: u64,
    stack: Vec<u32>,
}

std::thread_local! {
    /// Pool of search scratches. A pool rather than a single slot because
    /// filter-tree searches nest: the visitor of a level-N search recurses
    /// into level-N+1 lattices, each acquiring its own scratch. Depth is
    /// bounded by the tree depth, so the pool stays tiny.
    static SCRATCH_POOL: RefCell<Vec<SearchScratch>> = const { RefCell::new(Vec::new()) };
}

fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    let out = f(&mut scratch);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(scratch));
    out
}

impl<K: Ord + Hash + Clone, V> LatticeIndex<K, V> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct key sets stored.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of stored values.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.payload.len()).sum()
    }

    /// Whether the index stores no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held by the flat node/key pages (capacity, not length —
    /// the memory actually reserved). Payload heap allocations are not
    /// included; the filter tree accounts those per child.
    pub fn arena_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<K>()
            + self.nodes.capacity() * std::mem::size_of::<Node<V>>()
    }

    /// The key slice of node `id`.
    fn key(&self, id: u32) -> &[K] {
        let n = &self.nodes[id as usize];
        &self.keys[n.key_off as usize..(n.key_off + n.key_len) as usize]
    }

    fn normalize(mut key: Vec<K>) -> Vec<K> {
        key.sort();
        key.dedup();
        key
    }

    /// Insert `value` under the key set `key`.
    pub fn insert(&mut self, key: Vec<K>, value: V) {
        let id = self.get_or_create_node(Self::normalize(key));
        self.nodes[id as usize].payload.push(value);
    }

    /// The first value stored under exactly `key`, mutably (the filter
    /// tree stores exactly one child per key set).
    pub fn peek_mut(&mut self, key: Vec<K>) -> Option<&mut V> {
        let key = Self::normalize(key);
        let &id = self.by_key.get(&key)?;
        self.nodes[id as usize].payload.first_mut()
    }

    /// The first value stored under exactly `key`, read-only. The dual of
    /// [`LatticeIndex::peek_mut`] for audit paths that must not mutate the
    /// index (and in particular must not mint new interner tokens).
    pub fn peek(&self, key: Vec<K>) -> Option<&V> {
        let key = Self::normalize(key);
        let &id = self.by_key.get(&key)?;
        self.nodes[id as usize].payload.first()
    }

    /// Every `(key, value)` pair in the index, in unspecified order. Keys
    /// are the normalized (sorted, deduplicated) stored keys; a key with
    /// several values is yielded once per value.
    pub fn iter(&self) -> impl Iterator<Item = (&[K], &V)> {
        self.nodes.iter().flat_map(|n| {
            let key = &self.keys[n.key_off as usize..(n.key_off + n.key_len) as usize];
            n.payload.iter().map(move |v| (key, v))
        })
    }

    /// Fetch the payload slot for `key`, creating the node (with a payload
    /// built by `make`) if absent. Used by the filter tree, where each key
    /// set owns exactly one child node.
    pub fn get_or_insert_with(&mut self, key: Vec<K>, make: impl FnOnce() -> V) -> &mut V {
        let id = self.get_or_create_node(Self::normalize(key)) as usize;
        if self.nodes[id].payload.is_empty() {
            self.nodes[id].payload.push(make());
        }
        &mut self.nodes[id].payload[0]
    }

    /// Remove one value equal to `value` stored under `key`. Returns
    /// whether a value was removed. The node itself remains as graph
    /// structure.
    pub fn remove(&mut self, key: Vec<K>, value: &V) -> bool
    where
        V: PartialEq,
    {
        let key = Self::normalize(key);
        if let Some(&id) = self.by_key.get(&key) {
            if let Some(pos) = self.nodes[id as usize]
                .payload
                .iter()
                .position(|v| v == value)
            {
                self.nodes[id as usize].payload.remove(pos);
                return true;
            }
        }
        false
    }

    fn get_or_create_node(&mut self, key: Vec<K>) -> u32 {
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.nodes.len() as u32;

        // Find the existing supersets and subsets of the new key via the
        // lattice itself, then reduce them to the minimal / maximal ones.
        let mut supers = Vec::new();
        self.collect_down(|k| is_subset(&key, k), |i| supers.push(i));
        let minimal_supers: Vec<u32> = supers
            .iter()
            .copied()
            .filter(|&s| {
                !supers
                    .iter()
                    .any(|&o| o != s && is_subset(self.key(o), self.key(s)))
            })
            .collect();
        let mut subs = Vec::new();
        self.collect_up(|k| is_subset(k, &key), |i| subs.push(i));
        let maximal_subs: Vec<u32> = subs
            .iter()
            .copied()
            .filter(|&s| {
                !subs
                    .iter()
                    .any(|&o| o != s && is_subset(self.key(s), self.key(o)))
            })
            .collect();

        // Cut direct links that now route through the new node.
        for &u in &minimal_supers {
            for &l in &maximal_subs {
                if let Some(p) = self.nodes[u as usize].subsets.iter().position(|&x| x == l) {
                    self.nodes[u as usize].subsets.remove(p);
                }
                if let Some(p) = self.nodes[l as usize]
                    .supersets
                    .iter()
                    .position(|&x| x == u)
                {
                    self.nodes[l as usize].supersets.remove(p);
                }
            }
        }
        // Wire the new node in.
        for &u in &minimal_supers {
            self.nodes[u as usize].subsets.push(id);
        }
        for &l in &maximal_subs {
            self.nodes[l as usize].supersets.push(id);
        }
        // Maintain the incremental top/root lists: every maximal subset
        // gained a superset (the new node), every minimal superset gained
        // a subset; the cut links were all replaced by links through the
        // new node, so no other node's status changes.
        if !maximal_subs.is_empty() {
            self.tops.retain(|t| !maximal_subs.contains(t));
        }
        if !minimal_supers.is_empty() {
            self.roots.retain(|r| !minimal_supers.contains(r));
        }
        if minimal_supers.is_empty() {
            self.tops.push(id);
        }
        if maximal_subs.is_empty() {
            self.roots.push(id);
        }
        let key_off = self.keys.len() as u32;
        let key_len = key.len() as u32;
        self.keys.extend(key.iter().cloned());
        self.nodes.push(Node {
            key_off,
            key_len,
            supersets: minimal_supers,
            subsets: maximal_subs,
            payload: Vec::new(),
        });
        self.by_key.insert(key, id);
        id
    }

    /// Visit every node id whose key satisfies `qualifies`, where
    /// `qualifies` is monotone decreasing under ⊆ (if a key fails, all its
    /// subsets fail). Starts from the tops and follows subset pointers.
    /// Allocation-free: visited marks and the stack come from a pooled,
    /// epoch-stamped scratch.
    fn collect_down(&self, qualifies: impl Fn(&[K]) -> bool, mut visit: impl FnMut(u32)) {
        with_scratch(|scratch| {
            scratch.begin(self.nodes.len());
            scratch.stack.extend(&self.tops);
            while let Some(i) = scratch.stack.pop() {
                if !scratch.first_visit(i) {
                    continue;
                }
                if !qualifies(self.key(i)) {
                    continue;
                }
                visit(i);
                scratch.stack.extend(&self.nodes[i as usize].subsets);
            }
        })
    }

    /// Dual of [`collect_down`]: `qualifies` monotone decreasing under ⊇.
    /// Starts from the roots and follows superset pointers.
    fn collect_up(&self, qualifies: impl Fn(&[K]) -> bool, mut visit: impl FnMut(u32)) {
        with_scratch(|scratch| {
            scratch.begin(self.nodes.len());
            scratch.stack.extend(&self.roots);
            while let Some(i) = scratch.stack.pop() {
                if !scratch.first_visit(i) {
                    continue;
                }
                if !qualifies(self.key(i)) {
                    continue;
                }
                visit(i);
                scratch.stack.extend(&self.nodes[i as usize].supersets);
            }
        })
    }

    /// Visit every value stored under a key that is a superset of (or
    /// equal to) `search`, which must be sorted and deduplicated. The
    /// zero-allocation core of [`LatticeIndex::find_supersets`]; the
    /// filter tree normalizes each level's search once and calls this per
    /// partition.
    pub fn for_each_superset_value<'a>(&'a self, search: &[K], mut f: impl FnMut(&'a V)) {
        debug_assert!(
            search.windows(2).all(|w| w[0] < w[1]),
            "search not normalized"
        );
        self.collect_down(
            |k| is_subset(search, k),
            |i| self.nodes[i as usize].payload.iter().for_each(&mut f),
        );
    }

    /// Visit every value stored under a key that is a subset of (or equal
    /// to) `search`, which must be sorted and deduplicated.
    pub fn for_each_subset_value<'a>(&'a self, search: &[K], mut f: impl FnMut(&'a V)) {
        debug_assert!(
            search.windows(2).all(|w| w[0] < w[1]),
            "search not normalized"
        );
        self.collect_up(
            |k| is_subset(k, search),
            |i| self.nodes[i as usize].payload.iter().for_each(&mut f),
        );
    }

    /// Visit every value under a key satisfying an arbitrary predicate
    /// that is monotone decreasing under subset (the hitting conditions of
    /// sections 4.2.3/4.2.4). The predicate sees the sorted key.
    pub fn for_each_monotone_down_value<'a>(
        &'a self,
        qualifies: impl Fn(&[K]) -> bool,
        mut f: impl FnMut(&'a V),
    ) {
        self.collect_down(qualifies, |i| {
            self.nodes[i as usize].payload.iter().for_each(&mut f)
        });
    }

    /// Values stored under keys that are supersets of (or equal to)
    /// `search`.
    pub fn find_supersets(&self, search: &[K]) -> Vec<&V> {
        let search = Self::normalize(search.to_vec());
        let mut out = Vec::new();
        self.for_each_superset_value(&search, |v| out.push(v));
        out
    }

    /// Values stored under keys that are subsets of (or equal to) `search`.
    pub fn find_subsets(&self, search: &[K]) -> Vec<&V> {
        let search = Self::normalize(search.to_vec());
        let mut out = Vec::new();
        self.for_each_subset_value(&search, |v| out.push(v));
        out
    }

    /// Values under keys satisfying an arbitrary predicate that is
    /// monotone decreasing under subset (used for the hitting conditions
    /// of sections 4.2.3/4.2.4). The predicate sees the sorted key.
    pub fn find_monotone_down(&self, qualifies: impl Fn(&[K]) -> bool) -> Vec<&V> {
        let mut out = Vec::new();
        self.for_each_monotone_down_value(qualifies, |v| out.push(v));
        out
    }

    /// Values under keys satisfying a predicate monotone decreasing under
    /// superset.
    pub fn find_monotone_up(&self, qualifies: impl Fn(&[K]) -> bool) -> Vec<&V> {
        let mut out = Vec::new();
        self.collect_up(qualifies, |i| {
            self.nodes[i as usize]
                .payload
                .iter()
                .for_each(|v| out.push(v))
        });
        out
    }

    /// All values (ignores the lattice structure).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.nodes.iter().flat_map(|n| n.payload.iter())
    }

    /// All values, mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.nodes.iter_mut().flat_map(|n| n.payload.iter_mut())
    }
}

impl SearchScratch {
    /// Start a search over `n` nodes: grow the mark page if needed and
    /// open a fresh epoch (every mark from earlier searches goes stale at
    /// once — no clearing pass).
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch += 1;
        self.stack.clear();
    }

    /// Mark `i` visited; returns whether this was the first visit this
    /// search.
    fn first_visit(&mut self, i: u32) -> bool {
        let slot = &mut self.mark[i as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Figure 1 lattice: keys A, B, D, AB, BE, ABC, ABF, BCDE.
    fn figure1() -> LatticeIndex<char, String> {
        let mut idx = LatticeIndex::new();
        for key in ["A", "B", "D", "AB", "BE", "ABC", "ABF", "BCDE"] {
            idx.insert(key.chars().collect(), key.to_string());
        }
        idx
    }

    fn sorted(mut v: Vec<&String>) -> Vec<String> {
        v.sort();
        v.into_iter().cloned().collect()
    }

    #[test]
    fn figure1_superset_search() {
        let idx = figure1();
        // "Suppose we want to find supersets of AB. ... The search returns
        // ABC, ABF, and AB."
        let found = sorted(idx.find_supersets(&['A', 'B']));
        assert_eq!(found, vec!["AB", "ABC", "ABF"]);
    }

    #[test]
    fn figure1_subset_search() {
        let idx = figure1();
        let found = sorted(idx.find_subsets(&['B', 'C', 'D', 'E']));
        assert_eq!(found, vec!["B", "BCDE", "BE", "D"]);
        let found = sorted(idx.find_subsets(&['A', 'B', 'E']));
        assert_eq!(found, vec!["A", "AB", "B", "BE"]);
    }

    #[test]
    fn figure1_structure() {
        let idx = figure1();
        // Tops: ABC, ABF, BCDE. Roots: A, B, D.
        let tops: Vec<String> = idx
            .tops
            .iter()
            .map(|&i| idx.key(i).iter().collect::<String>())
            .collect();
        for t in &tops {
            assert!(
                matches!(t.as_str(), "ABC" | "ABF" | "BCDE"),
                "unexpected top {t}"
            );
        }
        assert_eq!(tops.len(), 3);
        assert_eq!(idx.roots.len(), 3);
        // The incremental lists must agree with a full scan.
        for (i, n) in idx.nodes.iter().enumerate() {
            assert_eq!(
                n.supersets.is_empty(),
                idx.tops.contains(&(i as u32)),
                "top list out of sync at node {i}"
            );
            assert_eq!(
                n.subsets.is_empty(),
                idx.roots.contains(&(i as u32)),
                "root list out of sync at node {i}"
            );
        }
        // AB's minimal supersets are ABC and ABF; its maximal subsets are
        // A and B.
        let ab = idx.by_key[&vec!['A', 'B']] as usize;
        assert_eq!(idx.nodes[ab].supersets.len(), 2);
        assert_eq!(idx.nodes[ab].subsets.len(), 2);
    }

    #[test]
    fn duplicate_keys_share_node() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2], "x");
        idx.insert(vec![2, 1, 2], "y"); // same set after normalization
        assert_eq!(idx.node_count(), 1);
        assert_eq!(idx.len(), 2);
        let found = idx.find_supersets(&[1]);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn empty_key_is_subset_of_everything() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![], "empty");
        idx.insert(vec![1], "one");
        let found = idx.find_subsets(&[5, 6]);
        assert_eq!(found, vec![&"empty"]);
        let found = idx.find_supersets(&[]);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn remove_values() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2], "x");
        idx.insert(vec![1, 2], "y");
        assert!(idx.remove(vec![2, 1], &"x"));
        assert!(!idx.remove(vec![2, 1], &"x"));
        assert_eq!(idx.find_supersets(&[1]), vec![&"y"]);
        assert!(idx.remove(vec![1, 2], &"y"));
        assert!(idx.is_empty());
        // Node remains as structure; re-insertion reuses it.
        idx.insert(vec![1, 2], "z");
        assert_eq!(idx.node_count(), 1);
    }

    #[test]
    fn monotone_hitting_search() {
        // Condition: key must intersect each of the given classes — the
        // output-column condition of section 4.2.3.
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2, 3], "v123");
        idx.insert(vec![1, 4], "v14");
        idx.insert(vec![2], "v2");
        let classes: Vec<Vec<u32>> = vec![vec![1, 9], vec![3, 4]];
        let hits = |k: &[u32]| {
            classes
                .iter()
                .all(|cl| cl.iter().any(|e| k.binary_search(e).is_ok()))
        };
        let mut found: Vec<_> = idx.find_monotone_down(hits);
        found.sort();
        assert_eq!(found, vec![&"v123", &"v14"]);
    }

    #[test]
    fn chain_insertion_orders() {
        // Insert in an order that forces re-linking: supersets first.
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1, 2, 3, 4], "a");
        idx.insert(vec![1], "b");
        // Now 1 is a subset of 1234 directly.
        idx.insert(vec![1, 2], "c"); // splits the direct link
        idx.insert(vec![1, 2, 3], "d"); // splits again
        let found = sorted(
            idx.find_supersets(&[1])
                .into_iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .iter()
                .collect(),
        );
        assert_eq!(found, vec!["a", "b", "c", "d"]);
        let found = idx.find_subsets(&[1, 2]);
        assert_eq!(found.len(), 2);
        // The direct link 1 -> 1234 must be gone (replaced by chains).
        let one = idx.by_key[&vec![1]] as usize;
        let big = idx.by_key[&vec![1, 2, 3, 4]];
        assert!(!idx.nodes[one].supersets.contains(&big));
        assert!(!idx.nodes[big as usize].subsets.contains(&(one as u32)));
        // Re-linking must keep the incremental lists exact.
        assert_eq!(idx.tops, vec![0]);
        assert_eq!(idx.roots, vec![1]);
    }

    #[test]
    fn incomparable_keys_are_both_roots_and_tops() {
        let mut idx = LatticeIndex::new();
        idx.insert(vec![1], "a");
        idx.insert(vec![2], "b");
        assert_eq!(idx.roots.len(), 2);
        assert_eq!(idx.tops.len(), 2);
        assert!(idx.find_supersets(&[1, 2]).is_empty());
        assert_eq!(idx.find_subsets(&[1, 2]).len(), 2);
    }

    #[test]
    fn visitor_api_matches_collecting_api() {
        let idx = figure1();
        let search: Vec<char> = vec!['A', 'B'];
        let mut via_visitor: Vec<String> = Vec::new();
        idx.for_each_superset_value(&search, |v| via_visitor.push(v.clone()));
        via_visitor.sort();
        assert_eq!(via_visitor, sorted(idx.find_supersets(&search)));

        let search: Vec<char> = vec!['B', 'C', 'D', 'E'];
        let mut via_visitor: Vec<String> = Vec::new();
        idx.for_each_subset_value(&search, |v| via_visitor.push(v.clone()));
        via_visitor.sort();
        assert_eq!(via_visitor, sorted(idx.find_subsets(&search)));
    }

    #[test]
    fn nested_searches_reenter_the_scratch_pool() {
        // A search launched from inside another search's visitor must not
        // corrupt the outer traversal (the filter tree recurses this way).
        let outer = figure1();
        let inner = figure1();
        let mut count = 0;
        outer.for_each_superset_value(&['A'], |_| {
            inner.for_each_subset_value(&['A', 'B', 'E'], |_| count += 1);
        });
        // 4 supersets of A, each triggering a 4-hit inner subset search.
        assert_eq!(count, 16);
    }
}
