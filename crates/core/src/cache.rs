//! The level-1 substitute cache: canonical query fingerprints mapped to
//! complete `find_substitutes` results.
//!
//! Serving workloads are dominated by repeated query *templates* — the
//! cross-query commonality that multi-query optimization exploits. The
//! matcher's answer for a query depends only on the query shape and on the
//! engine's registered state (views + check constraints), so a repeated
//! shape can skip both the filter-tree walk and the subsumption tests
//! entirely:
//!
//! - [`fingerprint`] renders an [`SpjgExpr`] into a normalized textual
//!   form — tables sorted (occurrences renumbered accordingly), conjuncts
//!   rendered through the canonicalizing [`Template`] machinery and
//!   sorted, output expressions rendered in positional order with their
//!   *names dropped* — so α-equivalent queries (renamed outputs, permuted
//!   predicates, permuted join order) collide on the same entry.
//! - [`SubstituteCache`] is a mutex-striped shard array keyed by the
//!   fingerprint hash, with a second-chance ("clock") eviction hand per
//!   shard. Entries carry a *per-table epoch stamp*: the invalidation
//!   epoch of each base table the fingerprinted query touches, captured
//!   from the catalog snapshot the result was computed under. Registration
//!   (`add_view` / `remove_view`) bumps only the epochs of the view's own
//!   tables, and `add_check_constraint` only its table's — so an entry
//!   whose query touches disjoint tables keeps a matching stamp and
//!   survives the write. (A view can only answer a query whose tables are
//!   a subset of the view's, so bumping the view's tables covers every
//!   query whose result could change.) Stale entries are lazily discarded
//!   on their next lookup — registering a view never takes a
//!   stop-the-world pass over the cache.
//!
//! Cached results are returned byte-identical to what uncached matching
//! produces (output names are re-stamped from the probing query, which is
//! the only query-specific part of a [`Substitute`]); debug builds prove
//! this with a differential assertion on every hit.

use mv_expr::Template;
use mv_parallel::sync::{lock_or_recover, Mutex};
use mv_plan::{AggFunc, OutputList, SpjgExpr, Substitute, ViewId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A canonical rendering of a query plus its 64-bit hash. The full render
/// is kept and compared on lookup, so a hash collision degrades to a cache
/// miss instead of returning another query's substitutes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Hash of [`Fingerprint::render`].
    pub hash: u64,
    /// The normalized textual form of the query.
    pub render: String,
}

/// Render `query` into its canonical textual form and hash it.
///
/// Normalization: occurrences are renumbered by sorting the source-table
/// list (stable, so self-joins keep their relative order); conjuncts are
/// rendered through [`Template::of_bool`] — which already canonicalizes
/// commutative operators and flips `>` to `<` — with literal values kept
/// in the text, and the rendered conjuncts are sorted; output expressions
/// are rendered in positional order (substitute output lists are
/// positional, so their order is semantic) but with the output *names*
/// omitted — names are the one query-specific part of a substitute and
/// are re-stamped on every cache hit.
pub fn fingerprint(query: &SpjgExpr) -> Fingerprint {
    // Occurrence renumbering: position of each old occurrence in the
    // table-sorted order.
    let mut order: Vec<usize> = (0..query.tables.len()).collect();
    order.sort_by_key(|&i| (query.tables[i].0, i));
    let mut renum = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        renum[old] = new;
    }

    let mut render = String::with_capacity(128);
    render.push_str("T:");
    for &old in &order {
        render.push_str(&query.tables[old].0.to_string());
        render.push(',');
    }

    // One string per conjunct: canonical template text plus the renumbered
    // column list (literal values are part of the template text).
    let push_template = |out: &mut String, t: &Template| {
        out.push_str(&t.text);
        out.push('/');
        for c in &t.cols {
            out.push_str(&format!("{}.{},", renum[c.occ.0 as usize], c.col.0));
        }
    };
    let mut conjuncts: Vec<String> = query
        .conjuncts
        .iter()
        .map(|conj| {
            let mut s = String::new();
            push_template(&mut s, &Template::of_bool(&conj.to_bool()));
            s
        })
        .collect();
    conjuncts.sort_unstable();
    render.push_str("|C:");
    for c in &conjuncts {
        render.push_str(c);
        render.push(';');
    }

    match &query.output {
        OutputList::Spj(items) => {
            render.push_str("|S:");
            for ne in items {
                push_template(&mut render, &Template::of_scalar(&ne.expr));
                render.push(';');
            }
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            render.push_str("|G:");
            for ne in group_by {
                push_template(&mut render, &Template::of_scalar(&ne.expr));
                render.push(';');
            }
            render.push_str("|A:");
            for na in aggregates {
                match &na.func {
                    AggFunc::CountStar => render.push_str("COUNT(*)"),
                    AggFunc::Sum(e) => {
                        render.push_str("SUM:");
                        push_template(&mut render, &Template::of_scalar(e));
                    }
                    AggFunc::SumZero(e) => {
                        render.push_str("SUMZ:");
                        push_template(&mut render, &Template::of_scalar(e));
                    }
                }
                render.push(';');
            }
        }
    }

    let mut hasher = DefaultHasher::new();
    render.hash(&mut hasher);
    Fingerprint {
        hash: hasher.finish(),
        render,
    }
}

/// One cached `find_substitutes` result.
#[derive(Debug)]
struct Entry {
    hash: u64,
    render: String,
    /// Per-table invalidation epochs of the query's (sorted, deduplicated)
    /// base tables, captured at computation time. A mismatch on lookup
    /// means some table this query touches saw a view registration,
    /// removal, or new check constraint since. Two probes with equal
    /// renders reference the same table set in the same order, so the
    /// stamps compare positionally.
    stamp: Vec<u64>,
    /// Candidate count of the original computation, replayed into the
    /// stats on every hit so counter totals stay path-independent.
    candidates: usize,
    results: Vec<(ViewId, Substitute)>,
    /// Second-chance bit for the clock eviction hand.
    referenced: bool,
}

/// One mutex-striped shard: a fixed slot array, a hash → slot index, and
/// the clock hand.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Option<Entry>>,
    index: HashMap<u64, usize>,
    hand: usize,
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum CacheLookup {
    /// A live entry: the cached results plus the candidate count of the
    /// original computation.
    Hit {
        results: Vec<(ViewId, Substitute)>,
        candidates: usize,
    },
    /// An entry existed but some table its query touches changed since;
    /// it has been discarded (lazy invalidation).
    Stale,
    /// No entry.
    Miss,
    /// The cache is disabled (capacity 0).
    Disabled,
}

/// The sharded substitute cache. All methods take `&self`; each shard is
/// an independent [`Mutex`], so concurrent `find_substitutes` callers only
/// contend when their fingerprints land on the same stripe.
#[derive(Debug)]
pub struct SubstituteCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

impl SubstituteCache {
    /// A cache of at most `capacity` entries striped over `shards`
    /// mutexes. `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize, shards: usize) -> SubstituteCache {
        if capacity == 0 {
            return SubstituteCache {
                shards: Vec::new(),
                per_shard: 0,
            };
        }
        let n = shards.clamp(1, capacity);
        SubstituteCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(n),
        }
    }

    /// Is caching enabled (capacity > 0)?
    pub fn is_enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Probe for `render` under the current per-table epoch `stamp`
    /// (epochs of the query's sorted table set). A present entry whose
    /// stamp mismatches is removed and reported as [`CacheLookup::Stale`];
    /// a hash collision with a different render is a plain miss (the
    /// insert that follows will replace the colliding entry).
    pub fn lookup(&self, hash: u64, render: &str, stamp: &[u64]) -> CacheLookup {
        if !self.is_enabled() {
            return CacheLookup::Disabled;
        }
        let mut shard = lock_or_recover(self.shard(hash));
        let Some(&slot) = shard.index.get(&hash) else {
            return CacheLookup::Miss;
        };
        let entry = shard.slots[slot].as_ref().expect("indexed slot is filled");
        if entry.render != render {
            return CacheLookup::Miss;
        }
        if entry.stamp != stamp {
            shard.slots[slot] = None;
            shard.index.remove(&hash);
            return CacheLookup::Stale;
        }
        let entry = shard.slots[slot].as_mut().expect("indexed slot is filled");
        entry.referenced = true;
        CacheLookup::Hit {
            results: entry.results.clone(),
            candidates: entry.candidates,
        }
    }

    /// Store a computed result. An existing entry under the same hash is
    /// replaced; otherwise a free slot is used, or the clock hand evicts
    /// the first entry it sweeps past whose second-chance bit is clear.
    pub fn insert(
        &self,
        hash: u64,
        render: String,
        stamp: Vec<u64>,
        candidates: usize,
        results: Vec<(ViewId, Substitute)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let entry = Entry {
            hash,
            render,
            stamp,
            candidates,
            results,
            referenced: false,
        };
        let mut shard = lock_or_recover(self.shard(hash));
        if let Some(&slot) = shard.index.get(&hash) {
            shard.slots[slot] = Some(entry);
            return;
        }
        if shard.slots.len() < self.per_shard {
            let slot = shard.slots.len();
            shard.slots.push(Some(entry));
            shard.index.insert(hash, slot);
            return;
        }
        if let Some(slot) = shard.slots.iter().position(|s| s.is_none()) {
            shard.index.insert(hash, slot);
            shard.slots[slot] = Some(entry);
            return;
        }
        // Clock sweep: clear second-chance bits until a victim is found.
        // Bounded: after one full revolution every bit is clear.
        loop {
            let slot = shard.hand % self.per_shard;
            shard.hand = slot + 1;
            let occupant = shard.slots[slot].as_mut().expect("full shard");
            if occupant.referenced {
                occupant.referenced = false;
                continue;
            }
            let old_hash = occupant.hash;
            shard.index.remove(&old_hash);
            shard.index.insert(hash, slot);
            shard.slots[slot] = Some(entry);
            return;
        }
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_or_recover(s).index.len())
            .sum()
    }

    /// Is the cache empty (or disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (capacity and shard count are unchanged).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = lock_or_recover(s);
            shard.slots.clear();
            shard.index.clear();
            shard.hand = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
    use mv_plan::NamedExpr;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    fn sub(view: u32) -> Substitute {
        Substitute {
            view: ViewId(view),
            backjoins: Vec::new(),
            predicates: Vec::new(),
            output: OutputList::Spj(Vec::new()),
            freshness: mv_plan::Freshness::Fresh,
        }
    }

    fn query(name: &str, lo: i64) -> SpjgExpr {
        SpjgExpr::spj(
            vec![mv_catalog::TableId(3)],
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
            vec![NamedExpr::new(S::col(cr(0, 0)), name)],
        )
    }

    #[test]
    fn renamed_outputs_collide_different_literals_do_not() {
        let a = fingerprint(&query("a", 5));
        let b = fingerprint(&query("completely_different_name", 5));
        assert_eq!(a, b, "output names must not affect the fingerprint");
        let c = fingerprint(&query("a", 6));
        assert_ne!(a.render, c.render, "literal values are semantic");
    }

    #[test]
    fn conjunct_order_and_table_order_collide() {
        let t = |a: u32, b: u32| {
            let pred = vec![
                BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(1i64)),
                BoolExpr::cmp(S::col(cr(1, 0)), CmpOp::Lt, S::lit(9i64)),
            ];
            SpjgExpr::spj(
                vec![mv_catalog::TableId(a), mv_catalog::TableId(b)],
                BoolExpr::and(pred),
                vec![NamedExpr::new(S::col(cr(0, 0)), "x")],
            )
        };
        // Same query with tables listed in the other order and the
        // occurrence numbering swapped accordingly.
        let swapped = {
            let pred = vec![
                BoolExpr::cmp(S::col(cr(1, 0)), CmpOp::Ge, S::lit(1i64)),
                BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(9i64)),
            ];
            SpjgExpr::spj(
                vec![mv_catalog::TableId(7), mv_catalog::TableId(2)],
                BoolExpr::and(pred),
                vec![NamedExpr::new(S::col(cr(1, 0)), "renamed")],
            )
        };
        assert_eq!(fingerprint(&t(2, 7)), fingerprint(&swapped));
        assert_ne!(fingerprint(&t(2, 7)).render, fingerprint(&t(2, 8)).render);
    }

    #[test]
    fn lookup_insert_stamp_and_eviction() {
        let cache = SubstituteCache::new(4, 2);
        assert!(cache.is_enabled());
        assert!(cache.is_empty());
        let fp = fingerprint(&query("a", 5));
        assert!(matches!(
            cache.lookup(fp.hash, &fp.render, &[0]),
            CacheLookup::Miss
        ));
        cache.insert(
            fp.hash,
            fp.render.clone(),
            vec![0],
            3,
            vec![(ViewId(1), sub(1))],
        );
        match cache.lookup(fp.hash, &fp.render, &[0]) {
            CacheLookup::Hit {
                results,
                candidates,
            } => {
                assert_eq!(results.len(), 1);
                assert_eq!(candidates, 3);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // A bumped table epoch: the entry is discarded on its next probe.
        assert!(matches!(
            cache.lookup(fp.hash, &fp.render, &[1]),
            CacheLookup::Stale
        ));
        assert!(matches!(
            cache.lookup(fp.hash, &fp.render, &[1]),
            CacheLookup::Miss
        ));
        // Capacity is bounded: many inserts never exceed it.
        for i in 0..50 {
            let fp = fingerprint(&query("a", i));
            cache.insert(fp.hash, fp.render, vec![0], 0, Vec::new());
        }
        assert!(cache.len() <= 4, "clock eviction must bound the cache");
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn per_table_stamps_compare_positionally() {
        let cache = SubstituteCache::new(4, 1);
        let fp = fingerprint(&query("a", 5));
        cache.insert(fp.hash, fp.render.clone(), vec![2, 7], 0, Vec::new());
        // Same epochs for the same tables: hit.
        assert!(matches!(
            cache.lookup(fp.hash, &fp.render, &[2, 7]),
            CacheLookup::Hit { .. }
        ));
        // One table advanced: stale, even though the other is unchanged.
        assert!(matches!(
            cache.lookup(fp.hash, &fp.render, &[2, 8]),
            CacheLookup::Stale
        ));
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = SubstituteCache::new(0, 8);
        assert!(!cache.is_enabled());
        let fp = fingerprint(&query("a", 5));
        cache.insert(fp.hash, fp.render.clone(), vec![0], 0, Vec::new());
        assert!(matches!(
            cache.lookup(fp.hash, &fp.render, &[0]),
            CacheLookup::Disabled
        ));
        assert_eq!(cache.len(), 0);
    }
}
