//! Precomputed analysis of an SPJG block used throughout matching and
//! filtering.
//!
//! "To speed up view matching we maintain in memory a description of every
//! materialized view. The view descriptions contain all information needed
//! to apply the tests" (section 4). The same summary structure is computed
//! for the query expression at each invocation of the view-matching rule.

use mv_expr::{BoolExpr, ColRef, Conjunct, EquivClasses, Interval, OccId, Template};
use mv_plan::SpjgExpr;
use std::collections::HashMap;

/// Derived predicate information for one SPJG block.
#[derive(Debug, Clone)]
pub struct ExprSummary {
    /// Column equivalence classes from the `PE` conjuncts (section 3.1.1).
    pub ec: EquivClasses,
    /// Range intervals per equivalence class, keyed by the class
    /// representative ([`EquivClasses::find`] of the constrained column).
    /// Includes check-constraint-derived bounds (the *effective* ranges
    /// used by the subsumption tests).
    pub ranges: HashMap<ColRef, Interval>,
    /// Ranges built from the expression's own conjuncts only — the bounds
    /// that compensating predicates may need to enforce. Check-derived
    /// bounds hold on every view row and never need compensation.
    pub genuine_ranges: HashMap<ColRef, Interval>,
    /// Residual predicates as shallow templates (section 3.1.2), parallel
    /// to [`ExprSummary::residual_bools`].
    pub residuals: Vec<Template>,
    /// The original residual conjuncts (needed to emit compensations).
    pub residual_bools: Vec<BoolExpr>,
    /// How many leading entries of [`ExprSummary::residuals`] came from
    /// the expression itself (as opposed to check constraints folded into
    /// the antecedent, section 3.1.2). Only genuine residuals are eligible
    /// as compensating predicates — check-derived ones hold on every row
    /// and never need enforcement.
    pub genuine_residuals: usize,
}

impl ExprSummary {
    /// Analyze a block: compute equivalence classes, fold range conjuncts
    /// into per-class intervals, and template the residual conjuncts.
    ///
    /// A range conjunct that cannot be folded (incomparable bound types,
    /// `<>`) is demoted to a residual predicate, so no information is
    /// silently dropped.
    pub fn analyze(expr: &SpjgExpr) -> ExprSummary {
        Self::analyze_with_extras(expr, &[])
    }

    /// Analyze a block with extra conjuncts folded into the antecedent —
    /// the check-constraint treatment of section 3.1.2: "check constraints
    /// on the tables of a query can be added to the where-clause without
    /// changing the query result". The extra conjuncts strengthen the
    /// equivalence classes and ranges and can satisfy view residuals, but
    /// are excluded from compensating-predicate generation.
    pub fn analyze_with_extras(expr: &SpjgExpr, extras: &[Conjunct]) -> ExprSummary {
        let mut ec = expr.equiv_classes();
        for conj in extras {
            if let Conjunct::ColumnEq(a, b) = conj {
                ec.union(*a, *b);
            }
        }
        let mut ranges: HashMap<ColRef, Interval> = HashMap::new();
        let mut genuine_ranges: HashMap<ColRef, Interval> = HashMap::new();
        let mut residuals = Vec::new();
        let mut residual_bools = Vec::new();
        let mut genuine_residuals = 0;
        let genuine_count = expr.conjuncts.len();
        for (i, conj) in expr.conjuncts.iter().chain(extras).enumerate() {
            let genuine = i < genuine_count;
            match conj {
                Conjunct::ColumnEq(..) => {}
                Conjunct::Range { col, op, value } => {
                    let root = ec.find(*col);
                    let iv = ranges.entry(root).or_default();
                    if !iv.apply(*op, value) {
                        // Check-derived ranges that fail to fold are just
                        // dropped (they hold anyway); genuine ones demote
                        // to residuals.
                        if genuine {
                            let b = conj.to_bool();
                            residuals.insert(genuine_residuals, Template::of_bool(&b));
                            residual_bools.insert(genuine_residuals, b);
                            genuine_residuals += 1;
                        }
                    } else if genuine {
                        genuine_ranges.entry(root).or_default().apply(*op, value);
                    }
                }
                Conjunct::Residual(p) => {
                    if genuine {
                        residuals.insert(genuine_residuals, Template::of_bool(p));
                        residual_bools.insert(genuine_residuals, p.clone());
                        genuine_residuals += 1;
                    } else {
                        residuals.push(Template::of_bool(p));
                        residual_bools.push(p.clone());
                    }
                }
            }
        }
        ExprSummary {
            ec,
            ranges,
            genuine_ranges,
            residuals,
            residual_bools,
            genuine_residuals,
        }
    }

    /// The range interval of the class containing `col`, if constrained.
    pub fn range_of(&self, col: ColRef) -> Option<&Interval> {
        self.ranges.get(&self.ec.find(col))
    }

    /// Is `col` constrained by a range predicate (through its class)?
    pub fn is_range_constrained(&self, col: ColRef) -> bool {
        self.range_of(col).is_some()
    }
}

/// Remap the occurrences of an equivalence-class structure through an
/// occurrence substitution (view space → query space).
pub fn remap_ec(ec: &EquivClasses, map: &impl Fn(OccId) -> OccId) -> EquivClasses {
    let mut out = EquivClasses::new();
    for class in ec.nontrivial_classes() {
        for pair in class.windows(2) {
            out.union(remap_col(pair[0], map), remap_col(pair[1], map));
        }
    }
    out
}

/// Remap one column reference.
pub fn remap_col(c: ColRef, map: &impl Fn(OccId) -> OccId) -> ColRef {
    ColRef {
        occ: map(c.occ),
        col: c.col,
    }
}

/// Remap a template's column list (the text is occurrence-independent).
pub fn remap_template(t: &Template, map: &impl Fn(OccId) -> OccId) -> Template {
    Template {
        text: t.text.clone(),
        cols: t.cols.iter().map(|c| remap_col(*c, map)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_catalog::Value;
    use mv_expr::{Bound, CmpOp, ScalarExpr as S};
    use mv_plan::NamedExpr;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn ranges_fold_through_equivalence_classes() {
        let (_, t) = tpch_catalog();
        // l_partkey = p_partkey AND l_partkey > 150 AND p_partkey < 160:
        // both bounds land on the same class interval.
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Gt, S::lit(150i64)),
            BoolExpr::cmp(S::col(cr(1, 0)), CmpOp::Lt, S::lit(160i64)),
        ]);
        let e = SpjgExpr::spj(
            vec![t.lineitem, t.part],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 1)), "k")],
        );
        let s = ExprSummary::analyze(&e);
        assert_eq!(s.ranges.len(), 1);
        let iv = s.range_of(cr(0, 1)).unwrap();
        assert_eq!(iv.lo, Bound::Excl(Value::Int(150)));
        assert_eq!(iv.hi, Bound::Excl(Value::Int(160)));
        // Both members of the class see the same range.
        assert_eq!(s.range_of(cr(1, 0)), Some(iv));
        assert!(s.is_range_constrained(cr(1, 0)));
        assert!(!s.is_range_constrained(cr(0, 4)));
        assert!(s.residuals.is_empty());
    }

    #[test]
    fn unfoldable_range_becomes_residual() {
        let (_, t) = tpch_catalog();
        // p_size > 5 AND p_size < 'oops' — second bound incomparable.
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Gt, S::lit(5i64)),
            BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Lt, S::lit("oops")),
        ]);
        let e = SpjgExpr::spj(
            vec![t.part],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let s = ExprSummary::analyze(&e);
        assert_eq!(s.ranges.len(), 1);
        assert_eq!(s.residuals.len(), 1);
        assert_eq!(s.residual_bools.len(), 1);
    }

    #[test]
    fn residual_templates_recorded() {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::Like {
            expr: S::col(cr(0, 1)),
            pattern: "%steel%".into(),
            negated: false,
        };
        let e = SpjgExpr::spj(
            vec![t.part],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let s = ExprSummary::analyze(&e);
        assert_eq!(s.residuals.len(), 1);
        assert!(s.residuals[0].text.contains("LIKE"));
        assert_eq!(s.residuals[0].cols, vec![cr(0, 1)]);
    }

    #[test]
    fn remapping_moves_occurrences() {
        let mut ec = EquivClasses::new();
        ec.union(cr(0, 0), cr(1, 0));
        let mapped = remap_ec(&ec, &|o: OccId| OccId(o.0 + 10));
        assert!(mapped.same(cr(10, 0), cr(11, 0)));
        assert!(!mapped.same(cr(0, 0), cr(1, 0)));
        let t = Template {
            text: "? < ?".into(),
            cols: vec![cr(0, 0), cr(1, 0)],
        };
        let mt = remap_template(&t, &|o: OccId| OccId(o.0 + 2));
        assert_eq!(mt.cols, vec![cr(2, 0), cr(3, 0)]);
        assert_eq!(mt.text, t.text);
    }
}
