//! The level-2 prepared match descriptor: everything `match_view` used to
//! re-derive per probe, precomputed once at `add_view` time.
//!
//! "To speed up view matching we maintain in memory a description of every
//! materialized view" (section 4). [`crate::ExprSummary`] already holds the
//! predicate analysis; [`PreparedView`] extends it with the derived forms
//! the matching tests consume directly, so a substitute-cache miss still
//! does strictly less work per candidate than the original code path:
//!
//! - the non-trivial view equivalence classes in canonical order (the
//!   §3.1.2 equijoin subsumption test walks them without recomputing the
//!   class partition),
//! - the per-class range intervals as a sorted list (deterministic
//!   iteration, no per-probe `HashMap` walk),
//! - the sorted residual template tokens (a query whose residual token
//!   set does not cover the view's cannot match — a binary-search
//!   prefilter before the full template tests),
//! - the occurrences grouped by base table, sorted (table-correspondence
//!   check and mapping enumeration without building per-probe maps),
//! - the FK-join-graph incoming-edge set (§3.2: an extra table is only
//!   eliminable if some cardinality-preserving edge points at it, so a
//!   mapping that leaves an edge-less view occurrence unassigned is
//!   rejected before the per-probe graph is built).

use crate::fkgraph::build_fk_graph;
use crate::matching::MatchConfig;
use crate::summary::ExprSummary;
use mv_catalog::{Catalog, TableId};
use mv_expr::{ColRef, Interval, OccId};
use mv_plan::SpjgExpr;

/// Per-view prepared match descriptor. Built once per `add_view`; the
/// matching path only reads it.
#[derive(Debug, Clone)]
pub struct PreparedView {
    /// The predicate analysis of the view definition.
    pub summary: ExprSummary,
    /// `summary.ec.nontrivial_classes()`, canonical (classes and members
    /// sorted).
    pub nontrivial_ecs: Vec<Vec<ColRef>>,
    /// `summary.ranges` as a list sorted by class representative.
    pub ranges: Vec<(ColRef, Interval)>,
    /// Interned tokens of the view's residual template texts, sorted.
    /// Every view residual must textually match some query residual
    /// (§3.1.2), so a candidate whose tokens are not a subset of the
    /// query's residual tokens is rejected without running the tests.
    /// Empty when the caller has no interner (the token prefilter is then
    /// simply skipped).
    pub residual_tokens: Vec<u64>,
    /// View occurrences grouped by base table, sorted by table id.
    pub by_table: Vec<(TableId, Vec<OccId>)>,
    /// Per view occurrence: does any cardinality-preserving FK edge point
    /// at it? Built with the *permissive* nullable-column rule (every
    /// nullable FK accepted when [`MatchConfig::null_rejecting_fk`] is
    /// on), so the edge set is a superset of what any per-query graph can
    /// contain — absence here soundly implies absence there.
    pub fk_incoming: Vec<bool>,
}

impl PreparedView {
    /// Precompute the descriptor for a view definition. `residual_tokens`
    /// are the interned tokens of `summary.residuals` (sorted here); pass
    /// an empty list to skip the token prefilter.
    pub fn prepare(
        catalog: &Catalog,
        config: &MatchConfig,
        expr: &SpjgExpr,
        summary: ExprSummary,
        mut residual_tokens: Vec<u64>,
    ) -> PreparedView {
        let nontrivial_ecs = summary.ec.nontrivial_classes();
        let mut ranges: Vec<(ColRef, Interval)> = summary
            .ranges
            .iter()
            .map(|(c, iv)| (*c, iv.clone()))
            .collect();
        ranges.sort_by_key(|(c, _)| *c);
        residual_tokens.sort_unstable();
        let occs: Vec<(OccId, TableId)> = expr.occurrences().collect();
        let graph = build_fk_graph(catalog, &occs, &summary.ec, &|_| config.null_rejecting_fk);
        let fk_incoming = graph.incoming_flags(expr.tables.len());
        PreparedView {
            summary,
            nontrivial_ecs,
            ranges,
            residual_tokens,
            by_table: occurrences_by_table(expr),
            fk_incoming,
        }
    }

    /// The distinct base tables the view references, ascending. The
    /// online catalog bumps exactly these tables' invalidation epochs when
    /// the view is registered or removed: a view can only answer a query
    /// whose tables are a subset of its own, so every cached result the
    /// change could affect carries at least one of these tables in its
    /// stamp.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.by_table.iter().map(|(t, _)| *t)
    }
}

/// Group an expression's occurrences by base table, sorted by table id
/// (occurrences within a table keep FROM-list order). Shared by the view
/// descriptor and the per-query [`crate::matching::PreparedQuery`].
pub fn occurrences_by_table(expr: &SpjgExpr) -> Vec<(TableId, Vec<OccId>)> {
    let mut out: Vec<(TableId, Vec<OccId>)> = Vec::new();
    for (occ, t) in expr.occurrences() {
        match out.binary_search_by_key(&t, |(bt, _)| *bt) {
            Ok(i) => out[i].1.push(occ),
            Err(i) => out.insert(i, (t, vec![occ])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};
    use mv_plan::NamedExpr;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn descriptor_precomputes_canonical_forms() {
        let (cat, t) = tpch_catalog();
        // lineitem ⋈ orders on l_orderkey = o_orderkey, with a range.
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(1, 3)), CmpOp::Lt, S::lit(100i64)),
        ]);
        let expr = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let summary = ExprSummary::analyze(&expr);
        let pv =
            PreparedView::prepare(&cat, &MatchConfig::default(), &expr, summary, vec![9, 3, 3]);
        assert_eq!(pv.nontrivial_ecs, vec![vec![cr(0, 0), cr(1, 0)]]);
        assert_eq!(pv.ranges.len(), 1);
        assert_eq!(pv.residual_tokens, vec![3, 3, 9], "tokens sorted");
        // orders is the target of lineitem's FK edge; lineitem has no
        // incoming edge.
        assert_eq!(pv.fk_incoming, vec![false, true]);
        // by_table sorted by table id, whatever the FROM order.
        let flipped = SpjgExpr::spj(
            vec![t.orders, t.lineitem],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let by_table = occurrences_by_table(&flipped);
        assert!(by_table.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(by_table.len(), 2);
    }

    #[test]
    fn self_join_occurrences_grouped() {
        let (_, t) = tpch_catalog();
        let expr = SpjgExpr::spj(
            vec![t.part, t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let by_table = occurrences_by_table(&expr);
        assert_eq!(by_table.len(), 1);
        assert_eq!(by_table[0].1, vec![OccId(0), OccId(1)]);
    }
}
