//! The level-2 prepared match descriptor: everything `match_view` used to
//! re-derive per probe, precomputed once at `add_view` time.
//!
//! "To speed up view matching we maintain in memory a description of every
//! materialized view" (section 4). [`crate::ExprSummary`] already holds the
//! predicate analysis; [`PreparedView`] extends it with the derived forms
//! the matching tests consume directly, so a substitute-cache miss still
//! does strictly less work per candidate than the original code path:
//!
//! - the non-trivial view equivalence classes in canonical order (the
//!   §3.1.2 equijoin subsumption test walks them without recomputing the
//!   class partition),
//! - the per-class range intervals as a sorted list (deterministic
//!   iteration, no per-probe `HashMap` walk),
//! - the sorted residual template tokens (a query whose residual token
//!   set does not cover the view's cannot match — a binary-search
//!   prefilter before the full template tests),
//! - the occurrences grouped by base table, sorted (table-correspondence
//!   check and mapping enumeration without building per-probe maps),
//! - the FK-join-graph incoming-edge set (§3.2: an extra table is only
//!   eliminable if some cardinality-preserving edge points at it, so a
//!   mapping that leaves an edge-less view occurrence unassigned is
//!   rejected before the per-probe graph is built).

use crate::fkgraph::build_fk_graph;
use crate::matching::MatchConfig;
use crate::summary::ExprSummary;
use mv_catalog::{Catalog, TableId};
use mv_expr::{ColRef, Interval, OccId, Template};
use mv_plan::{AggFunc, SpjgExpr, ViewId};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-view prepared match descriptor. Built once per `add_view`; the
/// matching path only reads it.
#[derive(Debug, Clone)]
pub struct PreparedView {
    /// The predicate analysis of the view definition.
    pub summary: ExprSummary,
    /// `summary.ec.nontrivial_classes()`, canonical (classes and members
    /// sorted).
    pub nontrivial_ecs: Vec<Vec<ColRef>>,
    /// `summary.ranges` as a list sorted by class representative.
    pub ranges: Vec<(ColRef, Interval)>,
    /// Interned tokens of the view's residual template texts, sorted.
    /// Every view residual must textually match some query residual
    /// (§3.1.2), so a candidate whose tokens are not a subset of the
    /// query's residual tokens is rejected without running the tests.
    /// Empty when the caller has no interner (the token prefilter is then
    /// simply skipped).
    pub residual_tokens: Vec<u64>,
    /// View occurrences grouped by base table, sorted by table id.
    pub by_table: Vec<(TableId, Vec<OccId>)>,
    /// Per view occurrence: does any cardinality-preserving FK edge point
    /// at it? Built with the *permissive* nullable-column rule (every
    /// nullable FK accepted when [`MatchConfig::null_rejecting_fk`] is
    /// on), so the edge set is a superset of what any per-query graph can
    /// contain — absence here soundly implies absence there.
    pub fk_incoming: Vec<bool>,
    /// The view's output list digested for substitute construction, in
    /// *view* column space. The matcher translates probe columns into view
    /// space through its occurrence assignment instead of rebuilding these
    /// maps (and re-rendering the output templates) per accepted
    /// candidate.
    pub outputs: PreparedOutputs,
    /// View column → index into `nontrivial_ecs`, for every member of a
    /// non-trivial class. Columns outside every class are absent.
    pub ec_class: HashMap<ColRef, u32>,
}

/// One candidate backjoin target (the section 7 extension), precomputed
/// per view occurrence at registration: the base table, the (output
/// position → key column) pairs of a non-null unique key, and the table's
/// column count.
#[derive(Debug, Clone)]
pub struct BackjoinOffer {
    /// The base table to join the view back to.
    pub table: TableId,
    /// `(view output position, key column)` pairs of the join key.
    pub key: Vec<(usize, mv_catalog::ColumnId)>,
    /// Column count of the table (width of the backjoined block in the
    /// extended output space).
    pub n_columns: usize,
}

/// View output bookkeeping in *view* column space: which columns and
/// expressions the view makes available, and where. Template texts are
/// column-blind (columns render as `?`), so these entries compare against
/// query expressions with a cross-space column relation instead of being
/// re-rendered per occurrence assignment.
#[derive(Debug, Clone)]
pub struct PreparedOutputs {
    /// Simple-column outputs: view column → output position (scalar
    /// outputs only; for aggregation views these are the grouping
    /// outputs).
    pub col_pos: HashMap<ColRef, usize>,
    /// Complex scalar outputs as templates.
    pub complex: Vec<(Template, usize)>,
    /// Number of scalar (grouping) outputs; aggregate outputs follow.
    pub scalar_len: usize,
    /// `SUM(E)` outputs: template of `E` → position.
    pub sum_args: Vec<(Template, usize)>,
    /// Position of the `COUNT(*)` output, if any.
    pub count_pos: Option<usize>,
    /// Total view output arity (scalar + aggregate outputs).
    pub arity: usize,
    /// Backjoins on offer per view occurrence (empty unless
    /// [`MatchConfig::allow_backjoins`] was set at registration).
    pub backjoins: HashMap<OccId, BackjoinOffer>,
}

impl PreparedOutputs {
    fn build(
        catalog: &Catalog,
        config: &MatchConfig,
        expr: &SpjgExpr,
        classes: &[Vec<ColRef>],
        ec_class: &HashMap<ColRef, u32>,
    ) -> PreparedOutputs {
        let mut col_pos = HashMap::new();
        let mut complex = Vec::new();
        let scalars = expr.scalar_outputs();
        for (i, ne) in scalars.iter().enumerate() {
            if let Some(c) = ne.expr.as_column() {
                col_pos.entry(c).or_insert(i);
            } else if !ne.expr.is_constant() {
                complex.push((Template::of_scalar(&ne.expr), i));
            }
        }
        let mut sum_args = Vec::new();
        let mut count_pos = None;
        for (j, na) in expr.aggregate_outputs().iter().enumerate() {
            let pos = scalars.len() + j;
            match &na.func {
                AggFunc::CountStar => count_pos = Some(pos),
                AggFunc::Sum(e) | AggFunc::SumZero(e) => {
                    sum_args.push((Template::of_scalar(e), pos));
                }
            }
        }
        let mut out = PreparedOutputs {
            col_pos,
            complex,
            scalar_len: scalars.len(),
            sum_args,
            count_pos,
            arity: expr.output_arity(),
            backjoins: HashMap::new(),
        };
        if config.allow_backjoins {
            // Offer backjoins (section 7 extension): for every view
            // occurrence whose base table has a non-null unique key fully
            // available among the view's outputs (through the view's own
            // equivalence classes), the table's columns become reachable
            // by joining the view back to it.
            for (occ, table) in expr.occurrences() {
                let def = catalog.table(table);
                let offer = def.keys.iter().find_map(|key| {
                    if !key.columns.iter().all(|&c| def.column(c).not_null) {
                        return None; // NULL keys would drop rows in the join
                    }
                    let pairs = key
                        .columns
                        .iter()
                        .map(|&c| {
                            // Keys must come from the view outputs
                            // themselves (never from another backjoin,
                            // which would create ordering dependencies
                            // between joins).
                            out.direct_position_view(ColRef { occ, col: c }, classes, ec_class)
                                .map(|p| (p, c))
                        })
                        .collect::<Option<Vec<_>>>()?;
                    Some(BackjoinOffer {
                        table,
                        key: pairs,
                        n_columns: def.columns.len(),
                    })
                });
                if let Some(offer) = offer {
                    out.backjoins.insert(occ, offer);
                }
            }
        }
        out
    }

    /// Output position of view column `c`, rerouting through the view's
    /// own equivalence classes; no backjoins.
    pub fn direct_position_view(
        &self,
        c: ColRef,
        classes: &[Vec<ColRef>],
        ec_class: &HashMap<ColRef, u32>,
    ) -> Option<usize> {
        if let Some(&p) = self.col_pos.get(&c) {
            return Some(p);
        }
        let i = *ec_class.get(&c)? as usize;
        classes[i].iter().find_map(|m| self.col_pos.get(m).copied())
    }
}

impl PreparedView {
    /// Precompute the descriptor for a view definition. `residual_tokens`
    /// are the interned tokens of `summary.residuals` (sorted here); pass
    /// an empty list to skip the token prefilter.
    pub fn prepare(
        catalog: &Catalog,
        config: &MatchConfig,
        expr: &SpjgExpr,
        summary: ExprSummary,
        mut residual_tokens: Vec<u64>,
    ) -> PreparedView {
        let nontrivial_ecs = summary.ec.nontrivial_classes();
        let mut ranges: Vec<(ColRef, Interval)> = summary
            .ranges
            .iter()
            .map(|(c, iv)| (*c, iv.clone()))
            .collect();
        ranges.sort_by_key(|(c, _)| *c);
        residual_tokens.sort_unstable();
        let occs: Vec<(OccId, TableId)> = expr.occurrences().collect();
        let graph = build_fk_graph(catalog, &occs, &summary.ec, &|_| config.null_rejecting_fk);
        let fk_incoming = graph.incoming_flags(expr.tables.len());
        let mut ec_class: HashMap<ColRef, u32> = HashMap::new();
        for (i, class) in nontrivial_ecs.iter().enumerate() {
            for &c in class {
                ec_class.insert(c, i as u32);
            }
        }
        let outputs = PreparedOutputs::build(catalog, config, expr, &nontrivial_ecs, &ec_class);
        PreparedView {
            summary,
            nontrivial_ecs,
            ranges,
            residual_tokens,
            by_table: occurrences_by_table(expr),
            fk_incoming,
            outputs,
            ec_class,
        }
    }

    /// The distinct base tables the view references, ascending. The
    /// online catalog bumps exactly these tables' invalidation epochs when
    /// the view is registered or removed: a view can only answer a query
    /// whose tables are a subset of its own, so every cached result the
    /// change could affect carries at least one of these tables in its
    /// stamp.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.by_table.iter().map(|(t, _)| *t)
    }
}

/// Group an expression's occurrences by base table, sorted by table id
/// (occurrences within a table keep FROM-list order). Shared by the view
/// descriptor and the per-query [`crate::matching::PreparedQuery`].
pub fn occurrences_by_table(expr: &SpjgExpr) -> Vec<(TableId, Vec<OccId>)> {
    let mut out: Vec<(TableId, Vec<OccId>)> = Vec::new();
    for (occ, t) in expr.occurrences() {
        match out.binary_search_by_key(&t, |(bt, _)| *bt) {
            Ok(i) => out[i].1.push(occ),
            Err(i) => out.insert(i, (t, vec![occ])),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Packed catalog: the arena the candidate scan reads.
// ---------------------------------------------------------------------

/// Is every element of sorted slice `a` present in sorted slice `b`?
/// Set semantics — duplicates in either slice are harmless — via a single
/// forward merge; the cursor into `b` never rewinds.
pub fn sorted_subset(a: &[u32], b: &[u32]) -> bool {
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                // Do not consume the match: a duplicate in `a` may need it.
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Do two sorted slices share at least one element?
pub fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut ai, mut bi) = (0, 0);
    while ai < a.len() && bi < b.len() {
        match a[ai].cmp(&b[bi]) {
            std::cmp::Ordering::Less => ai += 1,
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Greater => bi += 1,
        }
    }
    false
}

/// Views per [`PackedCatalog`] segment. Small enough that copy-on-write
/// of the unsealed tail segment stays cheap per registration, large enough
/// that a million-view catalog is a few hundred `Arc`s, not a node graph.
pub const SEG_VIEWS: usize = 4096;

/// One view's spans into its segment's arenas, plus the flags the
/// candidate prefilter branches on. `Copy`, 40 bytes, scanned linearly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedViewRec {
    /// Residual template tokens: sorted, deduplicated `u32`s.
    res_off: u32,
    res_len: u32,
    /// Distinct source tables (ascending); `occ_counts` and `fk_free` are
    /// parallel to this span.
    tbl_off: u32,
    tbl_len: u32,
    /// Base-qualified columns of the non-trivial equivalence classes,
    /// sorted, deduplicated (`engine::col_token` encoding).
    ec_off: u32,
    ec_len: u32,
    /// Base-qualified range-constrained class representatives, sorted,
    /// deduplicated.
    rng_off: u32,
    rng_len: u32,
    /// Aggregation view? (An SPJ query can never use one — §3.3.)
    is_agg: bool,
}

/// One sealed-or-tail segment of the packed catalog: flat arenas for up to
/// [`SEG_VIEWS`] views, plus their cold descriptors. Cloning copies the
/// flat pages with a handful of `memcpy`s.
#[derive(Debug, Clone, Default)]
struct PackedSegment {
    recs: Vec<PackedViewRec>,
    res_tokens: Vec<u32>,
    tables: Vec<u32>,
    /// Occurrences of each table, parallel to `tables`.
    occ_counts: Vec<u32>,
    /// Occurrences of each table with **no** incoming cardinality-
    /// preserving FK edge, parallel to `tables`. An edge-less occurrence
    /// can never be eliminated as an extra table (§3.2), so every mapping
    /// must assign all of them — if a table has more of these than the
    /// query has occurrences of it, no mapping can survive.
    fk_free: Vec<u32>,
    ec_cols: Vec<u64>,
    rng_cols: Vec<u64>,
    /// The cold descriptors, touched only by candidates that survive the
    /// packed prechecks.
    prepared: Vec<Arc<PreparedView>>,
}

impl PackedSegment {
    fn push_view(&mut self, pv: Arc<PreparedView>, expr: &SpjgExpr) {
        let tok = |c: &ColRef| crate::engine::col_token(expr.table_of(c.occ), c.col);
        let res_off = self.res_tokens.len() as u32;
        // `residual_tokens` is sorted; interner tokens are minted
        // sequentially from 0, so they fit u32 until 4 billion distinct
        // template texts exist. Dedup to set semantics — the subset
        // prefilter treats the tokens as a set.
        for &t in &pv.residual_tokens {
            assert!(
                t <= u32::MAX as u64,
                "residual token overflows packed arena"
            );
            if self.res_tokens.len() as u32 == res_off
                || *self.res_tokens.last().unwrap() != t as u32
            {
                self.res_tokens.push(t as u32);
            }
        }
        let res_len = self.res_tokens.len() as u32 - res_off;
        let tbl_off = self.tables.len() as u32;
        for (t, occs) in &pv.by_table {
            self.tables.push(t.0);
            self.occ_counts.push(occs.len() as u32);
            let free = occs
                .iter()
                .filter(|o| !pv.fk_incoming[o.0 as usize])
                .count() as u32;
            self.fk_free.push(free);
        }
        let ec_off = self.ec_cols.len() as u32;
        let mut ecs: Vec<u64> = pv
            .nontrivial_ecs
            .iter()
            .flat_map(|class| class.iter().map(tok))
            .collect();
        ecs.sort_unstable();
        ecs.dedup();
        let ec_len = ecs.len() as u32;
        self.ec_cols.extend(ecs);
        let rng_off = self.rng_cols.len() as u32;
        let mut rngs: Vec<u64> = pv.ranges.iter().map(|(c, _)| tok(c)).collect();
        rngs.sort_unstable();
        rngs.dedup();
        let rng_len = rngs.len() as u32;
        self.rng_cols.extend(rngs);
        self.recs.push(PackedViewRec {
            res_off,
            res_len,
            tbl_off,
            tbl_len: pv.by_table.len() as u32,
            ec_off,
            ec_len,
            rng_off,
            rng_len,
            is_agg: expr.is_aggregate(),
        });
        self.prepared.push(pv);
    }

    fn arena_bytes(&self) -> usize {
        self.recs.capacity() * std::mem::size_of::<PackedViewRec>()
            + (self.res_tokens.capacity()
                + self.tables.capacity()
                + self.occ_counts.capacity()
                + self.fk_free.capacity())
                * std::mem::size_of::<u32>()
            + (self.ec_cols.capacity() + self.rng_cols.capacity()) * std::mem::size_of::<u64>()
    }
}

/// The query-side probe the packed prechecks scan against, derived once
/// per query (not per candidate).
#[derive(Debug, Clone)]
pub struct PackedProbe {
    query_is_aggregate: bool,
    /// Sorted, deduplicated query residual tokens that fit the packed
    /// width. Query-only tokens above `u32::MAX` (the interner's
    /// `UNKNOWN_TOKEN`) can never equal a view token, so dropping them
    /// leaves the subset test exact.
    res_tokens: Vec<u32>,
    /// `(table id, occurrence count)` of the query, ascending by table.
    tables: Vec<(u32, u32)>,
}

impl PackedProbe {
    /// Build a probe from the query's sorted residual tokens and its
    /// occurrences-by-table grouping.
    pub fn new(
        query_is_aggregate: bool,
        q_res_tokens: &[u64],
        q_by_table: &[(TableId, Vec<OccId>)],
    ) -> PackedProbe {
        let mut res_tokens: Vec<u32> = q_res_tokens
            .iter()
            .filter(|&&t| t <= u32::MAX as u64)
            .map(|&t| t as u32)
            .collect();
        res_tokens.sort_unstable();
        res_tokens.dedup();
        PackedProbe {
            query_is_aggregate,
            res_tokens,
            tables: q_by_table
                .iter()
                .map(|(t, occs)| (t.0, occs.len() as u32))
                .collect(),
        }
    }
}

/// The match-visible catalog as a segmented arena: per-view descriptors
/// packed into contiguous sorted slices addressed by `(offset, len)`
/// spans, scanned branch-light by the candidate prefilter, plus the cold
/// `Arc`'d descriptors for survivors.
///
/// Segments hold [`SEG_VIEWS`] views each and are shared behind `Arc`:
/// cloning the catalog (which every snapshot publication does) bumps one
/// refcount per segment, and registering a view copy-on-writes only the
/// unsealed tail segment — bounded work however many views precede it.
#[derive(Debug, Clone, Default)]
pub struct PackedCatalog {
    segs: Vec<Arc<PackedSegment>>,
    len: usize,
}

impl PackedCatalog {
    /// An empty catalog.
    pub fn new() -> PackedCatalog {
        PackedCatalog::default()
    }

    /// Number of packed views (slots of removed views stay reserved,
    /// mirroring [`mv_plan::ViewSet`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no view has been packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn locate(&self, id: ViewId) -> (usize, usize) {
        let i = id.0 as usize;
        assert!(i < self.len, "view {id} out of packed-catalog range");
        (i / SEG_VIEWS, i % SEG_VIEWS)
    }

    /// Pack the next view (its id must be the current `len`). Appends to
    /// the tail segment, copy-on-writing it if a published snapshot still
    /// shares it.
    pub fn push(&mut self, pv: Arc<PreparedView>, expr: &SpjgExpr) {
        if self.len.is_multiple_of(SEG_VIEWS) {
            self.segs.push(Arc::new(PackedSegment::default()));
        }
        let seg = self.segs.last_mut().expect("segment pushed above");
        Arc::make_mut(seg).push_view(pv, expr);
        self.len += 1;
    }

    /// The cold descriptor of `id`.
    pub fn prepared(&self, id: ViewId) -> &Arc<PreparedView> {
        let (s, i) = self.locate(id);
        &self.segs[s].prepared[i]
    }

    /// Run the packed prechecks for candidate `id` against a query probe:
    /// aggregation compatibility, table correspondence (occurrence counts
    /// included), the §3.2 edge-less-extra rejection, and the residual
    /// token subset test — pure sorted-slice scans, no allocation, no
    /// descriptor access. `false` is definitive: the full matcher would
    /// reject the candidate too.
    pub fn precheck(&self, id: ViewId, probe: &PackedProbe) -> bool {
        let (s, i) = self.locate(id);
        let seg = &*self.segs[s];
        let r = &seg.recs[i];
        if r.is_agg && !probe.query_is_aggregate {
            return false;
        }
        let lo = r.tbl_off as usize;
        let hi = lo + r.tbl_len as usize;
        let vt = &seg.tables[lo..hi];
        let vc = &seg.occ_counts[lo..hi];
        let vf = &seg.fk_free[lo..hi];
        let q = &probe.tables;
        let mut qi = 0;
        for k in 0..vt.len() {
            if qi < q.len() && q[qi].0 < vt[k] {
                // A query table the view lacks entirely.
                return false;
            }
            if qi < q.len() && q[qi].0 == vt[k] {
                // Enough view occurrences to host the query's, and no
                // more edge-less occurrences than the query can absorb.
                if vc[k] < q[qi].1 || vf[k] > q[qi].1 {
                    return false;
                }
                qi += 1;
            } else if vf[k] > 0 {
                // Extra table with an edge-less occurrence: no mapping
                // can eliminate it.
                return false;
            }
        }
        if qi < q.len() {
            return false;
        }
        let res = &seg.res_tokens[r.res_off as usize..(r.res_off + r.res_len) as usize];
        sorted_subset(res, &probe.res_tokens)
    }

    /// Residual tokens of `id` as stored (sorted, deduplicated).
    pub fn residual_tokens(&self, id: ViewId) -> &[u32] {
        let (s, i) = self.locate(id);
        let seg = &*self.segs[s];
        let r = &seg.recs[i];
        &seg.res_tokens[r.res_off as usize..(r.res_off + r.res_len) as usize]
    }

    /// `(table, occurrence count, edge-less count)` triples of `id`,
    /// ascending by table.
    pub fn table_counts(&self, id: ViewId) -> impl Iterator<Item = (TableId, u32, u32)> + '_ {
        let (s, i) = self.locate(id);
        let seg = &*self.segs[s];
        let r = &seg.recs[i];
        let lo = r.tbl_off as usize;
        let hi = lo + r.tbl_len as usize;
        (lo..hi).map(move |k| (TableId(seg.tables[k]), seg.occ_counts[k], seg.fk_free[k]))
    }

    /// Base-qualified equivalence-class column tokens of `id` (sorted,
    /// deduplicated; `engine::col_token` encoding).
    pub fn ec_cols(&self, id: ViewId) -> &[u64] {
        let (s, i) = self.locate(id);
        let seg = &*self.segs[s];
        let r = &seg.recs[i];
        &seg.ec_cols[r.ec_off as usize..(r.ec_off + r.ec_len) as usize]
    }

    /// Base-qualified range-constrained column tokens of `id` (sorted,
    /// deduplicated).
    pub fn range_cols(&self, id: ViewId) -> &[u64] {
        let (s, i) = self.locate(id);
        let seg = &*self.segs[s];
        let r = &seg.recs[i];
        &seg.rng_cols[r.rng_off as usize..(r.rng_off + r.rng_len) as usize]
    }

    /// Bytes reserved by the packed arenas across all segments (record
    /// table, token/table/count pages — not the cold descriptors).
    pub fn arena_bytes(&self) -> usize {
        self.segs.iter().map(|s| s.arena_bytes()).sum()
    }

    /// Validate every span invariant of `id` without touching the slices:
    /// spans in bounds, parallel arenas consistent, packed sets strictly
    /// ascending, occurrence counts sane. `Err` describes the first
    /// violation — `mv-audit` turns it into an `MV105` finding.
    pub fn validate_spans(&self, id: ViewId) -> Result<(), String> {
        let i = id.0 as usize;
        if i >= self.len {
            return Err(format!("view {id} beyond packed length {}", self.len));
        }
        let seg = &*self.segs[i / SEG_VIEWS];
        let r = &seg.recs[i % SEG_VIEWS];
        let span =
            |off: u32, len: u32, arena: usize, what: &str| -> Result<(usize, usize), String> {
                let end = off as u64 + len as u64;
                if end > arena as u64 {
                    return Err(format!(
                        "{what} span [{off}, {end}) of {id} exceeds arena length {arena}"
                    ));
                }
                Ok((off as usize, end as usize))
            };
        let (rl, rh) = span(r.res_off, r.res_len, seg.res_tokens.len(), "residual-token")?;
        if !seg.res_tokens[rl..rh].windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("residual tokens of {id} not strictly ascending"));
        }
        let (tl, th) = span(r.tbl_off, r.tbl_len, seg.tables.len(), "table")?;
        span(
            r.tbl_off,
            r.tbl_len,
            seg.occ_counts.len(),
            "occurrence-count",
        )?;
        span(r.tbl_off, r.tbl_len, seg.fk_free.len(), "edge-less-count")?;
        if !seg.tables[tl..th].windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("tables of {id} not strictly ascending"));
        }
        for k in tl..th {
            if seg.occ_counts[k] == 0 {
                return Err(format!(
                    "table {} of {id} has zero occurrences",
                    seg.tables[k]
                ));
            }
            if seg.fk_free[k] > seg.occ_counts[k] {
                return Err(format!(
                    "table {} of {id} has more edge-less than total occurrences",
                    seg.tables[k]
                ));
            }
        }
        let (el, eh) = span(r.ec_off, r.ec_len, seg.ec_cols.len(), "equivalence-column")?;
        if !seg.ec_cols[el..eh].windows(2).all(|w| w[0] < w[1]) {
            return Err(format!(
                "equivalence columns of {id} not strictly ascending"
            ));
        }
        let (gl, gh) = span(r.rng_off, r.rng_len, seg.rng_cols.len(), "range-column")?;
        if !seg.rng_cols[gl..gh].windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("range columns of {id} not strictly ascending"));
        }
        Ok(())
    }

    /// Corruption hook for the `mv-audit` test suite: point the
    /// residual-token span of `id` past the end of its arena. Never call
    /// outside tests.
    #[doc(hidden)]
    pub fn corrupt_span_for_audit(&mut self, id: ViewId) {
        let (s, i) = self.locate(id);
        let seg = Arc::make_mut(&mut self.segs[s]);
        seg.recs[i].res_off = seg.res_tokens.len() as u32 + 1;
        seg.recs[i].res_len = 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};
    use mv_plan::NamedExpr;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn descriptor_precomputes_canonical_forms() {
        let (cat, t) = tpch_catalog();
        // lineitem ⋈ orders on l_orderkey = o_orderkey, with a range.
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(1, 3)), CmpOp::Lt, S::lit(100i64)),
        ]);
        let expr = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let summary = ExprSummary::analyze(&expr);
        let pv =
            PreparedView::prepare(&cat, &MatchConfig::default(), &expr, summary, vec![9, 3, 3]);
        assert_eq!(pv.nontrivial_ecs, vec![vec![cr(0, 0), cr(1, 0)]]);
        assert_eq!(pv.ranges.len(), 1);
        assert_eq!(pv.residual_tokens, vec![3, 3, 9], "tokens sorted");
        // orders is the target of lineitem's FK edge; lineitem has no
        // incoming edge.
        assert_eq!(pv.fk_incoming, vec![false, true]);
        // by_table sorted by table id, whatever the FROM order.
        let flipped = SpjgExpr::spj(
            vec![t.orders, t.lineitem],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let by_table = occurrences_by_table(&flipped);
        assert!(by_table.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(by_table.len(), 2);
    }

    #[test]
    fn self_join_occurrences_grouped() {
        let (_, t) = tpch_catalog();
        let expr = SpjgExpr::spj(
            vec![t.part, t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let by_table = occurrences_by_table(&expr);
        assert_eq!(by_table.len(), 1);
        assert_eq!(by_table[0].1, vec![OccId(0), OccId(1)]);
    }

    #[test]
    fn sorted_kernels() {
        assert!(sorted_subset(&[], &[]));
        assert!(sorted_subset(&[], &[1, 2]));
        assert!(sorted_subset(&[2], &[1, 2, 3]));
        assert!(sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(sorted_subset(&[3, 3], &[3, 9]), "set semantics with dups");
        assert!(!sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(!sorted_subset(&[0], &[1]));
        assert!(!sorted_subset(&[1], &[]));
        assert!(!sorted_intersects(&[], &[1]));
        assert!(!sorted_intersects(&[1, 3], &[2, 4]));
        assert!(sorted_intersects(&[1, 5], &[5]));
        assert!(sorted_intersects(&[7, 9], &[2, 9, 11]));
    }

    fn pack_one(expr: &SpjgExpr, residual_tokens: Vec<u64>) -> PackedCatalog {
        let (cat, _) = tpch_catalog();
        let summary = ExprSummary::analyze(expr);
        let pv = PreparedView::prepare(
            &cat,
            &MatchConfig::default(),
            expr,
            summary,
            residual_tokens,
        );
        let mut packed = PackedCatalog::new();
        packed.push(Arc::new(pv), expr);
        packed
    }

    #[test]
    fn packed_layout_mirrors_descriptor() {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(1, 3)), CmpOp::Lt, S::lit(100i64)),
        ]);
        let expr = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let packed = pack_one(&expr, vec![9, 3, 3]);
        let id = ViewId(0);
        assert_eq!(packed.len(), 1);
        assert_eq!(packed.residual_tokens(id), &[3, 9], "sorted, deduplicated");
        let tables: Vec<_> = packed.table_counts(id).collect();
        assert_eq!(tables.len(), 2);
        assert!(tables.windows(2).all(|w| w[0].0 < w[1].0));
        // lineitem's occurrence has no incoming FK edge; orders' does.
        let lineitem = tables.iter().find(|(tt, _, _)| *tt == t.lineitem).unwrap();
        let orders = tables.iter().find(|(tt, _, _)| *tt == t.orders).unwrap();
        assert_eq!((lineitem.1, lineitem.2), (1, 1));
        assert_eq!((orders.1, orders.2), (1, 0));
        // One equivalence class of two columns, one range class.
        assert_eq!(packed.ec_cols(id).len(), 2);
        assert_eq!(packed.range_cols(id).len(), 1);
        assert!(packed.validate_spans(id).is_ok());
        assert!(packed.arena_bytes() > 0);
    }

    #[test]
    fn precheck_mirrors_cheap_rejections() {
        let (_, t) = tpch_catalog();
        let expr = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let packed = pack_one(&expr, vec![5]);
        let id = ViewId(0);
        let part_q = vec![(t.part, vec![OccId(0)])];
        // Residual tokens covered → pass.
        assert!(packed.precheck(id, &PackedProbe::new(false, &[5, 8], &part_q)));
        // View token missing from the query → reject.
        assert!(!packed.precheck(id, &PackedProbe::new(false, &[8], &part_q)));
        // Unknown query-side tokens above u32::MAX are dropped harmlessly.
        assert!(packed.precheck(id, &PackedProbe::new(false, &[5, u64::MAX], &part_q)));
        // Query table the view lacks → reject.
        let orders_q = vec![(t.orders, vec![OccId(0)])];
        assert!(!packed.precheck(id, &PackedProbe::new(false, &[5], &orders_q)));
        // Self-join query needs two part occurrences, view has one.
        let selfjoin_q = vec![(t.part, vec![OccId(0), OccId(1)])];
        assert!(!packed.precheck(id, &PackedProbe::new(false, &[5], &selfjoin_q)));

        // An aggregation view can never answer an SPJ query.
        let agg = SpjgExpr::aggregate(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
            vec![mv_plan::NamedAgg::new(mv_plan::AggFunc::CountStar, "cnt")],
        );
        let packed_agg = pack_one(&agg, vec![]);
        assert!(!packed_agg.precheck(ViewId(0), &PackedProbe::new(false, &[], &part_q)));
        assert!(packed_agg.precheck(ViewId(0), &PackedProbe::new(true, &[], &part_q)));

        // View lineitem ⋈ orders: lineitem's occurrence has no incoming FK
        // edge, so a query over orders alone (leaving lineitem as an
        // extra) can never eliminate it — rejected by the packed scan.
        let join = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let packed_join = pack_one(&join, vec![]);
        let orders_only = vec![(t.orders, vec![OccId(0)])];
        assert!(!packed_join.precheck(ViewId(0), &PackedProbe::new(false, &[], &orders_only)));
        // The mirror query over lineitem leaves orders extra, which *does*
        // have an incoming cardinality-preserving edge: precheck passes.
        let lineitem_only = vec![(t.lineitem, vec![OccId(0)])];
        assert!(packed_join.precheck(ViewId(0), &PackedProbe::new(false, &[], &lineitem_only)));
    }

    #[test]
    fn corrupted_span_fails_validation() {
        let (_, t) = tpch_catalog();
        let expr = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let mut packed = pack_one(&expr, vec![1, 2]);
        assert!(packed.validate_spans(ViewId(0)).is_ok());
        packed.corrupt_span_for_audit(ViewId(0));
        let err = packed.validate_spans(ViewId(0)).unwrap_err();
        assert!(err.contains("exceeds arena length"), "{err}");
    }

    #[test]
    fn segments_seal_and_share() {
        let (_, t) = tpch_catalog();
        let expr = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let (cat, _) = tpch_catalog();
        let pv = Arc::new(PreparedView::prepare(
            &cat,
            &MatchConfig::default(),
            &expr,
            ExprSummary::analyze(&expr),
            vec![],
        ));
        let mut packed = PackedCatalog::new();
        for _ in 0..SEG_VIEWS + 2 {
            packed.push(Arc::clone(&pv), &expr);
        }
        assert_eq!(packed.len(), SEG_VIEWS + 2);
        assert_eq!(packed.segs.len(), 2);
        // A clone shares both segments; pushing into the clone leaves the
        // original untouched (copy-on-write of the tail only).
        let mut clone = packed.clone();
        assert!(Arc::ptr_eq(&packed.segs[0], &clone.segs[0]));
        clone.push(Arc::clone(&pv), &expr);
        assert!(
            Arc::ptr_eq(&packed.segs[0], &clone.segs[0]),
            "sealed segment stays shared"
        );
        assert!(
            !Arc::ptr_eq(&packed.segs[1], &clone.segs[1]),
            "tail copied on write"
        );
        assert_eq!(packed.len(), SEG_VIEWS + 2);
        assert_eq!(clone.len(), SEG_VIEWS + 3);
        assert!(clone.validate_spans(ViewId(SEG_VIEWS as u32 + 2)).is_ok());
    }
}
