//! Instrumentation counters for the view-matching rule.
//!
//! Section 5 of the paper reports, besides wall-clock optimization time:
//! the fraction of views surviving the filter tree (< 0.4 % on their
//! workload), the fraction of candidates that produce substitutes (15-20 %),
//! substitutes per invocation, and invocations per query. These counters
//! let the benchmark harness reproduce every one of those numbers.

use mv_parallel::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters accumulated by a [`crate::MatchingEngine`].
#[derive(Debug, Default, Clone)]
pub struct MatchStats {
    /// Number of invocations of the view-matching rule (i.e. calls to
    /// `find_substitutes` on an acceptable expression).
    pub invocations: u64,
    /// Total candidate views that survived filtering, summed over
    /// invocations.
    pub candidates: u64,
    /// Total views registered at the time of each invocation, summed over
    /// invocations (denominator for the candidate fraction).
    pub views_available: u64,
    /// Candidate views that passed the full tests and produced a
    /// substitute.
    pub substitutes: u64,
    /// Time spent searching the filter tree.
    pub filter_time: Duration,
    /// Total time spent inside the view-matching rule (filtering plus
    /// checking plus substitute construction).
    pub match_time: Duration,
    /// `find_substitutes` calls answered from the substitute cache.
    pub cache_hits: u64,
    /// `find_substitutes` calls that probed an enabled cache and had to
    /// compute (includes stale hits, which recompute too).
    pub cache_misses: u64,
    /// Cached entries discarded because a table epoch moved past them (a
    /// view or constraint over some table they touch was added or removed
    /// since they were stored).
    pub cache_invalidations: u64,
    /// Views registered (`add_view`/`add_views`) since the last reset.
    pub registrations: u64,
    /// Views dropped (`remove_view`) since the last reset.
    pub removals: u64,
}

impl MatchStats {
    /// Average fraction of views that survive the filter tree (the paper
    /// reports 0.29 % at 100 views and 0.36 % at 1000).
    pub fn candidate_fraction(&self) -> f64 {
        if self.views_available == 0 {
            0.0
        } else {
            self.candidates as f64 / self.views_available as f64
        }
    }

    /// Fraction of candidates that pass the detailed tests (the paper
    /// reports 15-20 %).
    pub fn pass_fraction(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.substitutes as f64 / self.candidates as f64
        }
    }

    /// Substitutes produced per invocation (0.04 at 100 views rising to
    /// 0.59 at 1000 in the paper).
    pub fn substitutes_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.substitutes as f64 / self.invocations as f64
        }
    }

    /// Fraction of cache probes answered from the cache
    /// (hits / (hits + misses)); 0 when the cache was never probed.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &MatchStats) {
        self.invocations += other.invocations;
        self.candidates += other.candidates;
        self.views_available += other.views_available;
        self.substitutes += other.substitutes;
        self.filter_time += other.filter_time;
        self.match_time += other.match_time;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.registrations += other.registrations;
        self.removals += other.removals;
    }
}

/// Lock-free accumulator behind [`crate::MatchingEngine`]'s shared-state
/// counters. Every field is a relaxed [`AtomicU64`] (durations in
/// nanoseconds), so concurrent `find_substitutes` calls from many threads
/// record without contention and totals always add up exactly; a
/// [`MatchStats`] value is materialized on demand by [`snapshot`].
///
/// Relaxed ordering is sufficient: the counters are statistics, not
/// synchronization — no other memory access is ordered by them, and
/// per-counter totals are exact regardless of interleaving.
///
/// [`snapshot`]: AtomicMatchStats::snapshot
#[derive(Debug, Default)]
pub struct AtomicMatchStats {
    invocations: AtomicU64,
    candidates: AtomicU64,
    views_available: AtomicU64,
    substitutes: AtomicU64,
    filter_nanos: AtomicU64,
    match_nanos: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_invalidations: AtomicU64,
    registrations: AtomicU64,
    removals: AtomicU64,
}

impl AtomicMatchStats {
    /// Record one `find_substitutes` invocation.
    pub fn record(
        &self,
        candidates: usize,
        views_available: usize,
        substitutes: usize,
        filter_time: Duration,
        match_time: Duration,
    ) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.candidates
            .fetch_add(candidates as u64, Ordering::Relaxed);
        self.views_available
            .fetch_add(views_available as u64, Ordering::Relaxed);
        self.substitutes
            .fetch_add(substitutes as u64, Ordering::Relaxed);
        self.filter_nanos
            .fetch_add(filter_time.as_nanos() as u64, Ordering::Relaxed);
        self.match_nanos
            .fetch_add(match_time.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a substitute-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a substitute-cache miss (probed, had to compute).
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a stale cached entry discarded by epoch invalidation.
    pub fn record_cache_invalidation(&self) {
        self.cache_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` view registrations.
    pub fn record_registrations(&self, n: usize) {
        self.registrations.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record one view removal.
    pub fn record_removal(&self) {
        self.removals.fetch_add(1, Ordering::Relaxed);
    }

    /// Materialize the counters as a plain [`MatchStats`] value.
    pub fn snapshot(&self) -> MatchStats {
        MatchStats {
            invocations: self.invocations.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            views_available: self.views_available.load(Ordering::Relaxed),
            substitutes: self.substitutes.load(Ordering::Relaxed),
            filter_time: Duration::from_nanos(self.filter_nanos.load(Ordering::Relaxed)),
            match_time: Duration::from_nanos(self.match_nanos.load(Ordering::Relaxed)),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            registrations: self.registrations.load(Ordering::Relaxed),
            removals: self.removals.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.invocations.store(0, Ordering::Relaxed);
        self.candidates.store(0, Ordering::Relaxed);
        self.views_available.store(0, Ordering::Relaxed);
        self.substitutes.store(0, Ordering::Relaxed);
        self.filter_nanos.store(0, Ordering::Relaxed);
        self.match_nanos.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_invalidations.store(0, Ordering::Relaxed);
        self.registrations.store(0, Ordering::Relaxed);
        self.removals.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let s = MatchStats {
            invocations: 10,
            candidates: 40,
            views_available: 10_000,
            substitutes: 8,
            ..Default::default()
        };
        assert!((s.candidate_fraction() - 0.004).abs() < 1e-12);
        assert!((s.pass_fraction() - 0.2).abs() < 1e-12);
        assert!((s.substitutes_per_invocation() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let s = MatchStats::default();
        assert_eq!(s.candidate_fraction(), 0.0);
        assert_eq!(s.pass_fraction(), 0.0);
        assert_eq!(s.substitutes_per_invocation(), 0.0);
    }

    #[test]
    fn atomic_record_and_snapshot_round_trip() {
        let a = AtomicMatchStats::default();
        a.record(
            3,
            100,
            1,
            Duration::from_micros(5),
            Duration::from_micros(9),
        );
        a.record(
            7,
            100,
            2,
            Duration::from_micros(1),
            Duration::from_micros(2),
        );
        let s = a.snapshot();
        assert_eq!(s.invocations, 2);
        assert_eq!(s.candidates, 10);
        assert_eq!(s.views_available, 200);
        assert_eq!(s.substitutes, 3);
        assert_eq!(s.filter_time, Duration::from_micros(6));
        assert_eq!(s.match_time, Duration::from_micros(11));
        a.reset();
        assert_eq!(a.snapshot().invocations, 0);
        assert_eq!(a.snapshot().match_time, Duration::ZERO);
    }

    #[test]
    fn atomic_totals_add_up_across_threads() {
        let a = AtomicMatchStats::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        a.record(2, 5, 1, Duration::from_nanos(10), Duration::from_nanos(20));
                    }
                });
            }
        });
        let s = a.snapshot();
        assert_eq!(s.invocations, 8000);
        assert_eq!(s.candidates, 16_000);
        assert_eq!(s.substitutes, 8000);
        assert_eq!(s.filter_time, Duration::from_nanos(80_000));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MatchStats {
            invocations: 1,
            candidates: 2,
            views_available: 3,
            substitutes: 4,
            filter_time: Duration::from_millis(5),
            match_time: Duration::from_millis(6),
            cache_hits: 7,
            cache_misses: 8,
            cache_invalidations: 9,
            registrations: 10,
            removals: 11,
        };
        a.merge(&a.clone());
        assert_eq!(a.invocations, 2);
        assert_eq!(a.candidates, 4);
        assert_eq!(a.views_available, 6);
        assert_eq!(a.substitutes, 8);
        assert_eq!(a.filter_time, Duration::from_millis(10));
        assert_eq!(a.cache_hits, 14);
        assert_eq!(a.cache_misses, 16);
        assert_eq!(a.cache_invalidations, 18);
        assert_eq!(a.registrations, 20);
        assert_eq!(a.removals, 22);
    }

    #[test]
    fn cache_counters_record_and_hit_rate() {
        let a = AtomicMatchStats::default();
        assert_eq!(a.snapshot().cache_hit_rate(), 0.0, "no probes yet");
        for _ in 0..3 {
            a.record_cache_hit();
        }
        a.record_cache_miss();
        a.record_cache_invalidation();
        let s = a.snapshot();
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_invalidations, 1);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        a.reset();
        let z = a.snapshot();
        assert_eq!(z.cache_hits, 0);
        assert_eq!(z.cache_misses, 0);
        assert_eq!(z.cache_invalidations, 0);
    }
}
