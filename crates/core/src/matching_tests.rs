//! Unit tests for the matcher, centered on the paper's worked examples.

use crate::matching::{match_view, MatchConfig};
use crate::summary::ExprSummary;
use mv_catalog::tpch::{tpch_catalog, TpchTables};
use mv_catalog::{Catalog, Value};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewDef, ViewId};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn try_match_pair(
    catalog: &Catalog,
    config: &MatchConfig,
    query: &SpjgExpr,
    view: &SpjgExpr,
) -> Option<Substitute> {
    let qsum = ExprSummary::analyze(query);
    let vdef = ViewDef::new("v", view.clone());
    let vsum = ExprSummary::analyze(view);
    match_view(catalog, config, query, &qsum, ViewId(0), &vdef, &vsum)
}

fn out(cols: &[(u32, u32, &str)]) -> Vec<NamedExpr> {
    cols.iter()
        .map(|&(o, c, n)| NamedExpr::new(S::col(cr(o, c)), n))
        .collect()
}

// lineitem column indices used below:
//   0 l_orderkey, 1 l_partkey, 4 l_quantity, 5 l_extendedprice,
//   10 l_shipdate, 11 l_commitdate
// orders: 0 o_orderkey, 1 o_custkey, 4 o_orderdate
// part:   0 p_partkey, 1 p_name, 5 p_size

/// Paper Example 2 setup. Query and view over lineitem(0), orders(1),
/// part(2).
fn example2(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    // View: l_orderkey = o_orderkey, l_partkey = p_partkey,
    //       p_partkey > 150, 50 < o_custkey < 500, p_name like '%abc%'.
    let view_pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::col_eq(cr(0, 1), cr(2, 0)),
        BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Gt, S::lit(150i64)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Gt, S::lit(50i64)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Lt, S::lit(500i64)),
        BoolExpr::Like {
            expr: S::col(cr(2, 1)),
            pattern: "%abc%".into(),
            negated: false,
        },
    ]);
    // The view outputs everything the compensations and the query need.
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.part],
        view_pred,
        out(&[
            (0, 0, "l_orderkey"),
            (0, 1, "l_partkey"),
            (1, 1, "o_custkey"),
            (1, 4, "o_orderdate"),
            (0, 10, "l_shipdate"),
            (0, 4, "l_quantity"),
            (0, 5, "l_extendedprice"),
        ]),
    );
    // Query: same joins, plus o_orderdate = l_shipdate,
    // 150 < {p,l}_partkey < 160, o_custkey = 123, p_name like '%abc%',
    // l_quantity * l_extendedprice > 100.
    let query_pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::col_eq(cr(0, 1), cr(2, 0)),
        BoolExpr::col_eq(cr(1, 4), cr(0, 10)),
        BoolExpr::cmp(S::col(cr(2, 0)), CmpOp::Gt, S::lit(150i64)),
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(160i64)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Eq, S::lit(123i64)),
        BoolExpr::Like {
            expr: S::col(cr(2, 1)),
            pattern: "%abc%".into(),
            negated: false,
        },
        BoolExpr::cmp(
            S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5))),
            CmpOp::Gt,
            S::lit(100i64),
        ),
    ]);
    let query = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.part],
        query_pred,
        out(&[(0, 0, "l_orderkey"), (0, 1, "l_partkey")]),
    );
    (query, view)
}

#[test]
fn example2_matches_with_expected_compensations() {
    let (cat, t) = tpch_catalog();
    let (query, view) = example2(&t);
    let sub =
        try_match_pair(&cat, &MatchConfig::default(), &query, &view).expect("Example 2 must match");
    // Expected compensations: o_orderdate = l_shipdate, partkey < 160,
    // o_custkey = 123, l_quantity * l_extendedprice > 100. The LIKE and
    // the lower partkey bound are already enforced by the view.
    assert_eq!(sub.predicates.len(), 4, "{:#?}", sub.predicates);
    let texts: Vec<String> = sub.predicates.iter().map(|p| p.to_string()).collect();
    // Equality between the view's o_orderdate (pos 3) and l_shipdate (pos 4).
    assert!(
        texts
            .iter()
            .any(|s| s.contains("t0.c3 = t0.c4") || s.contains("t0.c4 = t0.c3")),
        "{texts:?}"
    );
    // Upper bound on partkey: view outputs l_partkey at position 1.
    assert!(texts.iter().any(|s| s.contains("t0.c1 < 160")), "{texts:?}");
    // Point restriction on o_custkey (pos 2).
    assert!(texts.iter().any(|s| s.contains("t0.c2 = 123")), "{texts:?}");
    // Residual compensation over l_quantity (pos 5) * l_extendedprice (6).
    assert!(
        texts
            .iter()
            .any(|s| s.contains("c5") && s.contains("c6") && s.contains("> 100")),
        "{texts:?}"
    );
    // Output mapping: l_orderkey -> pos 0, l_partkey -> pos 1.
    match &sub.output {
        OutputList::Spj(items) => {
            assert_eq!(items[0].expr, S::col(cr(0, 0)));
            assert_eq!(items[1].expr, S::col(cr(0, 1)));
        }
        other => panic!("expected SPJ output, got {other:?}"),
    }
}

#[test]
fn example2_rejected_when_view_range_too_narrow() {
    let (cat, t) = tpch_catalog();
    let (query, mut view) = example2(&t);
    // Narrow the view's o_custkey range so it no longer contains the
    // query's point 123: change (50, 500) to (200, 500).
    for conj in &mut view.conjuncts {
        if let mv_expr::Conjunct::Range {
            op: CmpOp::Gt,
            value,
            ..
        } = conj
        {
            if *value == Value::Int(50) {
                *value = Value::Int(200);
            }
        }
    }
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn view_with_extra_residual_rejected() {
    let (cat, t) = tpch_catalog();
    let (query, mut view) = example2(&t);
    // Add a residual predicate to the view that the query lacks: the view
    // may now be missing rows the query needs.
    view.conjuncts
        .push(mv_expr::Conjunct::Residual(BoolExpr::Like {
            expr: S::col(cr(2, 1)),
            pattern: "%xyz%".into(),
            negated: false,
        }));
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn view_with_conflicting_equivalence_rejected() {
    let (cat, t) = tpch_catalog();
    // View equates l_shipdate = l_commitdate; query does not: the view
    // fails the equijoin subsumption test.
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::col_eq(cr(0, 10), cr(0, 11)),
        out(&[(0, 0, "l_orderkey")]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[(0, 0, "l_orderkey")]),
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
    // The other direction works, with a compensating equality predicate —
    // provided the view outputs both columns.
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 10, "l_shipdate"),
            (0, 11, "l_commitdate"),
        ]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::col_eq(cr(0, 10), cr(0, 11)),
        out(&[(0, 0, "l_orderkey")]),
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    assert_eq!(sub.predicates.len(), 1);
    assert_eq!(sub.predicates[0].to_string(), "t0.c1 = t0.c2");
}

/// Example 3: a query over lineitem answered by a view that additionally
/// joins orders and customer through cardinality-preserving joins.
fn example3(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    // View v3: lineitem(0), orders(1), customer(2);
    //   l_orderkey = o_orderkey AND o_custkey = c_custkey AND o_orderkey >= 500
    let view_pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::col_eq(cr(1, 1), cr(2, 0)),
        BoolExpr::cmp(S::col(cr(1, 0)), CmpOp::Ge, S::lit(500i64)),
    ]);
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders, t.customer],
        view_pred,
        out(&[
            (2, 0, "c_custkey"),
            (2, 1, "c_name"),
            (0, 0, "l_orderkey"),
            (0, 1, "l_partkey"),
            (0, 4, "l_quantity"),
        ]),
    );
    // Query: lineitem only, l_orderkey between 1000 and 1500,
    //        l_shipdate = l_commitdate.
    let query_pred = BoolExpr::and(vec![
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(1000i64)),
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Le, S::lit(1500i64)),
        BoolExpr::col_eq(cr(0, 10), cr(0, 11)),
    ]);
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        query_pred,
        out(&[
            (0, 0, "l_orderkey"),
            (0, 1, "l_partkey"),
            (0, 4, "l_quantity"),
        ]),
    );
    (query, view)
}

#[test]
fn example3_rejected_because_shipdate_not_in_output() {
    // The paper's Example 3 concludes that although the extra tables are
    // eliminated and the subsumption tests pass, the compensating
    // predicate l_shipdate = l_commitdate cannot be applied because the
    // view outputs neither column — so the view is rejected.
    let (cat, t) = tpch_catalog();
    let (query, view) = example3(&t);
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn example3_matches_once_dates_are_output() {
    let (cat, t) = tpch_catalog();
    let (query, mut view) = example3(&t);
    if let OutputList::Spj(items) = &mut view.output {
        items.push(NamedExpr::new(S::col(cr(0, 10)), "l_shipdate"));
        items.push(NamedExpr::new(S::col(cr(0, 11)), "l_commitdate"));
    }
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view)
        .expect("extra tables eliminated through FK joins");
    let texts: Vec<String> = sub.predicates.iter().map(|p| p.to_string()).collect();
    // Compensations: l_orderkey in [1000, 1500] (the view only guarantees
    // >= 500) and the equality of the two dates.
    assert!(texts.iter().any(|s| s.contains(">= 1000")), "{texts:?}");
    assert!(texts.iter().any(|s| s.contains("<= 1500")), "{texts:?}");
    assert!(
        texts.iter().any(|s| s.contains("t0.c5 = t0.c6")),
        "{texts:?}"
    );
}

#[test]
fn extra_table_without_fk_join_rejected() {
    let (cat, t) = tpch_catalog();
    // View joins lineitem to orders on a non-key pair (no FK edge):
    // l_linenumber = o_shippriority is no cardinality-preserving join.
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 3), cr(1, 7)),
        out(&[(0, 0, "l_orderkey"), (0, 1, "l_partkey")]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[(0, 0, "l_orderkey")]),
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn view_with_filtered_extra_table_rejected() {
    let (cat, t) = tpch_catalog();
    // The view restricts the extra orders table (o_custkey < 100): the
    // join no longer preserves lineitem's cardinality *and* the range
    // subsumption test fails for the query's unconstrained range.
    let view_pred = BoolExpr::and(vec![
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Lt, S::lit(100i64)),
    ]);
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders],
        view_pred,
        out(&[(0, 0, "l_orderkey"), (0, 1, "l_partkey")]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[(0, 0, "l_orderkey"), (0, 1, "l_partkey")]),
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn aggregation_query_from_aggregation_view_with_rollup() {
    let (cat, t) = tpch_catalog();
    // View v4 (Example 4): SELECT o_custkey, count_big(*) cnt,
    //   sum(l_quantity * l_extendedprice) revenue
    // FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_custkey
    let revenue = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let view = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(revenue.clone()), "revenue"),
        ],
    );
    // Inner query of Example 4 (after the optimizer's pre-aggregation):
    // SELECT o_custkey, sum(l_quantity*l_extendedprice) FROM lineitem,
    // orders WHERE l_orderkey = o_orderkey GROUP BY o_custkey
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::Sum(revenue.clone()), "rev")],
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view)
        .expect("Example 4 inner query matches v4");
    assert!(sub.predicates.is_empty());
    // Same grouping: no re-aggregation, plain projection of custkey (0)
    // and revenue (2).
    match &sub.output {
        OutputList::Spj(items) => {
            assert_eq!(items.len(), 2);
            assert_eq!(items[0].expr, S::col(cr(0, 0)));
            assert_eq!(items[1].expr, S::col(cr(0, 2)));
        }
        other => panic!("expected projection, got {other:?}"),
    }

    // Scalar roll-up: total revenue over everything needs re-aggregation.
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::Sum(revenue), "rev"),
            NamedAgg::new(AggFunc::CountStar, "n"),
        ],
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    match &sub.output {
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            assert!(group_by.is_empty());
            // sum(revenue) -> SUM(view col 2); count(*) -> SUM(view cnt col 1).
            assert_eq!(aggregates[0].func, AggFunc::Sum(S::col(cr(0, 2))));
            assert_eq!(aggregates[1].func, AggFunc::SumZero(S::col(cr(0, 1))));
        }
        other => panic!("expected re-aggregation, got {other:?}"),
    }
}

#[test]
fn spj_query_rejects_aggregate_view() {
    let (cat, t) = tpch_catalog();
    let view = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    let query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        out(&[(0, 1, "o_custkey")]),
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn aggregation_query_from_spj_view_groups_the_view() {
    let (cat, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
        out(&[
            (0, 1, "o_custkey"),
            (0, 3, "o_totalprice"),
            (0, 0, "o_orderkey"),
        ]),
    );
    let query = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(100i64)),
        vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
        ],
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    // Compensation narrows o_orderkey and the view is grouped directly.
    assert_eq!(sub.predicates.len(), 1);
    match &sub.output {
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            assert_eq!(group_by[0].expr, S::col(cr(0, 0)));
            assert_eq!(aggregates[0].func, AggFunc::CountStar);
            assert_eq!(aggregates[1].func, AggFunc::Sum(S::col(cr(0, 1))));
        }
        other => panic!("expected grouping, got {other:?}"),
    }
}

#[test]
fn query_grouping_not_subset_of_view_grouping_rejected() {
    let (cat, t) = tpch_catalog();
    // View groups by o_custkey; query groups by o_orderkey: not a subset.
    let view = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    let query = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn sum_without_matching_view_aggregate_rejected() {
    let (cat, t) = tpch_catalog();
    let view = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    // Query wants SUM(o_totalprice), which the view never aggregated.
    let query = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![],
        vec![NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total")],
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn output_expression_served_by_view_expression_column() {
    let (cat, t) = tpch_catalog();
    // View precomputes l_quantity * l_extendedprice as a column.
    let product = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "l_orderkey"),
            NamedExpr::new(product.clone(), "gross"),
        ],
    );
    // Query asks for the same expression: served by the view column even
    // though l_quantity and l_extendedprice are not output.
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(product, "gross")],
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    match &sub.output {
        OutputList::Spj(items) => assert_eq!(items[0].expr, S::col(cr(0, 1))),
        other => panic!("{other:?}"),
    }
    // A *different* expression over the same columns is rejected (the
    // source columns are not available either).
    let other = S::col(cr(0, 4)).binary(BinOp::Add, S::col(cr(0, 5)));
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(other, "x")],
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn output_expression_recomputed_from_columns() {
    let (cat, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[(0, 4, "l_quantity"), (0, 5, "l_extendedprice")]),
    );
    let product = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(product, "gross")],
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    match &sub.output {
        OutputList::Spj(items) => {
            // Recomputed over view columns 0 and 1.
            assert_eq!(
                items[0].expr,
                S::col(cr(0, 0)).binary(BinOp::Mul, S::col(cr(0, 1)))
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn output_column_rerouted_through_equivalence() {
    let (cat, t) = tpch_catalog();
    // View outputs o_orderkey but not l_orderkey; the query wants
    // l_orderkey, which is equivalent through the join predicate.
    let view = SpjgExpr::spj(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        out(&[(1, 0, "o_orderkey"), (0, 1, "l_partkey")]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        out(&[(0, 0, "l_orderkey")]),
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    match &sub.output {
        OutputList::Spj(items) => assert_eq!(items[0].expr, S::col(cr(0, 0))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn missing_source_table_rejected() {
    let (cat, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        out(&[(0, 0, "o_orderkey")]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[(0, 0, "l_orderkey")]),
    );
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
}

#[test]
fn nullable_fk_extension_example5() {
    use mv_catalog::schema::{ForeignKey, TableBuilder};
    use mv_catalog::{ColumnId, ColumnType};
    // T(a, f nullable) with FK f -> S(k unique, s).
    let mut cat = mv_catalog::Catalog::new();
    let tid = cat.add_table(
        TableBuilder::new("t")
            .col("a", ColumnType::Int)
            .nullable_col("f", ColumnType::Int)
            .primary_key(&["a"])
            .build(),
    );
    let sid = cat.add_table(
        TableBuilder::new("s")
            .col("k", ColumnType::Int)
            .col("s", ColumnType::Int)
            .primary_key(&["k"])
            .build(),
    );
    cat.add_foreign_key(ForeignKey {
        name: "t_f".into(),
        from_table: tid,
        from_columns: vec![ColumnId(1)],
        to_table: sid,
        to_columns: vec![ColumnId(0)],
    });
    // View: SELECT t.a, t.f FROM t, s WHERE t.f = s.k.
    let view = SpjgExpr::spj(
        vec![tid, sid],
        BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
        out(&[(0, 0, "a"), (0, 1, "f")]),
    );
    // Query: SELECT a FROM t WHERE f > 50 (null-rejecting on f).
    let query = SpjgExpr::spj(
        vec![tid],
        BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Gt, S::lit(50i64)),
        out(&[(0, 0, "a")]),
    );
    // Strict rule (the paper's prototype): rejected.
    assert!(try_match_pair(&cat, &MatchConfig::default(), &query, &view).is_none());
    // With the extension: accepted, compensating with f > 50.
    let config = MatchConfig {
        null_rejecting_fk: true,
        ..MatchConfig::default()
    };
    let sub = try_match_pair(&cat, &config, &query, &view).expect("Example 5 extension");
    assert_eq!(sub.predicates.len(), 1);
    assert!(sub.predicates[0].to_string().contains("> 50"));
    // Without a null-rejecting predicate in the query, still rejected.
    let query = SpjgExpr::spj(vec![tid], BoolExpr::Literal(true), out(&[(0, 0, "a")]));
    assert!(try_match_pair(&cat, &config, &query, &view).is_none());
}

#[test]
fn self_join_occurrence_mapping() {
    let (cat, t) = tpch_catalog();
    // View: nation n0, nation n1 joined through region keys, outputs both
    // names. Query: the same self-join. The matcher must find a valid
    // occurrence bijection.
    let pred = BoolExpr::col_eq(cr(0, 2), cr(1, 2)); // n0.regionkey = n1.regionkey
    let view = SpjgExpr::spj(
        vec![t.nation, t.nation],
        pred.clone(),
        out(&[(0, 1, "name_a"), (1, 1, "name_b"), (0, 0, "key_a")]),
    );
    let query = SpjgExpr::spj(
        vec![t.nation, t.nation],
        pred,
        out(&[(0, 0, "n_nationkey")]),
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view);
    assert!(sub.is_some());
}

#[test]
fn constant_output_copied() {
    let (cat, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.region],
        BoolExpr::Literal(true),
        out(&[(0, 0, "r_regionkey")]),
    );
    let query = SpjgExpr::spj(
        vec![t.region],
        BoolExpr::Literal(true),
        vec![
            NamedExpr::new(S::lit(42i64), "answer"),
            NamedExpr::new(S::col(cr(0, 0)), "r_regionkey"),
        ],
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &query, &view).unwrap();
    match &sub.output {
        OutputList::Spj(items) => assert_eq!(items[0].expr, S::lit(42i64)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn identical_expressions_match_exactly() {
    let (cat, t) = tpch_catalog();
    let e = SpjgExpr::spj(
        vec![t.part],
        BoolExpr::cmp(S::col(cr(0, 5)), CmpOp::Lt, S::lit(10i64)),
        out(&[(0, 0, "p_partkey"), (0, 5, "p_size")]),
    );
    let sub = try_match_pair(&cat, &MatchConfig::default(), &e, &e).unwrap();
    assert!(sub.is_filter_free());
}
