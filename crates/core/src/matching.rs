//! The view-matching tests of section 3 and substitute construction.
//!
//! Given a query SPJG block and one candidate view, [`match_view`] decides
//! whether the query can be computed from the view alone and, if so, builds
//! the [`Substitute`]. The pipeline follows the paper:
//!
//! 1. table correspondence (query tables ⊆ view tables, occurrence-aware),
//! 2. extra-table elimination through cardinality-preserving joins (§3.2),
//! 3. equijoin subsumption test + compensating equality predicates (§3.1.2,
//!    §3.1.3 type 1),
//! 4. range subsumption test + compensating range predicates (type 2),
//! 5. residual subsumption test + compensating residual predicates (type 3),
//! 6. output-expression mapping (§3.1.4) and aggregation handling (§3.3).

use crate::descriptor::{occurrences_by_table, PreparedView};
use crate::fkgraph::{build_fk_graph, eliminate};
use crate::summary::{remap_col, remap_template, ExprSummary};
use mv_catalog::{Catalog, TableId};
use mv_expr::{BoolExpr, ColRef, EquivClasses, Interval, OccId, ScalarExpr, Template};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewDef, ViewId};
use std::collections::HashMap;

/// Tunables for the matcher and the filter tree.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Enable the section 3.2 extension: a *nullable* foreign-key column
    /// still supports a cardinality-preserving join when the query carries
    /// a null-rejecting predicate on that column (Example 5). The paper's
    /// prototype left this unimplemented; we provide it behind this flag.
    pub null_rejecting_fk: bool,
    /// Enable the section 4.2.2 hub refinement: tables carrying a range or
    /// residual predicate on a column outside every non-trivial equivalence
    /// class stay in the hub, strengthening the hub filter condition.
    pub refined_hubs: bool,
    /// Use the filter tree to narrow candidates (section 4). With this off
    /// the engine checks every view — the "No Filter" series of Figure 2.
    pub use_filter_tree: bool,
    /// Upper bound on occurrence bijections tried for self-join table
    /// correspondence (factorial blow-up guard; the paper's workload never
    /// repeats a table, so one mapping is the overwhelmingly common case).
    pub max_table_mappings: usize,
    /// Enable base-table backjoins (the section 7 extension): when a view
    /// covers all tables and rows but lacks some columns, and it outputs a
    /// non-null unique key of one of its tables, the matcher may join the
    /// view back to that base table to pull the missing columns in.
    pub allow_backjoins: bool,
    /// Fold declared check constraints into the query's antecedent
    /// (section 3.1.2): a view predicate that is implied by a check
    /// constraint no longer blocks matching. Constraints are registered
    /// with [`crate::MatchingEngine::add_check_constraint`].
    pub use_check_constraints: bool,
    /// Keep the paper's conservative output/grouping-expression filter
    /// conditions (sections 4.2.7/4.2.8), which "ignore the possibility of
    /// computing an expression from scratch using plain columns": a query
    /// whose complex output expression could only be *recomputed* from a
    /// view's simple columns is filtered out before the full tests run,
    /// exactly as in the SQL Server prototype. Disable to drop those two
    /// conditions (weaker pruning, never misses a recomputable rewrite).
    pub strict_expression_filter: bool,
    /// Candidate count at or above which `find_substitutes` fans the
    /// per-candidate `match_view` loop out across threads. Below the
    /// threshold the loop stays serial: on the paper's workload the filter
    /// tree leaves a handful of candidates (< 0.4 % of views), where
    /// thread spawn costs more than the matching itself. Results are
    /// deterministic either way — substitutes come back ordered by
    /// [`mv_plan::ViewId`], byte-identical to the serial path. Set to
    /// `usize::MAX` to pin matching fully serial.
    pub parallel_threshold: usize,
    /// Worker cap for parallel matching and for
    /// `find_substitutes_batch`'s per-query fan-out. `0` (the default)
    /// means use the machine's available parallelism.
    pub parallel_workers: usize,
    /// Capacity (entries) of the fingerprint-keyed substitute cache on
    /// [`crate::MatchingEngine::find_substitutes`]: repeated query shapes
    /// skip the filter tree and the matching tests entirely and return the
    /// cached substitute list (output names re-stamped from the probing
    /// query). `0` disables the cache. Entries are invalidated lazily on
    /// view registration/removal via an engine epoch.
    pub substitute_cache_capacity: usize,
    /// Mutex stripes of the substitute cache; concurrent matchers only
    /// contend when their fingerprints share a stripe. Clamped to
    /// `[1, capacity]`.
    pub substitute_cache_shards: usize,
    /// Record wall-clock filter/match durations in [`crate::MatchStats`].
    /// With this off, `find_substitutes` performs zero clock reads — on
    /// the cached hot path the only work left is the fingerprint render
    /// and a shard probe.
    pub timing: bool,
}

impl MatchConfig {
    /// Workers to use for a candidate loop of `n_items`, honoring the
    /// threshold and cap; `1` means run serially. In auto mode
    /// (`parallel_workers == 0`) the fan-out is additionally sized so each
    /// worker gets at least [`MIN_CANDIDATES_PER_WORKER`] candidates —
    /// per-candidate matching runs a few microseconds, so a thinner split
    /// spends more on thread spawns than it saves (the bench trajectory
    /// recorded parallel *losing* to serial at 10k views for exactly this
    /// reason). An explicit worker count is honored as given.
    ///
    /// [`MIN_CANDIDATES_PER_WORKER`]: MatchConfig::MIN_CANDIDATES_PER_WORKER
    pub(crate) fn match_workers(&self, n_items: usize) -> usize {
        if n_items < self.parallel_threshold.max(2) {
            return 1;
        }
        let workers = self.batch_workers(n_items);
        if self.parallel_workers == 0 {
            // Auto mode falls back to serial whenever the fan-out cannot
            // pay for itself: a single effective worker (one core, or a
            // nested call from inside a batch worker) or a per-worker
            // share below the floor.
            let sized = workers.min(n_items / Self::MIN_CANDIDATES_PER_WORKER);
            if sized <= 1 {
                1
            } else {
                sized
            }
        } else {
            workers
        }
    }

    /// Smallest per-worker candidate share the auto-sized candidate-loop
    /// fan-out will accept (see [`MatchConfig::match_workers`]).
    pub const MIN_CANDIDATES_PER_WORKER: usize = 32;

    /// Workers for an unconditional fan-out over `n_items` (the batch
    /// entry point, which exists precisely to parallelize). In auto mode
    /// `mv_parallel::workers_for` already declines nested fan-outs and
    /// single-core machines, so a batch on one CPU runs the plain serial
    /// loop instead of paying per-call thread spawns for nothing.
    pub(crate) fn batch_workers(&self, n_items: usize) -> usize {
        if self.parallel_workers == 0 {
            mv_parallel::workers_for(n_items)
        } else {
            self.parallel_workers.min(n_items).max(1)
        }
    }
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            null_rejecting_fk: false,
            refined_hubs: true,
            use_filter_tree: true,
            max_table_mappings: 64,
            allow_backjoins: false,
            use_check_constraints: true,
            strict_expression_filter: true,
            parallel_threshold: 256,
            parallel_workers: 0,
            substitute_cache_capacity: 1024,
            substitute_cache_shards: 8,
            timing: true,
        }
    }
}

/// A query prepared for matching against many candidate views: the
/// expression, its predicate summary, and the occurrences grouped by base
/// table — computed once per `find_substitutes` instead of per candidate.
pub struct PreparedQuery<'a> {
    /// The query block.
    pub expr: &'a SpjgExpr,
    /// Its predicate analysis (with check constraints folded in, when the
    /// engine has any).
    pub summary: &'a ExprSummary,
    /// Occurrences grouped by base table, sorted by table id.
    pub by_table: Vec<(TableId, Vec<OccId>)>,
}

impl<'a> PreparedQuery<'a> {
    /// Prepare a query for a candidate loop.
    pub fn new(expr: &'a SpjgExpr, summary: &'a ExprSummary) -> PreparedQuery<'a> {
        PreparedQuery {
            expr,
            summary,
            by_table: occurrences_by_table(expr),
        }
    }
}

/// Decide whether `query` can be computed from `view` and build the
/// substitute. `qsum`/`vsum` are the precomputed predicate summaries.
///
/// Convenience wrapper over [`match_view_prepared`] that builds the
/// prepared forms on the fly; a candidate loop should prepare once and
/// call [`match_view_prepared`] directly.
pub fn match_view(
    catalog: &Catalog,
    config: &MatchConfig,
    query: &SpjgExpr,
    qsum: &ExprSummary,
    view_id: ViewId,
    view: &ViewDef,
    vsum: &ExprSummary,
) -> Option<Substitute> {
    let pq = PreparedQuery::new(query, qsum);
    let pv = PreparedView::prepare(catalog, config, &view.expr, vsum.clone(), Vec::new());
    match_view_prepared(catalog, config, &pq, view_id, view, &pv)
}

/// Decide whether the prepared query can be computed from the prepared
/// view and build the substitute.
pub fn match_view_prepared(
    catalog: &Catalog,
    config: &MatchConfig,
    pq: &PreparedQuery<'_>,
    view_id: ViewId,
    view: &ViewDef,
    pv: &PreparedView,
) -> Option<Substitute> {
    // An SPJ query cannot be computed from an aggregation view: the view
    // is "more aggregated" (section 3.3, requirement 3).
    if !pq.expr.is_aggregate() && view.expr.is_aggregate() {
        return None;
    }

    // Table correspondence: the query's table multiset must be a subset of
    // the view's (requirement: "There is no need to consider views with
    // fewer tables than the query").
    for (t, qoccs) in &pq.by_table {
        let available = pv
            .by_table
            .binary_search_by_key(t, |(vt, _)| *vt)
            .map(|i| pv.by_table[i].1.len())
            .unwrap_or(0);
        if available < qoccs.len() {
            return None;
        }
    }

    // Enumerate injective assignments of query occurrences to view
    // occurrences, per base table. With no self-joins this is a single
    // mapping. Both grouping lists are sorted by table id, so the
    // enumeration order — and therefore which of several valid mappings
    // wins — is deterministic.
    let mappings = enumerate_mappings(
        view.expr.tables.len(),
        &pq.by_table,
        &pv.by_table,
        config.max_table_mappings,
    );
    mappings
        .into_iter()
        .find_map(|assign| try_match(catalog, config, pq, view_id, view, pv, &assign))
}

/// Build all injective mappings `view occurrence -> query occurrence`
/// (as `assign[view_occ] = Some(query_occ)`, `None` = extra table).
/// Both grouping lists are sorted by table id (see
/// [`occurrences_by_table`]); the caller has verified the query tables
/// are a subset of the view's.
fn enumerate_mappings(
    n_view_occs: usize,
    q_by_table: &[(TableId, Vec<OccId>)],
    v_by_table: &[(TableId, Vec<OccId>)],
    cap: usize,
) -> Vec<Vec<Option<OccId>>> {
    let mut result: Vec<Vec<Option<OccId>>> = vec![vec![None; n_view_occs]];
    for (t, qoccs) in q_by_table {
        let voccs = &v_by_table[v_by_table
            .binary_search_by_key(t, |(vt, _)| *vt)
            .expect("table correspondence checked by the caller")]
        .1;
        // All injective placements of `qoccs` into `voccs`.
        let placements = injections(qoccs, voccs);
        let mut next = Vec::new();
        for base in &result {
            for placement in &placements {
                if next.len() >= cap {
                    break;
                }
                let mut m = base.clone();
                for (q, v) in placement {
                    m[v.0 as usize] = Some(*q);
                }
                next.push(m);
            }
        }
        result = next;
    }
    result
}

/// All injective assignments of each query occurrence to a distinct view
/// occurrence (both of the same base table).
fn injections(qoccs: &[OccId], voccs: &[OccId]) -> Vec<Vec<(OccId, OccId)>> {
    fn rec(
        qoccs: &[OccId],
        voccs: &[OccId],
        used: &mut Vec<bool>,
        acc: &mut Vec<(OccId, OccId)>,
        out: &mut Vec<Vec<(OccId, OccId)>>,
    ) {
        if acc.len() == qoccs.len() {
            out.push(acc.clone());
            return;
        }
        let q = qoccs[acc.len()];
        for (i, &v) in voccs.iter().enumerate() {
            if !used[i] {
                used[i] = true;
                acc.push((q, v));
                rec(qoccs, voccs, used, acc, out);
                acc.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(
        qoccs,
        voccs,
        &mut vec![false; voccs.len()],
        &mut Vec::new(),
        &mut out,
    );
    out
}

/// View output bookkeeping in query space: which columns and expressions
/// the view makes available, and where.
struct ViewOutputs {
    /// Simple-column outputs: column → output position (scalar outputs
    /// only; for aggregation views these are the grouping outputs).
    col_pos: HashMap<ColRef, usize>,
    /// Complex scalar outputs as templates.
    complex: Vec<(Template, usize)>,
    /// Number of scalar (grouping) outputs; aggregate outputs follow.
    scalar_len: usize,
    /// `SUM(E)` outputs: template of `E` → position.
    sum_args: Vec<(Template, usize)>,
    /// Position of the `COUNT(*)` output, if any.
    count_pos: Option<usize>,
    /// Total view output arity (scalar + aggregate outputs).
    arity: usize,
    /// Backjoins on offer (section 7 extension), per query-space
    /// occurrence: the base table, the (view position → key column) pairs
    /// of a non-null unique key, and the table's column count.
    backjoin_available: HashMap<OccId, BackjoinOffer>,
    /// Backjoins actually used by this match, in activation order:
    /// (occurrence, base position of its columns in the extended space).
    backjoin_active: std::cell::RefCell<Vec<(OccId, usize)>>,
}

/// A possible backjoin target.
#[derive(Debug, Clone)]
struct BackjoinOffer {
    table: TableId,
    key: Vec<(usize, mv_catalog::ColumnId)>,
    n_columns: usize,
}

impl ViewOutputs {
    fn build(vexpr: &SpjgExpr, mapf: &impl Fn(OccId) -> OccId) -> ViewOutputs {
        let mut col_pos = HashMap::new();
        let mut complex = Vec::new();
        let scalars = vexpr.scalar_outputs();
        for (i, ne) in scalars.iter().enumerate() {
            let e = ne.expr.map_columns(&mut |c| remap_col(c, mapf));
            if let Some(c) = e.as_column() {
                col_pos.entry(c).or_insert(i);
            } else if !e.is_constant() {
                complex.push((Template::of_scalar(&e), i));
            }
        }
        let mut sum_args = Vec::new();
        let mut count_pos = None;
        for (j, na) in vexpr.aggregate_outputs().iter().enumerate() {
            let pos = scalars.len() + j;
            match &na.func {
                AggFunc::CountStar => count_pos = Some(pos),
                AggFunc::Sum(e) | AggFunc::SumZero(e) => {
                    let e = e.map_columns(&mut |c| remap_col(c, mapf));
                    sum_args.push((Template::of_scalar(&e), pos));
                }
            }
        }
        ViewOutputs {
            col_pos,
            complex,
            scalar_len: scalars.len(),
            sum_args,
            count_pos,
            arity: vexpr.output_arity(),
            backjoin_available: HashMap::new(),
            backjoin_active: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Offer backjoins (section 7 extension): for every view occurrence
    /// whose base table has a non-null unique key fully available among
    /// the view's outputs (through the *view's* equivalence classes), the
    /// table's columns become reachable by joining the view back to it.
    fn offer_backjoins(
        &mut self,
        catalog: &Catalog,
        occs: &[(OccId, TableId)],
        vec_q: &EquivClasses,
    ) {
        for &(occ, table) in occs {
            let def = catalog.table(table);
            let offer = def.keys.iter().find_map(|key| {
                if !key.columns.iter().all(|&c| def.column(c).not_null) {
                    return None; // NULL keys would drop rows in the join
                }
                let pairs = key
                    .columns
                    .iter()
                    .map(|&c| {
                        // Keys must come from the view outputs themselves
                        // (never from another backjoin, which would create
                        // ordering dependencies between joins).
                        self.direct_position(ColRef { occ, col: c }, vec_q)
                            .map(|p| (p, c))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(BackjoinOffer {
                    table,
                    key: pairs,
                    n_columns: def.columns.len(),
                })
            });
            if let Some(offer) = offer {
                self.backjoin_available.insert(occ, offer);
            }
        }
    }

    /// Position of `c` through an active (or newly activated) backjoin.
    fn backjoin_position(&self, c: ColRef) -> Option<usize> {
        self.backjoin_available.get(&c.occ)?;
        let mut active = self.backjoin_active.borrow_mut();
        let base = match active.iter().find(|(o, _)| *o == c.occ) {
            Some((_, base)) => *base,
            None => {
                let base = self.arity
                    + active
                        .iter()
                        .map(|(o, _)| self.backjoin_available[o].n_columns)
                        .sum::<usize>();
                active.push((c.occ, base));
                base
            }
        };
        Some(base + c.col.0 as usize)
    }

    /// The backjoins this match activated, ready for the substitute.
    fn take_backjoins(&self) -> Vec<mv_plan::BackJoin> {
        self.backjoin_active
            .borrow()
            .iter()
            .map(|(occ, _)| {
                let offer = &self.backjoin_available[occ];
                mv_plan::BackJoin {
                    table: offer.table,
                    key: offer.key.clone(),
                }
            })
            .collect()
    }

    /// Map a column to an output position, rerouting through the given
    /// equivalence classes ("we exploit equalities among columns by
    /// considering each column reference to refer to the equivalence class
    /// containing the column", section 3.1.3).
    fn find_position(&self, c: ColRef, ec: &EquivClasses) -> Option<usize> {
        if let Some(p) = self.direct_position(c, ec) {
            return Some(p);
        }
        // Section 7 extension: reach the column through a backjoin.
        std::iter::once(c)
            .chain(ec.class_of(c))
            .find_map(|c2| self.backjoin_position(c2))
    }

    /// Like [`ViewOutputs::find_position`] but restricted to the view's own
    /// output columns (no backjoins).
    fn direct_position(&self, c: ColRef, ec: &EquivClasses) -> Option<usize> {
        if let Some(&p) = self.col_pos.get(&c) {
            return Some(p);
        }
        ec.class_of(c)
            .into_iter()
            .find_map(|c2| self.col_pos.get(&c2).copied())
    }

    /// Like [`ViewOutputs::find_position`], but *representative-blind*:
    /// the whole class is scanned in sorted order with no shortcut for `c`
    /// itself, so every member of a class resolves to the same position.
    /// Used where the probed column is a class representative (whose
    /// choice depends on predicate fold order) rather than a semantically
    /// pinned column — fingerprint-equal queries must produce
    /// byte-identical substitutes (see `crate::cache`).
    fn canonical_position(&self, c: ColRef, ec: &EquivClasses) -> Option<usize> {
        let class = ec.class_of(c); // sorted, contains at least `c`
        if let Some(p) = class.iter().find_map(|m| self.col_pos.get(m).copied()) {
            return Some(p);
        }
        class.into_iter().find_map(|m| self.backjoin_position(m))
    }
}

/// Reference to view output column `pos`.
fn out_col(pos: usize) -> ScalarExpr {
    ScalarExpr::Column(ColRef::new(0, pos as u32))
}

/// Map a scalar expression onto the view's outputs (section 3.1.4):
/// constants copy through; simple columns reroute through `ec`; complex
/// expressions first try an exact template match against a view output,
/// then recomputation from simple output columns.
fn map_scalar(e: &ScalarExpr, ec: &EquivClasses, vout: &ViewOutputs) -> Option<ScalarExpr> {
    if e.is_constant() {
        return Some(e.clone());
    }
    if let Some(c) = e.as_column() {
        return vout.find_position(c, ec).map(out_col);
    }
    let t = Template::of_scalar(e);
    let same = |a: ColRef, b: ColRef| a == b || ec.same(a, b);
    for (vt, pos) in &vout.complex {
        if vt.matches(&t, &same) {
            return Some(out_col(*pos));
        }
    }
    e.try_map_columns(&mut |c| vout.find_position(c, ec).map(|p| ColRef::new(0, p as u32)))
}

/// Is `c` covered by a null-rejecting predicate in the query (other than
/// an equijoin)? Used by the nullable-FK relaxation of section 3.2.
fn is_null_rejecting(qsum: &ExprSummary, c: ColRef) -> bool {
    if qsum.is_range_constrained(c) {
        return true;
    }
    let same = |x: ColRef| x == c || qsum.ec.same(x, c);
    qsum.residual_bools.iter().any(|p| match p {
        BoolExpr::Compare { .. } | BoolExpr::Like { .. } => p.columns().into_iter().any(same),
        BoolExpr::IsNull {
            negated: true,
            expr,
        } => expr.columns().into_iter().any(same),
        _ => false,
    })
}

/// Attempt a match under one fixed occurrence assignment.
fn try_match(
    catalog: &Catalog,
    config: &MatchConfig,
    pq: &PreparedQuery<'_>,
    view_id: ViewId,
    view: &ViewDef,
    pv: &PreparedView,
    assign: &[Option<OccId>],
) -> Option<Substitute> {
    let query = pq.expr;
    let qsum = pq.summary;
    let nq = query.tables.len() as u32;

    // §3.2 precheck from the prepared descriptor: an extra view table can
    // only be eliminated if some cardinality-preserving FK edge points at
    // it, and the descriptor's edge set is a superset of any per-query
    // graph's. A mapping leaving an edge-less occurrence unassigned can
    // never survive elimination — reject before building the graph.
    if assign
        .iter()
        .enumerate()
        .any(|(i, a)| a.is_none() && !pv.fk_incoming[i])
    {
        return None;
    }

    // View occurrence → query-space occurrence; extra tables get fresh
    // occurrence ids nq, nq+1, ...
    let mut occ_map: Vec<OccId> = Vec::with_capacity(assign.len());
    let mut extras: Vec<OccId> = Vec::new();
    let mut next = nq;
    for a in assign {
        match a {
            Some(q) => occ_map.push(*q),
            None => {
                occ_map.push(OccId(next));
                extras.push(OccId(next));
                next += 1;
            }
        }
    }
    let mapf = |o: OccId| occ_map[o.0 as usize];

    // View equivalence classes rebased into query space, from the
    // precomputed canonical class list. The occurrence substitution is
    // injective, so distinct view classes stay distinct.
    let mut vec_q = EquivClasses::new();
    for class in &pv.nontrivial_ecs {
        for pair in class.windows(2) {
            vec_q.union(remap_col(pair[0], &mapf), remap_col(pair[1], &mapf));
        }
    }

    // Extended query equivalence classes (section 3.2: "we merely simulate
    // the addition of extra tables by updating query equivalence classes").
    let mut qec = qsum.ec.clone();

    if !extras.is_empty() {
        let occs: Vec<(OccId, TableId)> =
            view.expr.occurrences().map(|(o, t)| (mapf(o), t)).collect();
        let nullable_ok =
            |c: ColRef| config.null_rejecting_fk && c.occ.0 < nq && is_null_rejecting(qsum, c);
        let graph = build_fk_graph(catalog, &occs, &vec_q, &nullable_ok);
        let elim = eliminate(&graph, &|o| extras.contains(&o));
        if elim.remaining.iter().any(|o| extras.contains(o)) {
            return None;
        }
        // Replay the join conditions of the deleted edges into the query's
        // equivalence classes.
        for e in &elim.deleted_edges {
            for (f, c) in &e.col_pairs {
                qec.union(*f, *c);
            }
        }
    }

    // ---- Equijoin subsumption test (section 3.1.2) ----
    // Every non-trivial view equivalence class must be a subset of some
    // query equivalence class.
    for class in &pv.nontrivial_ecs {
        let root = qec.find(remap_col(class[0], &mapf));
        if class[1..]
            .iter()
            .any(|&c| qec.find(remap_col(c, &mapf)) != root)
        {
            return None;
        }
    }

    let mut vout = ViewOutputs::build(&view.expr, &mapf);
    if config.allow_backjoins {
        let occs: Vec<(OccId, TableId)> =
            view.expr.occurrences().map(|(o, t)| (mapf(o), t)).collect();
        vout.offer_backjoins(catalog, &occs, &vec_q);
    }
    let mut predicates: Vec<BoolExpr> = Vec::new();

    // ---- Compensating column-equality predicates (section 3.1.3 type 1) --
    // "Whenever some view equivalence classes E1..En map to the same query
    // equivalence class E, we create a column-equality predicate between
    // any column in Ei and any column in Ei+1." These reroute through the
    // VIEW equivalence classes.
    for qclass in qec.nontrivial_classes() {
        let mut parts: Vec<(ColRef, ColRef)> = Vec::new(); // (view root, representative)
        for &c in &qclass {
            let vroot = vec_q.find(c);
            if !parts.iter().any(|(r, _)| *r == vroot) {
                parts.push((vroot, c));
            }
        }
        for w in parts.windows(2) {
            let a = vout.find_position(w[0].1, &vec_q)?;
            let b = vout.find_position(w[1].1, &vec_q)?;
            predicates.push(BoolExpr::cmp(out_col(a), mv_expr::CmpOp::Eq, out_col(b)));
        }
    }

    // ---- Range subsumption test + compensation (type 2) ----
    // Rebase the query ranges onto the extended equivalence classes.
    let mut qranges: HashMap<ColRef, Interval> = HashMap::new();
    for (root, iv) in &qsum.ranges {
        let r = qec.find(*root);
        match qranges.remove(&r) {
            Some(prev) => {
                qranges.insert(r, prev.intersect(iv)?);
            }
            None => {
                qranges.insert(r, iv.clone());
            }
        }
    }
    // Every view range must contain the corresponding query range. The
    // prepared range list is sorted by class representative, so `veff`
    // accumulates in a deterministic order.
    let mut veff: HashMap<ColRef, Interval> = HashMap::new();
    for (vroot, iv) in &pv.ranges {
        let c = remap_col(*vroot, &mapf);
        let qroot = qec.find(c);
        let qiv = qranges.get(&qroot).cloned().unwrap_or_default();
        if iv.contains(&qiv) != Some(true) {
            return None;
        }
        let eff = veff.remove(&qroot).unwrap_or_default();
        veff.insert(qroot, eff.intersect(iv)?);
    }
    // Enforce the query bounds that the view does not already guarantee —
    // only the *genuine* bounds: check-derived bounds hold on every view
    // row. Deterministic order for reproducible substitutes.
    let mut gen_ranges: HashMap<ColRef, Interval> = HashMap::new();
    for (root, iv) in &qsum.genuine_ranges {
        let r = qec.find(*root);
        match gen_ranges.remove(&r) {
            Some(prev) => {
                gen_ranges.insert(r, prev.intersect(iv)?);
            }
            None => {
                gen_ranges.insert(r, iv.clone());
            }
        }
    }
    let mut qrange_list: Vec<(&ColRef, &Interval)> = gen_ranges.iter().collect();
    qrange_list.sort_by_key(|(c, _)| **c);
    for (qroot, qiv) in qrange_list {
        let viv = veff.get(qroot).cloned().unwrap_or_default();
        let comps = viv.compensation(qiv);
        if comps.is_empty() {
            continue;
        }
        // Route through QUERY equivalence classes (section 3.1.3 point 2).
        // `qroot` is a class *representative*, which depends on the
        // union-fold order — canonical_position scans the sorted class so
        // the emitted predicate does not (fingerprint-equal queries must
        // produce byte-identical substitutes; see `crate::cache`).
        let pos = vout.canonical_position(*qroot, &qec)?;
        for (op, value) in comps {
            predicates.push(BoolExpr::cmp(out_col(pos), op, ScalarExpr::Literal(value)));
        }
    }

    // ---- Residual subsumption test + compensation (type 3) ----
    let v_templates: Vec<Template> = pv
        .summary
        .residuals
        .iter()
        .map(|t| remap_template(t, &mapf))
        .collect();
    let same = |a: ColRef, b: ColRef| a == b || qec.same(a, b);
    // Every view residual must match a query residual, else the view may
    // lack required rows.
    for vt in &v_templates {
        if !qsum.residuals.iter().any(|qt| vt.matches(qt, &same)) {
            return None;
        }
    }
    // Query residuals missing from the view must be enforced on top.
    // Check-constraint-derived residuals (beyond `genuine_residuals`) hold
    // on every view row already and are never compensated.
    for (qt, qb) in qsum
        .residuals
        .iter()
        .zip(&qsum.residual_bools)
        .take(qsum.genuine_residuals)
    {
        if v_templates.iter().any(|vt| vt.matches(qt, &same)) {
            continue;
        }
        let mapped = qb.try_map_columns(&mut |c| {
            vout.find_position(c, &qec)
                .map(|p| ColRef::new(0, p as u32))
        })?;
        predicates.push(mapped);
    }

    // ---- Output expressions (sections 3.1.4 and 3.3) ----
    let output = build_output(query, view.expr.is_aggregate(), &qec, &vout)?;

    // Canonical predicate order: the compensations above are emitted in
    // an order that can follow the query's conjunct order (residuals) or
    // class representatives (ranges) — both of which differ between
    // fingerprint-equal queries. Sorting by rendered text makes the
    // substitute depend only on the predicate *set*.
    predicates.sort_by_cached_key(|p| p.to_string());

    Some(Substitute {
        view: view_id,
        backjoins: vout.take_backjoins(),
        predicates,
        output,
    })
}

/// Construct the substitute's output list.
fn build_output(
    query: &SpjgExpr,
    view_is_aggregate: bool,
    qec: &EquivClasses,
    vout: &ViewOutputs,
) -> Option<OutputList> {
    let same = |a: ColRef, b: ColRef| a == b || qec.same(a, b);
    match &query.output {
        OutputList::Spj(items) => {
            // The caller already rejected (SPJ query, aggregate view).
            let mapped = items
                .iter()
                .map(|ne| {
                    map_scalar(&ne.expr, qec, vout).map(|e| NamedExpr::new(e, ne.name.clone()))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(OutputList::Spj(mapped))
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } if !view_is_aggregate => {
            // Aggregation query over an SPJ view: group the view directly.
            let gb = group_by
                .iter()
                .map(|ne| {
                    map_scalar(&ne.expr, qec, vout).map(|e| NamedExpr::new(e, ne.name.clone()))
                })
                .collect::<Option<Vec<_>>>()?;
            let aggs = aggregates
                .iter()
                .map(|na| {
                    let func = match &na.func {
                        AggFunc::CountStar => AggFunc::CountStar,
                        AggFunc::Sum(e) => AggFunc::Sum(map_scalar(e, qec, vout)?),
                        AggFunc::SumZero(e) => AggFunc::SumZero(map_scalar(e, qec, vout)?),
                    };
                    Some(NamedAgg::new(func, na.name.clone()))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(OutputList::Aggregate {
                group_by: gb,
                aggregates: aggs,
            })
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            // Aggregation query over an aggregation view (section 3.3):
            // the view must be no more aggregated than the query, i.e.
            // every query grouping expression maps onto the view's
            // grouping outputs.
            let gb_mapped = group_by
                .iter()
                .map(|ne| map_scalar(&ne.expr, qec, vout))
                .collect::<Option<Vec<_>>>()?;
            // Positions of directly-matched view grouping outputs.
            let direct: Vec<Option<usize>> = gb_mapped
                .iter()
                .map(|e| {
                    e.as_column()
                        .map(|c| c.col.0 as usize)
                        .filter(|&p| p < vout.scalar_len)
                })
                .collect();
            // No further aggregation is needed exactly when the query
            // grouping list covers every view grouping output.
            let no_regroup = direct.iter().all(|d| d.is_some())
                && (0..vout.scalar_len).all(|p| direct.contains(&Some(p)));
            if no_regroup {
                let mut items: Vec<NamedExpr> = group_by
                    .iter()
                    .zip(&gb_mapped)
                    .map(|(ne, e)| NamedExpr::new(e.clone(), ne.name.clone()))
                    .collect();
                for na in aggregates {
                    let e = match &na.func {
                        AggFunc::CountStar => out_col(vout.count_pos?),
                        AggFunc::Sum(arg) | AggFunc::SumZero(arg) => {
                            out_col(find_sum(vout, arg, &same)?)
                        }
                    };
                    items.push(NamedExpr::new(e, na.name.clone()));
                }
                Some(OutputList::Spj(items))
            } else {
                let gb = group_by
                    .iter()
                    .zip(&gb_mapped)
                    .map(|(ne, e)| NamedExpr::new(e.clone(), ne.name.clone()))
                    .collect();
                let aggs = aggregates
                    .iter()
                    .map(|na| {
                        let func = match &na.func {
                            // count(*) rolls up as a zero-defaulting SUM
                            // over the view's count column.
                            AggFunc::CountStar => AggFunc::SumZero(out_col(vout.count_pos?)),
                            AggFunc::Sum(arg) => AggFunc::Sum(out_col(find_sum(vout, arg, &same)?)),
                            AggFunc::SumZero(arg) => {
                                AggFunc::SumZero(out_col(find_sum(vout, arg, &same)?))
                            }
                        };
                        Some(NamedAgg::new(func, na.name.clone()))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(OutputList::Aggregate {
                    group_by: gb,
                    aggregates: aggs,
                })
            }
        }
    }
}

/// Find a view `SUM(E')` output whose argument matches `arg` exactly,
/// taking column equivalences into account (section 3.3: "If the query
/// output contains a SUM(E) ... we require that the view contain an output
/// column that matches exactly").
fn find_sum(
    vout: &ViewOutputs,
    arg: &ScalarExpr,
    same: &impl Fn(ColRef, ColRef) -> bool,
) -> Option<usize> {
    let t = Template::of_scalar(arg);
    vout.sum_args
        .iter()
        .find(|(vt, _)| vt.matches(&t, same))
        .map(|(_, pos)| *pos)
}
