//! The view-matching tests of section 3 and substitute construction.
//!
//! Given a query SPJG block and one candidate view, [`match_view`] decides
//! whether the query can be computed from the view alone and, if so, builds
//! the [`Substitute`]. The pipeline follows the paper:
//!
//! 1. table correspondence (query tables ⊆ view tables, occurrence-aware),
//! 2. extra-table elimination through cardinality-preserving joins (§3.2),
//! 3. equijoin subsumption test + compensating equality predicates (§3.1.2,
//!    §3.1.3 type 1),
//! 4. range subsumption test + compensating range predicates (type 2),
//! 5. residual subsumption test + compensating residual predicates (type 3),
//! 6. output-expression mapping (§3.1.4) and aggregation handling (§3.3).

use crate::descriptor::{occurrences_by_table, PreparedView};
use crate::fkgraph::{build_fk_graph, eliminate};
use crate::summary::{remap_col, ExprSummary};
use mv_catalog::{Catalog, TableId};
use mv_expr::{BoolExpr, ClassIndex, ColRef, EquivClasses, Interval, OccId, ScalarExpr, Template};
use mv_plan::{
    AggFunc, Freshness, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewDef, ViewId,
};
use std::collections::HashMap;

/// When may a view whose materialized state trails the current base data
/// substitute for a query? Enforced by `find_substitutes` against the
/// per-table *data epochs* the engine tracks (bumped by
/// [`crate::MatchingEngine::record_base_write`], restamped per view by
/// [`crate::MatchingEngine::mark_view_maintained`]); every returned
/// [`Substitute`] carries the [`Freshness`] the policy admitted it under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreshnessPolicy {
    /// Only views whose data epochs match the current table epochs may
    /// substitute: every substitute is an exact rewrite over current data.
    StrictFresh,
    /// Views may lag the current data epochs by at most `n` write rounds
    /// (per table); `BoundedStaleness(0)` behaves like
    /// [`FreshnessPolicy::StrictFresh`].
    BoundedStaleness(u64),
    /// Any registered view may substitute regardless of staleness; the
    /// substitute still reports its actual [`Freshness`]. The default —
    /// and exactly the paper's static-catalog behavior.
    #[default]
    StaleOk,
}

impl FreshnessPolicy {
    /// Does the policy admit a view lagging the current data epochs by
    /// `lag` write rounds?
    pub fn admits(&self, lag: u64) -> bool {
        match self {
            FreshnessPolicy::StrictFresh => lag == 0,
            FreshnessPolicy::BoundedStaleness(n) => lag <= *n,
            FreshnessPolicy::StaleOk => true,
        }
    }
}

/// Tunables for the matcher and the filter tree.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Enable the section 3.2 extension: a *nullable* foreign-key column
    /// still supports a cardinality-preserving join when the query carries
    /// a null-rejecting predicate on that column (Example 5). The paper's
    /// prototype left this unimplemented; we provide it behind this flag.
    pub null_rejecting_fk: bool,
    /// Enable the section 4.2.2 hub refinement: tables carrying a range or
    /// residual predicate on a column outside every non-trivial equivalence
    /// class stay in the hub, strengthening the hub filter condition.
    pub refined_hubs: bool,
    /// Use the filter tree to narrow candidates (section 4). With this off
    /// the engine checks every view — the "No Filter" series of Figure 2.
    pub use_filter_tree: bool,
    /// Upper bound on occurrence bijections tried for self-join table
    /// correspondence (factorial blow-up guard; the paper's workload never
    /// repeats a table, so one mapping is the overwhelmingly common case).
    pub max_table_mappings: usize,
    /// Enable base-table backjoins (the section 7 extension): when a view
    /// covers all tables and rows but lacks some columns, and it outputs a
    /// non-null unique key of one of its tables, the matcher may join the
    /// view back to that base table to pull the missing columns in.
    pub allow_backjoins: bool,
    /// Fold declared check constraints into the query's antecedent
    /// (section 3.1.2): a view predicate that is implied by a check
    /// constraint no longer blocks matching. Constraints are registered
    /// with [`crate::MatchingEngine::add_check_constraint`].
    pub use_check_constraints: bool,
    /// Keep the paper's conservative output/grouping-expression filter
    /// conditions (sections 4.2.7/4.2.8), which "ignore the possibility of
    /// computing an expression from scratch using plain columns": a query
    /// whose complex output expression could only be *recomputed* from a
    /// view's simple columns is filtered out before the full tests run,
    /// exactly as in the SQL Server prototype. Disable to drop those two
    /// conditions (weaker pruning, never misses a recomputable rewrite).
    pub strict_expression_filter: bool,
    /// Candidate count at or above which `find_substitutes` fans the
    /// per-candidate `match_view` loop out across threads. Below the
    /// threshold the loop stays serial: on the paper's workload the filter
    /// tree leaves a handful of candidates (< 0.4 % of views), where
    /// thread spawn costs more than the matching itself. Results are
    /// deterministic either way — substitutes come back ordered by
    /// [`mv_plan::ViewId`], byte-identical to the serial path. Set to
    /// `usize::MAX` to pin matching fully serial.
    pub parallel_threshold: usize,
    /// Worker cap for parallel matching and for
    /// `find_substitutes_batch`'s per-query fan-out. `0` (the default)
    /// means use the machine's available parallelism.
    pub parallel_workers: usize,
    /// Capacity (entries) of the fingerprint-keyed substitute cache on
    /// [`crate::MatchingEngine::find_substitutes`]: repeated query shapes
    /// skip the filter tree and the matching tests entirely and return the
    /// cached substitute list (output names re-stamped from the probing
    /// query). `0` disables the cache. Entries are invalidated lazily on
    /// view registration/removal via an engine epoch.
    pub substitute_cache_capacity: usize,
    /// Mutex stripes of the substitute cache; concurrent matchers only
    /// contend when their fingerprints share a stripe. Clamped to
    /// `[1, capacity]`.
    pub substitute_cache_shards: usize,
    /// Record wall-clock filter/match durations in [`crate::MatchStats`].
    /// With this off, `find_substitutes` performs zero clock reads — on
    /// the cached hot path the only work left is the fingerprint render
    /// and a shard probe.
    pub timing: bool,
    /// Database budget for the debug-build bounded-equivalence oracle:
    /// when nonzero (and `debug_assertions` are on), every substitute
    /// `find_substitutes` produces is additionally run through the
    /// `mv-prove` bounded model checker (DESIGN.md §15) at bound k = 2,
    /// visiting at most this many enumerated databases per pair, and any
    /// refutation (MV301/MV302) panics with the rendered witness. `0`
    /// disables the oracle; release builds never prove. Since the
    /// compiled-program prover (DESIGN.md §16) the oracle is cheap enough
    /// to default **on** in debug builds (2 000 databases per pair);
    /// release builds still default to `0`.
    pub prove_budget: usize,
    /// Freshness policy for substitute serving (see [`FreshnessPolicy`]):
    /// which views may substitute when base-table writes have outpaced
    /// their incremental maintenance. Defaults to
    /// [`FreshnessPolicy::StaleOk`], the static-catalog behavior.
    pub freshness: FreshnessPolicy,
}

impl MatchConfig {
    /// Workers to use for a candidate loop of `n_items`, honoring the
    /// threshold and cap; `1` means run serially. In auto mode
    /// (`parallel_workers == 0`) the fan-out is additionally sized so each
    /// worker gets at least [`MIN_CANDIDATES_PER_WORKER`] candidates —
    /// per-candidate matching runs a few microseconds, so a thinner split
    /// spends more on thread spawns than it saves (the bench trajectory
    /// recorded parallel *losing* to serial at 10k views for exactly this
    /// reason). An explicit worker count is honored as given.
    ///
    /// [`MIN_CANDIDATES_PER_WORKER`]: MatchConfig::MIN_CANDIDATES_PER_WORKER
    pub(crate) fn match_workers(&self, n_items: usize) -> usize {
        if n_items < self.parallel_threshold.max(2) {
            return 1;
        }
        let workers = self.batch_workers(n_items);
        if self.parallel_workers == 0 {
            // Auto mode falls back to serial whenever the fan-out cannot
            // pay for itself: a single effective worker (one core, or a
            // nested call from inside a batch worker) or a per-worker
            // share below the floor.
            let sized = workers.min(n_items / Self::MIN_CANDIDATES_PER_WORKER);
            if sized <= 1 {
                1
            } else {
                sized
            }
        } else {
            workers
        }
    }

    /// Smallest per-worker candidate share the auto-sized candidate-loop
    /// fan-out will accept (see [`MatchConfig::match_workers`]).
    pub const MIN_CANDIDATES_PER_WORKER: usize = 32;

    /// Workers for an unconditional fan-out over `n_items` (the batch
    /// entry point, which exists precisely to parallelize). In auto mode
    /// `mv_parallel::workers_for` already declines nested fan-outs and
    /// single-core machines, so a batch on one CPU runs the plain serial
    /// loop instead of paying per-call thread spawns for nothing.
    pub(crate) fn batch_workers(&self, n_items: usize) -> usize {
        if self.parallel_workers == 0 {
            mv_parallel::workers_for(n_items)
        } else {
            self.parallel_workers.min(n_items).max(1)
        }
    }
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            null_rejecting_fk: false,
            refined_hubs: true,
            use_filter_tree: true,
            max_table_mappings: 64,
            allow_backjoins: false,
            use_check_constraints: true,
            strict_expression_filter: true,
            parallel_threshold: 256,
            parallel_workers: 0,
            substitute_cache_capacity: 1024,
            substitute_cache_shards: 8,
            timing: true,
            prove_budget: if cfg!(debug_assertions) { 2_000 } else { 0 },
            freshness: FreshnessPolicy::default(),
        }
    }
}

/// A query prepared for matching against many candidate views: the
/// expression, its predicate summary, and the occurrences grouped by base
/// table — computed once per `find_substitutes` instead of per candidate.
pub struct PreparedQuery<'a> {
    /// The query block.
    pub expr: &'a SpjgExpr,
    /// Its predicate analysis (with check constraints folded in, when the
    /// engine has any).
    pub summary: &'a ExprSummary,
    /// Occurrences grouped by base table, sorted by table id.
    pub by_table: Vec<(TableId, Vec<OccId>)>,
    /// The summary's equivalence classes materialized once — the
    /// substitute-construction lookups probe classes per column per
    /// accepted candidate, which a per-probe scan made the hot spot.
    pub ec_index: ClassIndex,
}

impl<'a> PreparedQuery<'a> {
    /// Prepare a query for a candidate loop.
    pub fn new(expr: &'a SpjgExpr, summary: &'a ExprSummary) -> PreparedQuery<'a> {
        PreparedQuery {
            expr,
            summary,
            by_table: occurrences_by_table(expr),
            ec_index: summary.ec.class_index(),
        }
    }
}

/// Decide whether `query` can be computed from `view` and build the
/// substitute. `qsum`/`vsum` are the precomputed predicate summaries.
///
/// Convenience wrapper over [`match_view_prepared`] that builds the
/// prepared forms on the fly; a candidate loop should prepare once and
/// call [`match_view_prepared`] directly.
pub fn match_view(
    catalog: &Catalog,
    config: &MatchConfig,
    query: &SpjgExpr,
    qsum: &ExprSummary,
    view_id: ViewId,
    view: &ViewDef,
    vsum: &ExprSummary,
) -> Option<Substitute> {
    let pq = PreparedQuery::new(query, qsum);
    let pv = PreparedView::prepare(catalog, config, &view.expr, vsum.clone(), Vec::new());
    match_view_prepared(catalog, config, &pq, view_id, view, &pv)
}

/// Decide whether the prepared query can be computed from the prepared
/// view and build the substitute.
pub fn match_view_prepared(
    catalog: &Catalog,
    config: &MatchConfig,
    pq: &PreparedQuery<'_>,
    view_id: ViewId,
    view: &ViewDef,
    pv: &PreparedView,
) -> Option<Substitute> {
    // An SPJ query cannot be computed from an aggregation view: the view
    // is "more aggregated" (section 3.3, requirement 3).
    if !pq.expr.is_aggregate() && view.expr.is_aggregate() {
        return None;
    }

    // Table correspondence: the query's table multiset must be a subset of
    // the view's (requirement: "There is no need to consider views with
    // fewer tables than the query").
    for (t, qoccs) in &pq.by_table {
        let available = pv
            .by_table
            .binary_search_by_key(t, |(vt, _)| *vt)
            .map(|i| pv.by_table[i].1.len())
            .unwrap_or(0);
        if available < qoccs.len() {
            return None;
        }
    }

    // Enumerate injective assignments of query occurrences to view
    // occurrences, per base table. With no self-joins this is a single
    // mapping. Both grouping lists are sorted by table id, so the
    // enumeration order — and therefore which of several valid mappings
    // wins — is deterministic.
    let mappings = enumerate_mappings(
        view.expr.tables.len(),
        &pq.by_table,
        &pv.by_table,
        config.max_table_mappings,
    );
    mappings
        .into_iter()
        .find_map(|assign| try_match(catalog, config, pq, view_id, view, pv, &assign))
}

/// Build all injective mappings `view occurrence -> query occurrence`
/// (as `assign[view_occ] = Some(query_occ)`, `None` = extra table).
/// Both grouping lists are sorted by table id (see
/// [`occurrences_by_table`]); the caller has verified the query tables
/// are a subset of the view's.
fn enumerate_mappings(
    n_view_occs: usize,
    q_by_table: &[(TableId, Vec<OccId>)],
    v_by_table: &[(TableId, Vec<OccId>)],
    cap: usize,
) -> Vec<Vec<Option<OccId>>> {
    // Fast path: when no shared table repeats on either side the single
    // injective mapping is forced — skip the placement product and its
    // nested allocations. This is the overwhelmingly common case (the
    // paper's workload never repeats a table).
    if cap > 0 && q_by_table.iter().all(|(_, q)| q.len() == 1) {
        let mut m: Vec<Option<OccId>> = vec![None; n_view_occs];
        let mut forced = true;
        for (t, qoccs) in q_by_table {
            let voccs = &v_by_table[v_by_table
                .binary_search_by_key(t, |(vt, _)| *vt)
                .expect("table correspondence checked by the caller")]
            .1;
            if voccs.len() != 1 {
                forced = false;
                break;
            }
            m[voccs[0].0 as usize] = Some(qoccs[0]);
        }
        if forced {
            return vec![m];
        }
    }
    let mut result: Vec<Vec<Option<OccId>>> = vec![vec![None; n_view_occs]];
    for (t, qoccs) in q_by_table {
        let voccs = &v_by_table[v_by_table
            .binary_search_by_key(t, |(vt, _)| *vt)
            .expect("table correspondence checked by the caller")]
        .1;
        // All injective placements of `qoccs` into `voccs`.
        let placements = injections(qoccs, voccs);
        let mut next = Vec::new();
        for base in &result {
            for placement in &placements {
                if next.len() >= cap {
                    break;
                }
                let mut m = base.clone();
                for (q, v) in placement {
                    m[v.0 as usize] = Some(*q);
                }
                next.push(m);
            }
        }
        result = next;
    }
    result
}

/// All injective assignments of each query occurrence to a distinct view
/// occurrence (both of the same base table).
fn injections(qoccs: &[OccId], voccs: &[OccId]) -> Vec<Vec<(OccId, OccId)>> {
    fn rec(
        qoccs: &[OccId],
        voccs: &[OccId],
        used: &mut Vec<bool>,
        acc: &mut Vec<(OccId, OccId)>,
        out: &mut Vec<Vec<(OccId, OccId)>>,
    ) {
        if acc.len() == qoccs.len() {
            out.push(acc.clone());
            return;
        }
        let q = qoccs[acc.len()];
        for (i, &v) in voccs.iter().enumerate() {
            if !used[i] {
                used[i] = true;
                acc.push((q, v));
                rec(qoccs, voccs, used, acc, out);
                acc.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(
        qoccs,
        voccs,
        &mut vec![false; voccs.len()],
        &mut Vec::new(),
        &mut out,
    );
    out
}

/// Per-candidate accessor over the precomputed [`PreparedOutputs`]: the
/// view-space output maps of the descriptor plus this match's occurrence
/// translation and the backjoins it activates. Probes arrive in query
/// space and are translated through `inv`; the maps themselves are never
/// rebuilt — building them (plus a per-accept union-find and template
/// re-render) per accepted candidate was the accept-path hot spot.
struct OutputCtx<'a> {
    pv: &'a PreparedView,
    /// View occurrence index → query-space occurrence (the fixed
    /// assignment; extras carry the trailing fresh ids).
    occ_map: &'a [OccId],
    /// Query-space occurrence → view occurrence index. The inverse of
    /// `occ_map`, total over query space: every query occurrence is
    /// assigned and the extras' fresh ids are contiguous behind them.
    inv: Vec<u32>,
    /// Backjoins actually used by this match, in activation order:
    /// (view occurrence, base position of its columns in the extended
    /// space).
    backjoin_active: std::cell::RefCell<Vec<(OccId, usize)>>,
}

impl OutputCtx<'_> {
    /// Translate a query-space column into view space.
    fn to_view(&self, c: ColRef) -> ColRef {
        ColRef {
            occ: OccId(self.inv[c.occ.0 as usize]),
            col: c.col,
        }
    }

    /// Translate a view-space column into query space.
    fn to_query(&self, c: ColRef) -> ColRef {
        ColRef {
            occ: self.occ_map[c.occ.0 as usize],
            col: c.col,
        }
    }

    /// Output position of view-space column `v`, exact.
    fn vpos(&self, v: ColRef) -> Option<usize> {
        self.pv.outputs.col_pos.get(&v).copied()
    }

    /// Position of query-space `c` rerouting through the *view's*
    /// equivalence classes; no backjoins.
    fn direct_position_v(&self, c: ColRef) -> Option<usize> {
        let v = self.to_view(c);
        if let Some(p) = self.vpos(v) {
            return Some(p);
        }
        let i = *self.pv.ec_class.get(&v)? as usize;
        self.pv.nontrivial_ecs[i].iter().find_map(|m| self.vpos(*m))
    }

    /// Position of query-space `c` rerouting through the *view's*
    /// equivalence classes, backjoins allowed (the type-1 compensation
    /// routes here — section 3.1.3).
    fn find_position_v(&self, c: ColRef) -> Option<usize> {
        if let Some(p) = self.direct_position_v(c) {
            return Some(p);
        }
        if self.pv.outputs.backjoins.is_empty() {
            return None;
        }
        let v = self.to_view(c);
        let class: &[ColRef] = match self.pv.ec_class.get(&v) {
            Some(&i) => &self.pv.nontrivial_ecs[i as usize],
            None => &[],
        };
        std::iter::once(v)
            .chain(class.iter().copied())
            .find_map(|m| self.backjoin_position(m))
    }

    /// Map a query column to an output position, rerouting through the
    /// query equivalence classes ("we exploit equalities among columns by
    /// considering each column reference to refer to the equivalence class
    /// containing the column", section 3.1.3). `ix` is `ec`'s prebuilt
    /// [`ClassIndex`].
    fn find_position(&self, c: ColRef, ec: &EquivClasses, ix: &ClassIndex) -> Option<usize> {
        if let Some(p) = self.direct_position(c, ec, ix) {
            return Some(p);
        }
        // Section 7 extension: reach the column through a backjoin.
        if self.pv.outputs.backjoins.is_empty() {
            return None;
        }
        let class = ix.members(ec.find(c)).unwrap_or(&[]);
        std::iter::once(c)
            .chain(class.iter().copied())
            .find_map(|m| self.backjoin_position(self.to_view(m)))
    }

    /// Like [`OutputCtx::find_position`] but restricted to the view's own
    /// output columns (no backjoins).
    fn direct_position(&self, c: ColRef, ec: &EquivClasses, ix: &ClassIndex) -> Option<usize> {
        if let Some(p) = self.vpos(self.to_view(c)) {
            return Some(p);
        }
        ix.members(ec.find(c))?
            .iter()
            .find_map(|m| self.vpos(self.to_view(*m)))
    }

    /// Like [`OutputCtx::find_position`], but *representative-blind*: the
    /// whole class is scanned in sorted order with no shortcut for `c`
    /// itself, so every member of a class resolves to the same position.
    /// Used where the probed column is a class representative (whose
    /// choice depends on predicate fold order) rather than a semantically
    /// pinned column — fingerprint-equal queries must produce
    /// byte-identical substitutes (see `crate::cache`).
    fn canonical_position(&self, c: ColRef, ec: &EquivClasses, ix: &ClassIndex) -> Option<usize> {
        // Sorted members, or just `[c]` for a column outside every class —
        // the same set `EquivClasses::class_of` returns.
        let class: &[ColRef] = ix.members(ec.find(c)).unwrap_or(std::slice::from_ref(&c));
        if let Some(p) = class.iter().find_map(|m| self.vpos(self.to_view(*m))) {
            return Some(p);
        }
        if self.pv.outputs.backjoins.is_empty() {
            return None;
        }
        class
            .iter()
            .find_map(|&m| self.backjoin_position(self.to_view(m)))
    }

    /// Position of view-space `v` through an active (or newly activated)
    /// backjoin.
    fn backjoin_position(&self, v: ColRef) -> Option<usize> {
        self.pv.outputs.backjoins.get(&v.occ)?;
        let mut active = self.backjoin_active.borrow_mut();
        let base = match active.iter().find(|(o, _)| *o == v.occ) {
            Some((_, base)) => *base,
            None => {
                let base = self.pv.outputs.arity
                    + active
                        .iter()
                        .map(|(o, _)| self.pv.outputs.backjoins[o].n_columns)
                        .sum::<usize>();
                active.push((v.occ, base));
                base
            }
        };
        Some(base + v.col.0 as usize)
    }

    /// The backjoins this match activated, ready for the substitute.
    fn take_backjoins(&self) -> Vec<mv_plan::BackJoin> {
        self.backjoin_active
            .borrow()
            .iter()
            .map(|(occ, _)| {
                let offer = &self.pv.outputs.backjoins[occ];
                mv_plan::BackJoin {
                    table: offer.table,
                    key: offer.key.clone(),
                }
            })
            .collect()
    }
}

/// Reference to view output column `pos`.
fn out_col(pos: usize) -> ScalarExpr {
    ScalarExpr::Column(ColRef::new(0, pos as u32))
}

/// Map a scalar expression onto the view's outputs (section 3.1.4):
/// constants copy through; simple columns reroute through `ec`; complex
/// expressions first try an exact template match against a view output,
/// then recomputation from simple output columns.
fn map_scalar(
    e: &ScalarExpr,
    ec: &EquivClasses,
    ix: &ClassIndex,
    ctx: &OutputCtx<'_>,
) -> Option<ScalarExpr> {
    if e.is_constant() {
        return Some(e.clone());
    }
    if let Some(c) = e.as_column() {
        return ctx.find_position(c, ec, ix).map(out_col);
    }
    let t = Template::of_scalar(e);
    // The stored view template is in view space; translate its columns to
    // query space on compare (template text is column-blind, so equality
    // of the rendered strings is unaffected).
    let same = |a: ColRef, b: ColRef| {
        let aq = ctx.to_query(a);
        aq == b || ec.same(aq, b)
    };
    for (vt, pos) in &ctx.pv.outputs.complex {
        if vt.matches(&t, &same) {
            return Some(out_col(*pos));
        }
    }
    e.try_map_columns(&mut |c| {
        ctx.find_position(c, ec, ix)
            .map(|p| ColRef::new(0, p as u32))
    })
}

/// Is `c` covered by a null-rejecting predicate in the query (other than
/// an equijoin)? Used by the nullable-FK relaxation of section 3.2.
fn is_null_rejecting(qsum: &ExprSummary, c: ColRef) -> bool {
    if qsum.is_range_constrained(c) {
        return true;
    }
    let same = |x: ColRef| x == c || qsum.ec.same(x, c);
    qsum.residual_bools.iter().any(|p| match p {
        BoolExpr::Compare { .. } | BoolExpr::Like { .. } => p.columns().into_iter().any(same),
        BoolExpr::IsNull {
            negated: true,
            expr,
        } => expr.columns().into_iter().any(same),
        _ => false,
    })
}

/// Attempt a match under one fixed occurrence assignment.
fn try_match(
    catalog: &Catalog,
    config: &MatchConfig,
    pq: &PreparedQuery<'_>,
    view_id: ViewId,
    view: &ViewDef,
    pv: &PreparedView,
    assign: &[Option<OccId>],
) -> Option<Substitute> {
    let query = pq.expr;
    let qsum = pq.summary;
    let nq = query.tables.len() as u32;

    // §3.2 precheck from the prepared descriptor: an extra view table can
    // only be eliminated if some cardinality-preserving FK edge points at
    // it, and the descriptor's edge set is a superset of any per-query
    // graph's. A mapping leaving an edge-less occurrence unassigned can
    // never survive elimination — reject before building the graph.
    if assign
        .iter()
        .enumerate()
        .any(|(i, a)| a.is_none() && !pv.fk_incoming[i])
    {
        return None;
    }

    // View occurrence → query-space occurrence; extra tables get fresh
    // occurrence ids nq, nq+1, ...
    let mut occ_map: Vec<OccId> = Vec::with_capacity(assign.len());
    let mut extras: Vec<OccId> = Vec::new();
    let mut next = nq;
    for a in assign {
        match a {
            Some(q) => occ_map.push(*q),
            None => {
                occ_map.push(OccId(next));
                extras.push(OccId(next));
                next += 1;
            }
        }
    }
    let mapf = |o: OccId| occ_map[o.0 as usize];

    // Extended query equivalence classes (section 3.2: "we merely simulate
    // the addition of extra tables by updating query equivalence classes").
    // Cloning the query's union-find per candidate is pure overhead when
    // the view brings no extra tables — the common case borrows it. The
    // view's classes rebased into query space (needed for the FK graph)
    // are likewise only built on this rare path: the occurrence
    // substitution is injective, so distinct view classes stay distinct.
    let mut qec_owned: Option<EquivClasses> = None;
    if !extras.is_empty() {
        let mut vec_q = EquivClasses::new();
        for class in &pv.nontrivial_ecs {
            for pair in class.windows(2) {
                vec_q.union(remap_col(pair[0], &mapf), remap_col(pair[1], &mapf));
            }
        }
        let occs: Vec<(OccId, TableId)> =
            view.expr.occurrences().map(|(o, t)| (mapf(o), t)).collect();
        let nullable_ok =
            |c: ColRef| config.null_rejecting_fk && c.occ.0 < nq && is_null_rejecting(qsum, c);
        let graph = build_fk_graph(catalog, &occs, &vec_q, &nullable_ok);
        let elim = eliminate(&graph, &|o| extras.contains(&o));
        if elim.remaining.iter().any(|o| extras.contains(o)) {
            return None;
        }
        // Replay the join conditions of the deleted edges into the query's
        // equivalence classes.
        let mut q = qsum.ec.clone();
        for e in &elim.deleted_edges {
            for (f, c) in &e.col_pairs {
                q.union(*f, *c);
            }
        }
        qec_owned = Some(q);
    }
    let qec: &EquivClasses = qec_owned.as_ref().unwrap_or(&qsum.ec);

    // The three subsumption *tests* run before any substitute
    // construction: most candidates the filter tree lets through die in
    // one of them, and none of the tests needs the view-output maps or a
    // template remap. Rejected-is-rejected, so running the tests ahead of
    // the type-1 compensation (which can also reject, on an unmappable
    // output) leaves the accept set and the built substitutes unchanged.

    // ---- Equijoin subsumption test (section 3.1.2) ----
    // Every non-trivial view equivalence class must be a subset of some
    // query equivalence class.
    for class in &pv.nontrivial_ecs {
        let root = qec.find(remap_col(class[0], &mapf));
        if class[1..]
            .iter()
            .any(|&c| qec.find(remap_col(c, &mapf)) != root)
        {
            return None;
        }
    }

    // ---- Range subsumption test (type 2) ----
    // Rebase the query ranges onto the extended equivalence classes. With
    // no extra tables the rebase is the identity — the summary keys its
    // range maps by canonical class roots of the query's own classes —
    // so the common case borrows the summary's maps.
    let qranges_owned: Option<HashMap<ColRef, Interval>> = if extras.is_empty() {
        None
    } else {
        Some(rebase_ranges(&qsum.ranges, qec)?)
    };
    let qranges: &HashMap<ColRef, Interval> = qranges_owned.as_ref().unwrap_or(&qsum.ranges);
    // Every view range must contain the corresponding query range. The
    // prepared range list is sorted by class representative, so `veff`
    // accumulates in a deterministic order.
    let mut veff: HashMap<ColRef, Interval> = HashMap::new();
    for (vroot, iv) in &pv.ranges {
        let c = remap_col(*vroot, &mapf);
        let qroot = qec.find(c);
        let qiv = qranges.get(&qroot).cloned().unwrap_or_default();
        if iv.contains(&qiv) != Some(true) {
            return None;
        }
        let eff = veff.remove(&qroot).unwrap_or_default();
        veff.insert(qroot, eff.intersect(iv)?);
    }

    // ---- Residual subsumption test (type 3) ----
    // Matching the remapped view template in place avoids cloning every
    // template's text per candidate (`remap_template` allocates).
    let same = |a: ColRef, b: ColRef| a == b || qec.same(a, b);
    let v_matches_q = |vt: &Template, qt: &Template| {
        vt.text == qt.text
            && vt.cols.len() == qt.cols.len()
            && vt
                .cols
                .iter()
                .zip(&qt.cols)
                .all(|(&a, &b)| same(remap_col(a, &mapf), b))
    };
    // Every view residual must match a query residual, else the view may
    // lack required rows.
    for vt in &pv.summary.residuals {
        if !qsum.residuals.iter().any(|qt| v_matches_q(vt, qt)) {
            return None;
        }
    }

    // All tests passed — invert the occurrence assignment and build the
    // compensations against the precomputed view-space output maps.
    let inv = {
        let mut inv = vec![0u32; occ_map.len()];
        for (vi, q) in occ_map.iter().enumerate() {
            inv[q.0 as usize] = vi as u32;
        }
        inv
    };
    let ctx = OutputCtx {
        pv,
        occ_map: &occ_map,
        inv,
        backjoin_active: std::cell::RefCell::new(Vec::new()),
    };
    let qix_owned: Option<ClassIndex> = if extras.is_empty() {
        None
    } else {
        Some(qec.class_index())
    };
    let qix: &ClassIndex = qix_owned.as_ref().unwrap_or(&pq.ec_index);
    let mut predicates: Vec<BoolExpr> = Vec::new();

    // ---- Compensating column-equality predicates (section 3.1.3 type 1) --
    // "Whenever some view equivalence classes E1..En map to the same query
    // equivalence class E, we create a column-equality predicate between
    // any column in Ei and any column in Ei+1." These reroute through the
    // VIEW equivalence classes; a query column outside every view class is
    // its own singleton. (Each class contributes an independent predicate
    // group and the list is sorted below, so iterating classes by root
    // instead of by smallest member changes nothing observable.)
    for qclass in qix.nontrivial() {
        let mut parts: Vec<(VClassKey, ColRef)> = Vec::new(); // (view class, representative)
        for &c in qclass {
            let v = ctx.to_view(c);
            let key = match pv.ec_class.get(&v) {
                Some(&i) => VClassKey::Class(i),
                None => VClassKey::Solo(v),
            };
            if !parts.iter().any(|(k, _)| *k == key) {
                parts.push((key, c));
            }
        }
        for w in parts.windows(2) {
            let a = ctx.find_position_v(w[0].1)?;
            let b = ctx.find_position_v(w[1].1)?;
            predicates.push(BoolExpr::cmp(out_col(a), mv_expr::CmpOp::Eq, out_col(b)));
        }
    }

    // ---- Range compensation (type 2) ----
    // Enforce the query bounds that the view does not already guarantee —
    // only the *genuine* bounds: check-derived bounds hold on every view
    // row. Deterministic order for reproducible substitutes.
    let gen_owned: Option<HashMap<ColRef, Interval>> = if extras.is_empty() {
        None
    } else {
        Some(rebase_ranges(&qsum.genuine_ranges, qec)?)
    };
    let gen_ranges: &HashMap<ColRef, Interval> = gen_owned.as_ref().unwrap_or(&qsum.genuine_ranges);
    let mut qrange_list: Vec<(&ColRef, &Interval)> = gen_ranges.iter().collect();
    qrange_list.sort_by_key(|(c, _)| **c);
    for (qroot, qiv) in qrange_list {
        let viv = veff.get(qroot).cloned().unwrap_or_default();
        let comps = viv.compensation(qiv);
        if comps.is_empty() {
            continue;
        }
        // Route through QUERY equivalence classes (section 3.1.3 point 2).
        // `qroot` is a class *representative*, which depends on the
        // union-fold order — canonical_position scans the sorted class so
        // the emitted predicate does not (fingerprint-equal queries must
        // produce byte-identical substitutes; see `crate::cache`).
        let pos = ctx.canonical_position(*qroot, qec, qix)?;
        for (op, value) in comps {
            predicates.push(BoolExpr::cmp(out_col(pos), op, ScalarExpr::Literal(value)));
        }
    }

    // ---- Residual compensation (type 3) ----
    // Query residuals missing from the view must be enforced on top.
    // Check-constraint-derived residuals (beyond `genuine_residuals`) hold
    // on every view row already and are never compensated.
    for (qt, qb) in qsum
        .residuals
        .iter()
        .zip(&qsum.residual_bools)
        .take(qsum.genuine_residuals)
    {
        if pv.summary.residuals.iter().any(|vt| v_matches_q(vt, qt)) {
            continue;
        }
        let mapped = qb.try_map_columns(&mut |c| {
            ctx.find_position(c, qec, qix)
                .map(|p| ColRef::new(0, p as u32))
        })?;
        predicates.push(mapped);
    }

    // ---- Output expressions (sections 3.1.4 and 3.3) ----
    let output = build_output(query, view.expr.is_aggregate(), qec, qix, &ctx)?;

    // Canonical predicate order: the compensations above are emitted in
    // an order that can follow the query's conjunct order (residuals) or
    // class representatives (ranges) — both of which differ between
    // fingerprint-equal queries. Sorting by rendered text makes the
    // substitute depend only on the predicate *set*.
    predicates.sort_by_cached_key(|p| p.to_string());

    Some(Substitute {
        view: view_id,
        backjoins: ctx.take_backjoins(),
        predicates,
        output,
        // The engine's freshness enforcement overrides this per candidate;
        // direct `match_view` callers see the static-catalog default.
        freshness: Freshness::Fresh,
    })
}

/// Type-1 compensation key: the view equivalence class a query column
/// lands in, or the (translated) column itself when it is outside every
/// view class. Distinct keys need a compensating equality; see
/// `try_match`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VClassKey {
    Class(u32),
    Solo(ColRef),
}

/// Rebase a summary range map onto extended equivalence classes: entries
/// whose roots collapse into one class under the extension intersect
/// (`None` when an intersection comes up empty — no row satisfies the
/// extended query, so no substitute exists under this mapping).
fn rebase_ranges(
    src: &HashMap<ColRef, Interval>,
    qec: &EquivClasses,
) -> Option<HashMap<ColRef, Interval>> {
    let mut out: HashMap<ColRef, Interval> = HashMap::with_capacity(src.len());
    for (root, iv) in src {
        let r = qec.find(*root);
        match out.remove(&r) {
            Some(prev) => {
                out.insert(r, prev.intersect(iv)?);
            }
            None => {
                out.insert(r, iv.clone());
            }
        }
    }
    Some(out)
}

/// Construct the substitute's output list.
fn build_output(
    query: &SpjgExpr,
    view_is_aggregate: bool,
    qec: &EquivClasses,
    qix: &ClassIndex,
    ctx: &OutputCtx<'_>,
) -> Option<OutputList> {
    // Cross-space relation for SUM-argument templates: the stored view
    // template columns translate to query space before the equivalence
    // probe.
    let same = |a: ColRef, b: ColRef| {
        let aq = ctx.to_query(a);
        aq == b || qec.same(aq, b)
    };
    match &query.output {
        OutputList::Spj(items) => {
            // The caller already rejected (SPJ query, aggregate view).
            let mapped = items
                .iter()
                .map(|ne| {
                    map_scalar(&ne.expr, qec, qix, ctx).map(|e| NamedExpr::new(e, ne.name.clone()))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(OutputList::Spj(mapped))
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } if !view_is_aggregate => {
            // Aggregation query over an SPJ view: group the view directly.
            let gb = group_by
                .iter()
                .map(|ne| {
                    map_scalar(&ne.expr, qec, qix, ctx).map(|e| NamedExpr::new(e, ne.name.clone()))
                })
                .collect::<Option<Vec<_>>>()?;
            let aggs = aggregates
                .iter()
                .map(|na| {
                    let func = match &na.func {
                        AggFunc::CountStar => AggFunc::CountStar,
                        AggFunc::Sum(e) => AggFunc::Sum(map_scalar(e, qec, qix, ctx)?),
                        AggFunc::SumZero(e) => AggFunc::SumZero(map_scalar(e, qec, qix, ctx)?),
                    };
                    Some(NamedAgg::new(func, na.name.clone()))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(OutputList::Aggregate {
                group_by: gb,
                aggregates: aggs,
            })
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            // Aggregation query over an aggregation view (section 3.3):
            // the view must be no more aggregated than the query, i.e.
            // every query grouping expression maps onto the view's
            // grouping outputs.
            let gb_mapped = group_by
                .iter()
                .map(|ne| map_scalar(&ne.expr, qec, qix, ctx))
                .collect::<Option<Vec<_>>>()?;
            // Positions of directly-matched view grouping outputs.
            let direct: Vec<Option<usize>> = gb_mapped
                .iter()
                .map(|e| {
                    e.as_column()
                        .map(|c| c.col.0 as usize)
                        .filter(|&p| p < ctx.pv.outputs.scalar_len)
                })
                .collect();
            // No further aggregation is needed exactly when the query
            // grouping list covers every view grouping output.
            let no_regroup = direct.iter().all(|d| d.is_some())
                && (0..ctx.pv.outputs.scalar_len).all(|p| direct.contains(&Some(p)));
            if no_regroup {
                let mut items: Vec<NamedExpr> = group_by
                    .iter()
                    .zip(&gb_mapped)
                    .map(|(ne, e)| NamedExpr::new(e.clone(), ne.name.clone()))
                    .collect();
                for na in aggregates {
                    let e = match &na.func {
                        AggFunc::CountStar => out_col(ctx.pv.outputs.count_pos?),
                        AggFunc::Sum(arg) | AggFunc::SumZero(arg) => {
                            out_col(find_sum(ctx, arg, &same)?)
                        }
                    };
                    items.push(NamedExpr::new(e, na.name.clone()));
                }
                Some(OutputList::Spj(items))
            } else {
                let gb = group_by
                    .iter()
                    .zip(&gb_mapped)
                    .map(|(ne, e)| NamedExpr::new(e.clone(), ne.name.clone()))
                    .collect();
                let aggs = aggregates
                    .iter()
                    .map(|na| {
                        let func = match &na.func {
                            // count(*) rolls up as a zero-defaulting SUM
                            // over the view's count column.
                            AggFunc::CountStar => {
                                AggFunc::SumZero(out_col(ctx.pv.outputs.count_pos?))
                            }
                            AggFunc::Sum(arg) => AggFunc::Sum(out_col(find_sum(ctx, arg, &same)?)),
                            AggFunc::SumZero(arg) => {
                                AggFunc::SumZero(out_col(find_sum(ctx, arg, &same)?))
                            }
                        };
                        Some(NamedAgg::new(func, na.name.clone()))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(OutputList::Aggregate {
                    group_by: gb,
                    aggregates: aggs,
                })
            }
        }
    }
}

/// Find a view `SUM(E')` output whose argument matches `arg` exactly,
/// taking column equivalences into account (section 3.3: "If the query
/// output contains a SUM(E) ... we require that the view contain an output
/// column that matches exactly").
fn find_sum(
    ctx: &OutputCtx<'_>,
    arg: &ScalarExpr,
    same: &impl Fn(ColRef, ColRef) -> bool,
) -> Option<usize> {
    let t = Template::of_scalar(arg);
    ctx.pv
        .outputs
        .sum_args
        .iter()
        .find(|(vt, _)| vt.matches(&t, same))
        .map(|(_, pos)| *pos)
}
