//! The view-matching algorithm and filter-tree index of Goldstein & Larson,
//! *"Optimizing Queries Using Materialized Views: A Practical, Scalable
//! Solution"* (SIGMOD 2001).
//!
//! The central entry point is [`MatchingEngine`]: register materialized
//! views once, then call [`MatchingEngine::find_substitutes`] for every SPJG
//! expression the optimizer wants rewritten. Candidate views are narrowed
//! with a [`filter::FilterTree`] (section 4) and then checked with the full
//! matching tests of section 3 ([`matching::match_view`]), producing
//! [`mv_plan::Substitute`] expressions that compute the query from a view.
//!
//! ```
//! use mv_catalog::tpch::tpch_catalog;
//! use mv_core::{MatchConfig, MatchingEngine};
//! use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
//! use mv_plan::{NamedExpr, SpjgExpr, ViewDef};
//!
//! let (catalog, t) = tpch_catalog();
//! let mut engine = MatchingEngine::new(catalog, MatchConfig::default());
//!
//! // Materialize: SELECT p_partkey, p_size FROM part WHERE p_size < 100
//! let view = SpjgExpr::spj(
//!     vec![t.part],
//!     BoolExpr::cmp(S::col(ColRef::new(0, 5)), CmpOp::Lt, S::lit(100i64)),
//!     vec![
//!         NamedExpr::new(S::col(ColRef::new(0, 0)), "p_partkey"),
//!         NamedExpr::new(S::col(ColRef::new(0, 5)), "p_size"),
//!     ],
//! );
//! engine.add_view(ViewDef::new("small_parts", view)).unwrap();
//!
//! // Query: SELECT p_partkey FROM part WHERE p_size < 50
//! let query = SpjgExpr::spj(
//!     vec![t.part],
//!     BoolExpr::cmp(S::col(ColRef::new(0, 5)), CmpOp::Lt, S::lit(50i64)),
//!     vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "p_partkey")],
//! );
//! let subs = engine.find_substitutes(&query);
//! assert_eq!(subs.len(), 1); // computable from the view, with p_size < 50 compensation
//! ```

pub mod cache;
pub mod descriptor;
pub mod engine;
pub mod filter;
pub mod fkgraph;
pub mod lattice;
pub mod matching;
#[cfg(test)]
mod matching_tests;
#[cfg(mv_model)]
pub mod mutation;
pub mod stats;
pub mod summary;

pub use cache::{fingerprint, CacheLookup, Fingerprint, SubstituteCache};
pub use descriptor::{sorted_intersects, sorted_subset, PackedCatalog, PreparedView, SEG_VIEWS};
pub use engine::{
    col_token, decode_col_token, strict_filter_exempt_levels, table_token, ChecksGuard,
    MatchingEngine, PackedGuard, ViewsGuard, AGG_LEVELS, LEVEL_NAMES, SPJ_LEVELS, UNKNOWN_TOKEN,
};
pub use filter::{FilterTree, LevelSearch};
pub use lattice::LatticeIndex;
pub use matching::{match_view, match_view_prepared, FreshnessPolicy, MatchConfig, PreparedQuery};
pub use stats::MatchStats;
pub use summary::ExprSummary;
