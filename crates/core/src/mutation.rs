//! Seeded concurrency mutations for the model-checker corruption suite.
//!
//! Compiled only under `--cfg mv_model`. Each mutation weakens one edge
//! of the catalog's concurrency protocol; the corruption tests in
//! `tests/model_corruption.rs` assert that `mv_model::explore` pins
//! every one of them to a failing schedule with a replayable seed —
//! the concurrency analogue of mv-verify's soundness corruption suite.
//!
//! The selector itself uses a raw std atomic with SeqCst on purpose:
//! consulting it must not create a schedule point or participate in the
//! modeled memory, or the mutation would perturb the very interleavings
//! it is supposed to expose.

// mv-lint: allow(MV201)
use std::sync::atomic::{AtomicU32, Ordering};

/// No mutation active (the default).
pub const NONE: u32 = 0;
/// Writers skip the writer mutex: two concurrent clone-modify-publish
/// sequences can interleave and one registration is lost.
pub const SKIP_WRITER_LOCK: u32 = 1;
/// `add_view` publishes without bumping the epochs of the view's
/// tables: cached results computed before the registration keep
/// matching the new stamp and are served stale.
pub const SKIP_EPOCH_BUMP_ON_ADD: u32 = 2;
/// Cache entries are stamped from the currently *published* snapshot at
/// insert time instead of the pinned snapshot the results were computed
/// from.
pub const STAMP_AFTER_PUBLISH: u32 = 3;
/// `remove_view` publishes without bumping the removed view's table
/// epochs: stale cache entries keep serving the dropped view.
pub const SKIP_EPOCH_BUMP_ON_REMOVE: u32 = 4;
/// The cache-miss counter is not recorded: the quiescent invariant
/// `cache_hits + cache_misses == invocations` breaks.
pub const SKIP_CACHE_MISS_STAT: u32 = 5;

static ACTIVE: AtomicU32 = AtomicU32::new(NONE);

/// Activate one mutation (or [`NONE`]). Test-only by construction: the
/// module does not exist outside `--cfg mv_model` builds.
pub fn set(mutation: u32) {
    ACTIVE.store(mutation, Ordering::SeqCst);
}

/// Is `mutation` the active one?
pub fn active(mutation: u32) -> bool {
    ACTIVE.load(Ordering::SeqCst) == mutation && mutation != NONE
}
