//! The foreign-key join graph and cardinality-preserving-join elimination
//! of section 3.2, plus the hub computation of section 4.2.2.
//!
//! "A join between tables T and S is cardinality preserving if every row in
//! T joins with exactly one row in S. ... An equijoin between all columns
//! in a non-null foreign key in T and a unique key in S has this property."
//!
//! Nodes are table *occurrences*; there is an edge `Ti -> Tj` if the
//! expression specifies (directly or transitively, i.e. via equivalence
//! classes) an equijoin between all columns of a foreign key of `Ti` and
//! the referenced unique key of `Tj`, and the foreign-key columns are
//! non-null (or, with the section 3.2 extension enabled, covered by a
//! null-rejecting query predicate).

use mv_catalog::{Catalog, TableId};
use mv_expr::{ColRef, EquivClasses, OccId};

/// One cardinality-preserving join edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkEdge {
    /// Referencing occurrence (the table being extended).
    pub from: OccId,
    /// Referenced occurrence (the table that can be absorbed).
    pub to: OccId,
    /// `(foreign key column on from, unique key column on to)` pairs.
    pub col_pairs: Vec<(ColRef, ColRef)>,
}

/// The foreign-key join graph of one expression.
#[derive(Debug, Clone)]
pub struct FkGraph {
    /// The occurrences (nodes), with their base tables.
    pub occs: Vec<(OccId, TableId)>,
    /// The cardinality-preserving edges.
    pub edges: Vec<FkEdge>,
}

impl FkGraph {
    /// Per occurrence: does any cardinality-preserving edge point at it?
    /// `n_occs` is the expression's occurrence count (flag `i` answers for
    /// `OccId(i)`). The prepared view descriptor stores this: a mapping
    /// that leaves an edge-less view occurrence unassigned can be rejected
    /// before any per-probe graph is built.
    pub fn incoming_flags(&self, n_occs: usize) -> Vec<bool> {
        let mut flags = vec![false; n_occs];
        for e in &self.edges {
            flags[e.to.0 as usize] = true;
        }
        flags
    }
}

/// Build the graph. `ec` is the expression's column equivalence classes —
/// "to capture transitive equijoin conditions correctly we must use the
/// equivalence classes when adding edges".
///
/// `nullable_ok` decides whether a *nullable* foreign-key column may still
/// support an edge (the Example 5 extension: a null-rejecting predicate in
/// the query discards the NULL rows anyway). Pass `|_| false` for the
/// strict rule.
pub fn build_fk_graph(
    catalog: &Catalog,
    occs: &[(OccId, TableId)],
    ec: &EquivClasses,
    nullable_ok: &dyn Fn(ColRef) -> bool,
) -> FkGraph {
    let mut edges = Vec::new();
    for &(from_occ, from_table) in occs {
        for fk_id in catalog.foreign_keys_from(from_table) {
            let fk = catalog.foreign_key(fk_id);
            // Non-null requirement per referencing column (with relaxation).
            let from_cols_ok = fk.from_columns.iter().all(|&c| {
                let col = ColRef {
                    occ: from_occ,
                    col: c,
                };
                catalog.table(from_table).column(c).not_null || nullable_ok(col)
            });
            if !from_cols_ok {
                continue;
            }
            for &(to_occ, to_table) in occs {
                if to_occ == from_occ || to_table != fk.to_table {
                    continue;
                }
                // The expression must equate every FK column with the
                // corresponding key column (through equivalence classes).
                let joined = fk.from_columns.iter().zip(&fk.to_columns).all(|(&f, &c)| {
                    ec.same(
                        ColRef {
                            occ: from_occ,
                            col: f,
                        },
                        ColRef {
                            occ: to_occ,
                            col: c,
                        },
                    )
                });
                if joined {
                    edges.push(FkEdge {
                        from: from_occ,
                        to: to_occ,
                        col_pairs: fk
                            .from_columns
                            .iter()
                            .zip(&fk.to_columns)
                            .map(|(&f, &c)| {
                                (
                                    ColRef {
                                        occ: from_occ,
                                        col: f,
                                    },
                                    ColRef {
                                        occ: to_occ,
                                        col: c,
                                    },
                                )
                            })
                            .collect(),
                    });
                }
            }
        }
    }
    FkGraph {
        occs: occs.to_vec(),
        edges,
    }
}

/// Result of running the elimination loop.
#[derive(Debug, Clone)]
pub struct Elimination {
    /// Occurrences that could not be eliminated.
    pub remaining: Vec<OccId>,
    /// Edges deleted during elimination, in deletion order. The matcher
    /// replays their join conditions into the query's equivalence classes.
    pub deleted_edges: Vec<FkEdge>,
}

/// Run the elimination of section 3.2: "We repeatedly delete any node that
/// has no outgoing edges and exactly one incoming edge. When a node is
/// deleted, its incoming edge is also deleted, which may make another node
/// deletable."
///
/// `deletable` restricts which nodes may be removed: for view matching only
/// the extra tables are deletable; for hub computation every non-anchored
/// node is.
pub fn eliminate(graph: &FkGraph, deletable: &dyn Fn(OccId) -> bool) -> Elimination {
    let mut alive: Vec<OccId> = graph.occs.iter().map(|&(o, _)| o).collect();
    let mut edges: Vec<FkEdge> = graph.edges.clone();
    let mut deleted_edges = Vec::new();
    loop {
        let victim = alive.iter().copied().find(|&o| {
            deletable(o)
                && edges.iter().filter(|e| e.from == o).count() == 0
                && edges.iter().filter(|e| e.to == o).count() == 1
        });
        let Some(victim) = victim else { break };
        alive.retain(|&o| o != victim);
        let idx = edges
            .iter()
            .position(|e| e.to == victim)
            .expect("victim had one incoming edge");
        deleted_edges.push(edges.remove(idx));
    }
    Elimination {
        remaining: alive,
        deleted_edges,
    }
}

/// Compute the hub of a view (section 4.2.2): run elimination until no
/// further tables can be removed. With `refined` set, occurrences carrying
/// a range or residual predicate on a column outside every non-trivial
/// equivalence class are kept in the hub ("we can leave T in the hub"
/// because such a predicate makes the join non-cardinality-preserving for
/// matching purposes).
pub fn compute_hub(graph: &FkGraph, anchored: &dyn Fn(OccId) -> bool) -> Vec<TableId> {
    let result = eliminate(graph, &|o| !anchored(o));
    let mut tables: Vec<TableId> = result
        .remaining
        .iter()
        .map(|&o| {
            graph
                .occs
                .iter()
                .find(|&&(oo, _)| oo == o)
                .expect("occurrence")
                .1
        })
        .collect();
    tables.sort();
    tables.dedup();
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    /// lineitem(0) -> orders(1) -> customer(2), as in Example 3.
    fn example3_graph() -> FkGraph {
        let (cat, t) = tpch_catalog();
        let mut ec = EquivClasses::new();
        ec.union(cr(0, 0), cr(1, 0)); // l_orderkey = o_orderkey
        ec.union(cr(1, 1), cr(2, 0)); // o_custkey = c_custkey
        build_fk_graph(
            &cat,
            &[
                (OccId(0), t.lineitem),
                (OccId(1), t.orders),
                (OccId(2), t.customer),
            ],
            &ec,
            &|_| false,
        )
    }

    #[test]
    fn edges_follow_fk_equijoins() {
        let g = example3_graph();
        assert_eq!(g.edges.len(), 2);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == OccId(0) && e.to == OccId(1)));
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == OccId(1) && e.to == OccId(2)));
    }

    #[test]
    fn example3_elimination_order() {
        // "The customer node can be deleted because it has no outgoing
        // edges and one incoming edge. ... Now orders has no outgoing edges
        // and can be removed."
        let g = example3_graph();
        let extras = [OccId(1), OccId(2)];
        let result = eliminate(&g, &|o| extras.contains(&o));
        assert_eq!(result.remaining, vec![OccId(0)]);
        assert_eq!(result.deleted_edges.len(), 2);
        // customer (via orders->customer edge) goes first.
        assert_eq!(result.deleted_edges[0].to, OccId(2));
        assert_eq!(result.deleted_edges[1].to, OccId(1));
    }

    #[test]
    fn elimination_respects_deletable_restriction() {
        let g = example3_graph();
        // Only customer is deletable: orders stays.
        let result = eliminate(&g, &|o| o == OccId(2));
        assert_eq!(result.remaining, vec![OccId(0), OccId(1)]);
        assert_eq!(result.deleted_edges.len(), 1);
    }

    #[test]
    fn missing_equijoin_blocks_edge() {
        let (cat, t) = tpch_catalog();
        // No join predicates at all: no edges.
        let g = build_fk_graph(
            &cat,
            &[(OccId(0), t.lineitem), (OccId(1), t.orders)],
            &EquivClasses::new(),
            &|_| false,
        );
        assert!(g.edges.is_empty());
    }

    #[test]
    fn partial_composite_fk_blocks_edge() {
        let (cat, t) = tpch_catalog();
        // lineitem -> partsupp needs BOTH l_partkey=ps_partkey and
        // l_suppkey=ps_suppkey; only one is present.
        let mut ec = EquivClasses::new();
        ec.union(cr(0, 1), cr(1, 0)); // l_partkey = ps_partkey only
        let g = build_fk_graph(
            &cat,
            &[(OccId(0), t.lineitem), (OccId(1), t.partsupp)],
            &ec,
            &|_| false,
        );
        assert!(g.edges.is_empty());
        // With both columns equated the edge appears.
        ec.union(cr(0, 2), cr(1, 1));
        let g = build_fk_graph(
            &cat,
            &[(OccId(0), t.lineitem), (OccId(1), t.partsupp)],
            &ec,
            &|_| false,
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].col_pairs.len(), 2);
    }

    #[test]
    fn nullable_fk_respects_relaxation() {
        use mv_catalog::schema::{ForeignKey, TableBuilder};
        use mv_catalog::{Catalog, ColumnType};
        // T(f nullable) -> S(k unique).
        let mut cat = Catalog::new();
        let tid = cat.add_table(
            TableBuilder::new("t")
                .nullable_col("f", ColumnType::Int)
                .build(),
        );
        let sid = cat.add_table(
            TableBuilder::new("s")
                .col("k", ColumnType::Int)
                .primary_key(&["k"])
                .build(),
        );
        cat.add_foreign_key(ForeignKey {
            name: "t_f".into(),
            from_table: tid,
            from_columns: vec![mv_catalog::ColumnId(0)],
            to_table: sid,
            to_columns: vec![mv_catalog::ColumnId(0)],
        });
        let mut ec = EquivClasses::new();
        ec.union(cr(0, 0), cr(1, 0));
        let occs = [(OccId(0), tid), (OccId(1), sid)];
        // Strict rule: no edge (Example 5 before the extension).
        let g = build_fk_graph(&cat, &occs, &ec, &|_| false);
        assert!(g.edges.is_empty());
        // Relaxed rule: edge exists when the query null-rejects T.f.
        let g = build_fk_graph(&cat, &occs, &ec, &|c| c == cr(0, 0));
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn hub_of_example3_is_lineitem() {
        let g = example3_graph();
        let (_, t) = tpch_catalog();
        let hub = compute_hub(&g, &|_| false);
        assert_eq!(hub, vec![t.lineitem]);
        // Anchoring orders (e.g. a range predicate on o_totalprice) keeps
        // it — and everything upstream of nothing — in the hub.
        let hub = compute_hub(&g, &|o| o == OccId(1));
        let mut expected = vec![t.lineitem, t.orders];
        expected.sort();
        assert_eq!(hub, expected);
    }

    #[test]
    fn diamond_with_two_incoming_edges_not_deletable() {
        let (cat, t) = tpch_catalog();
        // lineitem -> part and partsupp -> part: part has two incoming
        // edges, so it cannot be eliminated while both sources remain.
        let mut ec = EquivClasses::new();
        ec.union(cr(0, 1), cr(2, 0)); // l_partkey = p_partkey
        ec.union(cr(1, 0), cr(2, 0)); // ps_partkey = p_partkey
        let g = build_fk_graph(
            &cat,
            &[
                (OccId(0), t.lineitem),
                (OccId(1), t.partsupp),
                (OccId(2), t.part),
            ],
            &ec,
            &|_| false,
        );
        // part cannot be deleted (two incoming).
        let result = eliminate(&g, &|o| o == OccId(2));
        assert!(result.remaining.contains(&OccId(2)));
    }
}
