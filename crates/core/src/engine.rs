//! The matching engine: view registration, filter-tree maintenance, and
//! the `find_substitutes` entry point that a transformation-based optimizer
//! invokes as its view-matching rule.

use crate::cache::{fingerprint, CacheLookup, Fingerprint, SubstituteCache};
use crate::descriptor::{PackedCatalog, PackedProbe, PreparedView};
use crate::filter::{FilterTree, LevelSearch};
use crate::fkgraph::{build_fk_graph, compute_hub};
use crate::matching::{match_view_prepared, MatchConfig, PreparedQuery};
use crate::stats::{AtomicMatchStats, MatchStats};
use crate::summary::ExprSummary;
use mv_catalog::{Catalog, ColumnId, TableId};
use mv_expr::{classify, BoolExpr, ColRef, Conjunct, OccId, Template};
use mv_parallel::sync::{lock_or_recover, Arc, Mutex, MutexGuard};
use mv_parallel::Published;
use mv_plan::{AggFunc, Freshness, OutputList, SpjgExpr, Substitute, ViewDef, ViewId, ViewSet};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Number of filter-tree levels for SPJ views (hub, source tables, output
/// expressions, output columns, residual predicates, range-constrained
/// columns).
pub const SPJ_LEVELS: usize = 6;
/// Aggregation views add grouping expressions and grouping columns.
pub const AGG_LEVELS: usize = 8;

/// Human-readable names of the filter-tree levels, in key order (the
/// first [`SPJ_LEVELS`] apply to the SPJ tree). Diagnostics use these to
/// say *which* partitioning condition wrongly pruned a view.
pub const LEVEL_NAMES: [&str; AGG_LEVELS] = [
    "hub",
    "source-tables",
    "output-exprs",
    "output-cols",
    "residuals",
    "range-cols",
    "grouping-exprs",
    "grouping-cols",
];

/// Filter-tree levels at which the paper-faithful strict expression
/// filter ([`MatchConfig::strict_expression_filter`], section 4.2.7) is
/// *deliberately* incomplete: the matcher can recompute a complex output
/// expression from a view's plain columns, but the strict filter requires
/// the rendered template to appear in the view's output-expression key.
/// A view pruned *only* at these levels while the matcher accepts it is
/// documented conservatism, not an index fault; any other rejecting level
/// is a genuine completeness violation (rule MV102).
pub fn strict_filter_exempt_levels(is_aggregate_view: bool) -> &'static [usize] {
    if is_aggregate_view {
        &[2, 6]
    } else {
        &[2]
    }
}

/// String interner mapping template texts to filter-key tokens.
///
/// Tokens are minted only on the **write path** (`add_view`), which
/// builds the next immutable catalog snapshot; the query-side read path
/// uses [`Interner::lookup`] against its pinned snapshot, which never
/// allocates or mutates. This is what lets the interner live lock-free
/// inside [`CatalogSnapshot`], and it also keeps the map's size
/// proportional to the registered views instead of growing with every
/// distinct query ever matched.
#[derive(Debug, Default, Clone)]
struct Interner {
    map: HashMap<String, u64>,
}

/// Query-side token for a template text no registered view ever produced.
/// Real tokens are minted sequentially from 0, so this value cannot
/// collide. In a superset-level search an unknown token correctly empties
/// the result (no view key contains it); in a subset-level search it
/// merely widens the allowed set, which is equally harmless.
pub const UNKNOWN_TOKEN: u64 = u64::MAX;

impl Interner {
    /// Token for `s`, minting one only if the text was never seen —
    /// lookup first, so the common already-interned case allocates
    /// nothing.
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&t) = self.map.get(s) {
            return t;
        }
        let next = self.map.len() as u64;
        self.map.insert(s.to_string(), next);
        next
    }

    /// Read-only token lookup for the query path.
    fn lookup(&self, s: &str) -> u64 {
        self.map.get(s).copied().unwrap_or(UNKNOWN_TOKEN)
    }
}

/// Token for a base table. Public so `mv-audit` can decode and rebuild
/// level keys when validating the stored index entries.
pub fn table_token(t: TableId) -> u64 {
    t.0 as u64
}

/// Token for a base-qualified column. The filter tree compares columns at
/// the base-table level (not per occurrence), which is exact for
/// expressions without self-joins and conservative (never drops a valid
/// candidate) with them.
pub fn col_token(table: TableId, col: ColumnId) -> u64 {
    ((table.0 as u64) << 32) | col.0 as u64
}

/// Inverse of [`col_token`]: the `(table, column)` pair a column-level
/// key token denotes. Meaningful only for tokens taken from a
/// column-keyed filter level.
pub fn decode_col_token(token: u64) -> (TableId, ColumnId) {
    (TableId((token >> 32) as u32), ColumnId(token as u32))
}

fn base_col_token(expr: &SpjgExpr, c: ColRef) -> u64 {
    col_token(expr.table_of(c.occ), c.col)
}

/// One immutable catalog state: the view registry, the prepared match
/// descriptors, both filter trees, the interner, the check constraints and
/// the removal set, published as a unit.
///
/// Every field a reader touches lives here, so a matcher that pins one
/// snapshot sees one coherent catalog for its whole match — never a
/// half-registered view (say, a registry entry whose filter-tree keys are
/// not filed yet). Writers clone the snapshot (cheap: the registry stores
/// `Arc`'d definitions, descriptors are `Arc`'d, and the filter trees
/// share untouched subtrees structurally), apply their change to the
/// clone, and publish it atomically.
#[derive(Debug, Clone)]
struct CatalogSnapshot {
    /// The registered views (slots and names of removed views stay
    /// reserved).
    views: ViewSet,
    /// The arena-packed match descriptors, parallel to `views`: the
    /// candidate scan's prefilter reads the packed spans, survivors read
    /// the `Arc`'d cold descriptors behind them.
    packed: PackedCatalog,
    spj_tree: Arc<FilterTree>,
    agg_tree: Arc<FilterTree>,
    interner: Arc<Interner>,
    /// Check constraints per table, pre-classified, with column references
    /// in table space (`occ = 0`).
    checks: Arc<HashMap<TableId, Vec<Conjunct>>>,
    /// Views dropped with `remove_view`. Matching skips them.
    removed: Arc<HashSet<ViewId>>,
    /// Per-table invalidation epochs, indexed by `TableId`. A write bumps
    /// exactly the tables it can affect (the view's tables, or the
    /// constraint's table); cached results are stamped with the epochs of
    /// their query's tables and go stale only when one of *those* moves.
    table_epochs: Vec<u64>,
    /// Per-table *data* epochs, indexed by `TableId`: how many base-table
    /// write rounds [`MatchingEngine::record_base_write`] has recorded.
    /// Distinct from `table_epochs` (which counts *catalog* changes —
    /// registrations, removals, constraints — for cache invalidation):
    /// data epochs measure how far a view's materialized state may trail
    /// the base data.
    data_epochs: Vec<u64>,
    /// Per-view data-epoch stamp: the data epochs of the view's distinct
    /// base tables (ascending by table) as of the view's registration or
    /// last [`MatchingEngine::mark_view_maintained`]. The gap between a
    /// stamp and `data_epochs` is the view's staleness lag.
    view_stamps: Arc<HashMap<ViewId, Vec<(TableId, u64)>>>,
    /// Monotone publication counter (diagnostics; every write bumps it).
    epoch: u64,
}

impl CatalogSnapshot {
    fn empty(catalog: &Catalog) -> CatalogSnapshot {
        CatalogSnapshot {
            views: ViewSet::new(),
            packed: PackedCatalog::new(),
            spj_tree: Arc::new(FilterTree::new(SPJ_LEVELS)),
            agg_tree: Arc::new(FilterTree::new(AGG_LEVELS)),
            interner: Arc::new(Interner::default()),
            checks: Arc::new(HashMap::new()),
            removed: Arc::new(HashSet::new()),
            table_epochs: vec![0; catalog.table_count()],
            data_epochs: vec![0; catalog.table_count()],
            view_stamps: Arc::new(HashMap::new()),
            epoch: 0,
        }
    }

    /// Bump the invalidation epoch of every given table.
    fn bump_tables(&mut self, tables: impl IntoIterator<Item = TableId>) {
        for t in tables {
            if let Some(e) = self.table_epochs.get_mut(t.0 as usize) {
                *e += 1;
            }
        }
        self.epoch += 1;
    }

    /// The per-table epoch stamp of a query: the epochs of its distinct
    /// source tables, ascending. Cached results carry the stamp they were
    /// computed under; equal renders reference equal table sets, so two
    /// stamps for the same fingerprint compare positionally.
    fn table_stamp(&self, query: &SpjgExpr) -> Vec<u64> {
        let mut tables: Vec<TableId> = query.tables.clone();
        tables.sort_unstable();
        tables.dedup();
        tables
            .iter()
            .map(|t| {
                self.table_epochs
                    .get(t.0 as usize)
                    .copied()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }

    fn live_view_count(&self) -> usize {
        self.views.len() - self.removed.len()
    }

    /// The current data epochs of a view's base tables, in stamp order.
    fn current_epochs_for(&self, stamp: &[(TableId, u64)]) -> Vec<(TableId, u64)> {
        stamp
            .iter()
            .map(|&(t, _)| (t, self.data_epochs.get(t.0 as usize).copied().unwrap_or(0)))
            .collect()
    }

    /// How many write rounds the view's materialized state trails the
    /// current base data: the largest per-table gap between the current
    /// data epochs and the view's stamp. Unstamped views (never possible
    /// for a registered view) count as fresh.
    fn view_lag(&self, id: ViewId) -> u64 {
        let Some(stamp) = self.view_stamps.get(&id) else {
            return 0;
        };
        stamp
            .iter()
            .map(|&(t, stamped)| {
                let cur = self.data_epochs.get(t.0 as usize).copied().unwrap_or(0);
                cur.saturating_sub(stamped)
            })
            .max()
            .unwrap_or(0)
    }
}

/// The engine owning the published catalog snapshot, the substitute cache
/// and the instrumentation counters.
///
/// # Concurrency
///
/// The engine is an *online catalog*: every method — registration
/// (`add_view`, `add_views`, `remove_view`, `add_check_constraint`) as
/// well as the whole matching path (`find_substitutes`,
/// `find_substitutes_batch`, `candidates`, `match_one`) — takes `&self`,
/// so writers run concurrently with matchers. Writers serialize among
/// themselves on an internal mutex, build the next immutable
/// [`CatalogSnapshot`] by copy-on-write, and publish it with one atomic
/// pointer swap; readers pin the current snapshot once per match and
/// never observe a half-applied change. A multi-threaded optimizer host
/// can therefore share one engine behind an `Arc`, match queries from any
/// number of threads, and register views mid-traffic; see also
/// [`MatchConfig::parallel_threshold`] for the intra-query fan-out of the
/// candidate loop.
#[derive(Debug)]
pub struct MatchingEngine {
    catalog: Catalog,
    config: MatchConfig,
    /// The atomically published catalog snapshot.
    shared: Published<CatalogSnapshot>,
    /// Serializes snapshot builders; never held by readers.
    writer: Mutex<()>,
    stats: AtomicMatchStats,
    /// Fingerprint-keyed cache of complete `find_substitutes` results,
    /// invalidated per table via the snapshot's `table_epochs`.
    cache: SubstituteCache,
}

// Compile-time guarantee that the engine stays shareable across threads:
// a reintroduced `RefCell`/`Rc` anywhere in its fields breaks the build
// here, not in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MatchingEngine>()
};

impl MatchingEngine {
    /// Create an engine over a schema.
    pub fn new(catalog: Catalog, config: MatchConfig) -> Self {
        let cache = SubstituteCache::new(
            config.substitute_cache_capacity,
            config.substitute_cache_shards,
        );
        let shared = Published::new(CatalogSnapshot::empty(&catalog));
        MatchingEngine {
            catalog,
            config,
            shared,
            writer: Mutex::new(()),
            stats: AtomicMatchStats::default(),
            cache,
        }
    }

    /// Pin the current catalog snapshot.
    fn snapshot(&self) -> Arc<CatalogSnapshot> {
        self.shared.load()
    }

    /// Serialize snapshot builders. Every clone-modify-publish sequence
    /// holds this guard for its whole duration; under the model checker
    /// the `SKIP_WRITER_LOCK` mutation drops it so the checker can prove
    /// the serialization is load-bearing.
    fn writer_guard(&self) -> Option<MutexGuard<'_, ()>> {
        #[cfg(mv_model)]
        if crate::mutation::active(crate::mutation::SKIP_WRITER_LOCK) {
            return None;
        }
        Some(lock_or_recover(&self.writer))
    }

    /// Drop a view from matching: it is removed from its filter tree and
    /// never considered again. The definition (and its name) stay
    /// registered — this mirrors dropping a cached query result, the
    /// intro's "cached results can be treated as temporary materialized
    /// views" scenario, where entries come and go. Runs concurrently with
    /// matching: in-flight matchers keep their pinned snapshot, new
    /// matches see the removal.
    pub fn remove_view(&self, id: ViewId) -> bool {
        let _writer = self.writer_guard();
        let cur = self.snapshot();
        if cur.removed.contains(&id) || (id.0 as usize) >= cur.views.len() {
            return false;
        }
        let mut next = (*cur).clone();
        drop(cur);
        let (keys, is_agg, tables) = {
            let def = next.views.get(id);
            let pv = next.packed.prepared(id);
            // Read-only token lookup: every text of a registered view was
            // interned when it was added.
            let keys = Self::view_keys(
                &self.catalog,
                &self.config,
                &mut |s| next.interner.lookup(s),
                &def.expr,
                &pv.summary,
            );
            let tables: Vec<TableId> = pv.tables().collect();
            (keys, def.expr.is_aggregate(), tables)
        };
        let in_tree = if is_agg {
            Arc::make_mut(&mut next.agg_tree).remove(&keys, id)
        } else {
            Arc::make_mut(&mut next.spj_tree).remove(&keys[..SPJ_LEVELS], id)
        };
        debug_assert!(in_tree, "registered view must be present in its tree");
        Arc::make_mut(&mut next.removed).insert(id);
        Arc::make_mut(&mut next.view_stamps).remove(&id);
        // Invalidate lazily and precisely: only entries whose query
        // touches one of the removed view's tables can have included it.
        #[cfg(mv_model)]
        let tables = if crate::mutation::active(crate::mutation::SKIP_EPOCH_BUMP_ON_REMOVE) {
            Vec::new()
        } else {
            tables
        };
        next.bump_tables(tables);
        self.shared.store(Arc::new(next));
        self.stats.record_removal();
        true
    }

    /// Number of live (non-removed) views.
    pub fn live_view_count(&self) -> usize {
        self.snapshot().live_view_count()
    }

    /// The publication count of the current snapshot (diagnostics: every
    /// registration, removal or constraint declaration bumps it).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Declare a check constraint on a base table. The predicate uses
    /// `occ = 0` column references into the table. During matching, check
    /// constraints are folded into the query's antecedent (section 3.1.2:
    /// "check constraints on the tables of a query can be added to the
    /// where-clause without changing the query result"), so view
    /// predicates implied by a constraint no longer block matching.
    pub fn add_check_constraint(&self, table: TableId, predicate: BoolExpr) -> Result<(), String> {
        let n_cols = self.catalog.table(table).columns.len() as u32;
        for c in predicate.columns() {
            if c.occ != OccId(0) || c.col.0 >= n_cols {
                return Err(format!(
                    "check constraint column {c} out of range for table {}",
                    self.catalog.table(table).name
                ));
            }
        }
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        Arc::make_mut(&mut next.checks)
            .entry(table)
            .or_default()
            .extend(classify(predicate));
        // Only queries referencing `table` fold this constraint into their
        // effective summary, so only their cached results can change — and
        // with constraint folding disabled no summary changes at all, so
        // bumping would spuriously invalidate every cached result over
        // `table`. (The constraint is still recorded: a later engine with
        // folding enabled sees it.)
        if self.config.use_check_constraints {
            next.bump_tables([table]);
        } else {
            next.epoch += 1;
        }
        self.shared.store(Arc::new(next));
        Ok(())
    }

    /// Record a write round against a base table: bump its *data epoch*,
    /// so every view over it becomes one round stale until
    /// [`MatchingEngine::mark_view_maintained`] restamps it. Invalidates
    /// exactly the cached results the staleness change can affect: a view
    /// over `table` can serve any query whose tables are a subset of the
    /// view's, so the invalidation bump covers `table` plus every table of
    /// every live view that references `table`.
    pub fn record_base_write(&self, table: TableId) {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        if let Some(e) = next.data_epochs.get_mut(table.0 as usize) {
            *e += 1;
        }
        let mut affected: Vec<TableId> = vec![table];
        for stamp in next.view_stamps.values() {
            if stamp.iter().any(|&(t, _)| t == table) {
                affected.extend(stamp.iter().map(|&(t, _)| t));
            }
        }
        affected.sort_unstable();
        affected.dedup();
        next.bump_tables(affected);
        self.shared.store(Arc::new(next));
    }

    /// Stamp a view's materialized state as maintained up to the current
    /// data epochs of its base tables (the maintenance side calls this
    /// after applying deltas to the view's contents). Invalidates cached
    /// results over the view's tables: under a freshness policy the view
    /// may newly qualify as a substitute. Returns `false` for removed or
    /// out-of-range ids.
    pub fn mark_view_maintained(&self, id: ViewId) -> bool {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        if next.removed.contains(&id) || (id.0 as usize) >= next.views.len() {
            return false;
        }
        let Some(stamp) = next.view_stamps.get(&id) else {
            return false;
        };
        let restamped = next.current_epochs_for(stamp);
        let tables: Vec<TableId> = restamped.iter().map(|&(t, _)| t).collect();
        Arc::make_mut(&mut next.view_stamps).insert(id, restamped);
        next.bump_tables(tables);
        self.shared.store(Arc::new(next));
        true
    }

    /// The current data epoch of a base table (write rounds recorded via
    /// [`MatchingEngine::record_base_write`]).
    pub fn data_epoch(&self, table: TableId) -> u64 {
        self.snapshot()
            .data_epochs
            .get(table.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// How many write rounds a view's materialized state trails the
    /// current base data (the maximum per-table data-epoch gap). `None`
    /// for removed or out-of-range ids.
    pub fn view_staleness(&self, id: ViewId) -> Option<u64> {
        let snap = self.snapshot();
        if snap.removed.contains(&id) || (id.0 as usize) >= snap.views.len() {
            return None;
        }
        Some(snap.view_lag(id))
    }

    /// The per-table data-epoch stamp of a view's materialized state
    /// (ascending by table), for the maintenance auditor. `None` for
    /// removed or out-of-range ids.
    pub fn view_data_epochs(&self, id: ViewId) -> Option<Vec<(TableId, u64)>> {
        self.snapshot().view_stamps.get(&id).cloned()
    }

    /// Corruption hook for the maintenance audit suite: overwrite a
    /// view's data-epoch stamp with epochs `lead` rounds *ahead* of the
    /// current table epochs — a stamp no correct maintenance schedule can
    /// produce. Never call outside tests.
    #[doc(hidden)]
    pub fn corrupt_view_stamp_for_audit(&self, id: ViewId, lead: u64) -> bool {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        let Some(stamp) = next.view_stamps.get(&id) else {
            return false;
        };
        let forged: Vec<(TableId, u64)> = next
            .current_epochs_for(stamp)
            .into_iter()
            .map(|(t, e)| (t, e + lead))
            .collect();
        let tables: Vec<TableId> = forged.iter().map(|&(t, _)| t).collect();
        Arc::make_mut(&mut next.view_stamps).insert(id, forged);
        next.bump_tables(tables);
        self.shared.store(Arc::new(next));
        true
    }

    /// Analyze a query, folding in check constraints when enabled.
    pub fn query_summary(&self, query: &SpjgExpr) -> ExprSummary {
        self.query_summary_in(&self.snapshot(), query)
    }

    /// [`MatchingEngine::query_summary`] against a pinned snapshot — the
    /// matching pipeline calls this so one match sees one constraint set.
    fn query_summary_in(&self, snap: &CatalogSnapshot, query: &SpjgExpr) -> ExprSummary {
        if !self.config.use_check_constraints || snap.checks.is_empty() {
            return ExprSummary::analyze(query);
        }
        let mut extras = Vec::new();
        for (occ, table) in query.occurrences() {
            if let Some(conjs) = snap.checks.get(&table) {
                for conj in conjs {
                    // The closure is total, so the remap cannot fail; if a
                    // future edit breaks that, dropping the conjunct only
                    // weakens the antecedent (safe direction) — flag it in
                    // debug builds instead of panicking in release.
                    let mapped = conj.try_map_columns(&mut |c| Some(ColRef { occ, col: c.col }));
                    debug_assert!(mapped.is_some(), "total column remap cannot fail");
                    extras.extend(mapped);
                }
            }
        }
        ExprSummary::analyze_with_extras(query, &extras)
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The registered views, pinned at the current snapshot. The guard
    /// derefs to [`ViewSet`], so existing `engine.views().get(id)` call
    /// sites keep working; hold it across several reads to see one
    /// coherent registry while writers keep publishing.
    pub fn views(&self) -> ViewsGuard {
        ViewsGuard {
            snap: self.snapshot(),
        }
    }

    /// The declared check constraints, pre-classified per table, with
    /// column references in table space (`occ = 0`), pinned at the
    /// current snapshot. Exposed so external analyzers (`mv-verify`,
    /// `mv-lint`) can reason from the same constraint knowledge the
    /// matcher uses.
    pub fn check_constraints(&self) -> ChecksGuard {
        ChecksGuard {
            snap: self.snapshot(),
        }
    }

    /// Snapshot of the instrumentation counters.
    pub fn stats(&self) -> MatchStats {
        self.stats.snapshot()
    }

    /// Reset the instrumentation counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Register a materialized view: validates it, computes its summary
    /// and filter keys, inserts it into the appropriate filter tree, and
    /// publishes the next snapshot. Runs concurrently with matching.
    pub fn add_view(&self, def: ViewDef) -> Result<ViewId, String> {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        let id = self.register_into(&mut next, def)?;
        self.shared.store(Arc::new(next));
        self.stats.record_registrations(1);
        Ok(id)
    }

    /// Register a batch of views with one snapshot clone and one
    /// publication — all-or-nothing: if any definition is rejected,
    /// nothing is published and the catalog is unchanged. Building a
    /// 100k-view catalog this way costs one copy-on-write pass instead of
    /// one per view.
    pub fn add_views(&self, defs: Vec<ViewDef>) -> Result<Vec<ViewId>, String> {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        let n = defs.len();
        let mut ids = Vec::with_capacity(n);
        for def in defs {
            ids.push(self.register_into(&mut next, def)?);
        }
        self.shared.store(Arc::new(next));
        self.stats.record_registrations(n);
        Ok(ids)
    }

    /// Validate, prepare and file one view into a snapshot under
    /// construction. Shared by `add_view` and `add_views`; the caller
    /// holds the writer lock and publishes (or discards) `next`.
    fn register_into(&self, next: &mut CatalogSnapshot, def: ViewDef) -> Result<ViewId, String> {
        def.expr.validate(&self.catalog)?;
        let vsum = ExprSummary::analyze(&def.expr);
        let interner = Arc::make_mut(&mut next.interner);
        let keys = Self::view_keys(
            &self.catalog,
            &self.config,
            &mut |s| interner.intern(s),
            &def.expr,
            &vsum,
        );
        // Level 5 of the filter keys is exactly the view's interned
        // residual tokens; the prepared descriptor reuses them for the
        // per-candidate token-subset prefilter.
        let prepared = PreparedView::prepare(
            &self.catalog,
            &self.config,
            &def.expr,
            vsum,
            keys[4].clone(),
        );
        let is_agg = def.expr.is_aggregate();
        let tables: Vec<TableId> = prepared.tables().collect();
        let id = next.views.add(def)?;
        // A freshly registered view is materialized from current base
        // data: stamp it with the current data epochs of its tables.
        let stamp: Vec<(TableId, u64)> = tables
            .iter()
            .map(|&t| (t, next.data_epochs.get(t.0 as usize).copied().unwrap_or(0)))
            .collect();
        Arc::make_mut(&mut next.view_stamps).insert(id, stamp);
        next.packed
            .push(Arc::new(prepared), &next.views.get(id).expr);
        if is_agg {
            Arc::make_mut(&mut next.agg_tree).insert(&keys, id);
        } else {
            Arc::make_mut(&mut next.spj_tree).insert(&keys[..SPJ_LEVELS], id);
        }
        // A new view can only change results of queries over (a subset
        // of) its own tables.
        #[cfg(mv_model)]
        let tables = if crate::mutation::active(crate::mutation::SKIP_EPOCH_BUMP_ON_ADD) {
            Vec::new()
        } else {
            tables
        };
        next.bump_tables(tables);
        Ok(id)
    }

    /// Is an occurrence "anchored" for the hub refinement of section
    /// 4.2.2: does it carry a range or residual predicate on a column that
    /// participates in no non-trivial equivalence class?
    fn is_anchored(vsum: &ExprSummary, occ: OccId) -> bool {
        vsum.ranges
            .keys()
            .any(|r| r.occ == occ && vsum.ec.is_trivial(*r))
            || vsum
                .residuals
                .iter()
                .flat_map(|t| t.cols.iter())
                .any(|c| c.occ == occ && vsum.ec.is_trivial(*c))
    }

    /// Compute the 8 per-level filter keys for a view (the first 6 are
    /// used for SPJ views). An associated function over explicit fields —
    /// not a method — so the write-path callers can borrow the interner
    /// mutably while the view registry stays immutably borrowed.
    ///
    /// Template texts go through the `token` closure: the write path
    /// passes [`Interner::intern`] (minting), while the audit path passes
    /// the read-only [`Interner::lookup`] — for a registered view the two
    /// agree, because every one of its texts was interned at `add_view`
    /// time. That agreement is exactly what lets `mv-audit` re-derive a
    /// view's keys without mutating the engine.
    fn view_keys(
        catalog: &Catalog,
        config: &MatchConfig,
        token: &mut dyn FnMut(&str) -> u64,
        expr: &SpjgExpr,
        vsum: &ExprSummary,
    ) -> Vec<Vec<u64>> {
        let occs: Vec<(OccId, TableId)> = expr.occurrences().collect();

        // Level 1: hub condition key.
        let graph = build_fk_graph(catalog, &occs, &vsum.ec, &|_| config.null_rejecting_fk);
        let refined = config.refined_hubs;
        let hub = compute_hub(&graph, &|o| refined && Self::is_anchored(vsum, o));
        let k_hub: Vec<u64> = hub.into_iter().map(table_token).collect();

        // Level 2: source tables.
        let k_tables: Vec<u64> = expr.tables.iter().copied().map(table_token).collect();

        // Level 3: textual output expressions (complex scalar outputs plus
        // SUM argument templates).
        let mut k_exprs: Vec<u64> = Vec::new();
        for ne in expr.scalar_outputs() {
            if ne.expr.as_column().is_none() && !ne.expr.is_constant() {
                k_exprs.push(token(&Template::of_scalar(&ne.expr).text));
            }
        }
        for agg in expr.aggregate_outputs() {
            if let AggFunc::Sum(e) = &agg.func {
                k_exprs.push(token(&Template::of_scalar(e).text));
            }
        }

        // Level 4: extended output column list — every column equivalent
        // to a simple-column output (section 4.2.3).
        let mut k_outcols: Vec<u64> = Vec::new();
        for ne in expr.scalar_outputs() {
            if let Some(c) = ne.expr.as_column() {
                for m in vsum.ec.class_of(c) {
                    k_outcols.push(base_col_token(expr, m));
                }
            }
        }
        // With the backjoin extension, every column of a table whose
        // non-null unique key the view outputs is reachable too — the
        // filter must not prune views the matcher could still use.
        if config.allow_backjoins {
            k_outcols.extend(Self::backjoin_reachable_tokens(catalog, expr, vsum));
        }

        // Level 5: residual predicate texts.
        let k_residuals: Vec<u64> = vsum.residuals.iter().map(|t| token(&t.text)).collect();

        // Level 6: reduced range constraint list — constrained columns in
        // trivial equivalence classes (section 4.2.5).
        let k_ranges: Vec<u64> = vsum
            .ranges
            .keys()
            .filter(|r| vsum.ec.is_trivial(**r))
            .map(|r| base_col_token(expr, *r))
            .collect();

        // Level 7 (aggregation views): textual grouping expressions.
        let mut k_gexprs: Vec<u64> = Vec::new();
        // Level 8: extended grouping column list.
        let mut k_gcols: Vec<u64> = Vec::new();
        if expr.is_aggregate() {
            for ne in expr.scalar_outputs() {
                if let Some(c) = ne.expr.as_column() {
                    for m in vsum.ec.class_of(c) {
                        k_gcols.push(base_col_token(expr, m));
                    }
                } else if !ne.expr.is_constant() {
                    k_gexprs.push(token(&Template::of_scalar(&ne.expr).text));
                }
            }
            if config.allow_backjoins {
                k_gcols.extend(Self::backjoin_reachable_tokens(catalog, expr, vsum));
            }
        }

        vec![
            k_hub,
            k_tables,
            k_exprs,
            k_outcols,
            k_residuals,
            k_ranges,
            k_gexprs,
            k_gcols,
        ]
    }

    /// Base-qualified column tokens reachable through backjoins: for each
    /// occurrence whose base table has a non-null unique key fully covered
    /// by the view's simple outputs (through the view's equivalence
    /// classes), every column of that table.
    fn backjoin_reachable_tokens(
        catalog: &Catalog,
        expr: &SpjgExpr,
        vsum: &ExprSummary,
    ) -> Vec<u64> {
        let mut simple_outputs: HashMap<ColRef, ()> = HashMap::new();
        for ne in expr.scalar_outputs() {
            if let Some(c) = ne.expr.as_column() {
                simple_outputs.insert(c, ());
            }
        }
        let covered = |c: ColRef| {
            simple_outputs.contains_key(&c)
                || vsum
                    .ec
                    .class_of(c)
                    .into_iter()
                    .any(|m| simple_outputs.contains_key(&m))
        };
        let mut out = Vec::new();
        for (occ, table) in expr.occurrences() {
            let def = catalog.table(table);
            let joinable = def.keys.iter().any(|key| {
                key.columns
                    .iter()
                    .all(|&c| def.column(c).not_null && covered(ColRef { occ, col: c }))
            });
            if joinable {
                for c in 0..def.columns.len() as u32 {
                    out.push(col_token(table, ColumnId(c)));
                }
            }
        }
        out
    }

    /// Render and look up every query-side filter token exactly once.
    /// Both trees' search conditions are assembled from this one pass, so
    /// an aggregate query no longer renders its output templates twice.
    /// Lookups go through the read-only [`Interner::lookup`] — the query
    /// path mints no tokens and performs no interner writes.
    fn query_tokens(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        qsum: &ExprSummary,
    ) -> QueryTokens {
        let source: Vec<u64> = query.tables.iter().copied().map(table_token).collect();

        // Textual output expressions. With the paper-faithful strict
        // filter these must all appear in the view; recomputation from
        // plain columns is ignored (section 4.2.7 calls this
        // "conservative"). Against aggregation views every SUM argument
        // must match a view SUM output; against SPJ views a simple column
        // argument is recomputable and is covered by the output-column
        // condition instead — so simple SUM arguments are kept apart.
        let mut scalar_exprs: Vec<u64> = Vec::new();
        let mut sum_exprs_complex: Vec<u64> = Vec::new();
        let mut sum_exprs_simple: Vec<u64> = Vec::new();
        if self.config.strict_expression_filter {
            for ne in query.scalar_outputs() {
                if ne.expr.as_column().is_none() && !ne.expr.is_constant() {
                    scalar_exprs.push(snap.interner.lookup(&Template::of_scalar(&ne.expr).text));
                }
            }
            for agg in query.aggregate_outputs() {
                if let AggFunc::Sum(e) = &agg.func {
                    let token = snap.interner.lookup(&Template::of_scalar(e).text);
                    if e.as_column().is_none() && !e.is_constant() {
                        sum_exprs_complex.push(token);
                    } else {
                        sum_exprs_simple.push(token);
                    }
                }
            }
        }

        // Output-column hitting classes.
        let class_of = |c: ColRef| {
            let mut cl: Vec<u64> = qsum
                .ec
                .class_of(c)
                .into_iter()
                .map(|m| base_col_token(query, m))
                .collect();
            cl.sort();
            cl.dedup();
            cl
        };
        let out_classes: Vec<Vec<u64>> = query
            .scalar_outputs()
            .iter()
            .filter_map(|ne| ne.expr.as_column())
            .map(class_of)
            .collect();
        let sum_classes: Vec<Vec<u64>> = query
            .aggregate_outputs()
            .iter()
            .filter_map(|agg| match &agg.func {
                AggFunc::Sum(e) => e.as_column(),
                _ => None,
            })
            .map(class_of)
            .collect();

        // Residual texts of the query.
        let residuals: Vec<u64> = qsum
            .residuals
            .iter()
            .map(|t| snap.interner.lookup(&t.text))
            .collect();

        // Extended range constraint list — every column of every
        // constrained equivalence class.
        let mut range_cols: Vec<u64> = Vec::new();
        for root in qsum.ranges.keys() {
            for m in qsum.ec.class_of(*root) {
                range_cols.push(base_col_token(query, m));
            }
        }

        QueryTokens {
            source,
            scalar_exprs,
            sum_exprs_complex,
            sum_exprs_simple,
            out_classes,
            sum_classes,
            residuals,
            range_cols,
        }
    }

    /// The candidate views for a query: filter-tree search, or every view
    /// when the filter tree is disabled.
    pub fn candidates(&self, query: &SpjgExpr, qsum: &ExprSummary) -> Vec<ViewId> {
        let mut out = Vec::new();
        self.candidates_into(query, qsum, &mut out);
        out
    }

    /// [`MatchingEngine::candidates`] into a caller-owned buffer (cleared
    /// first), so a driver probing many queries reuses one allocation.
    /// Both trees append into the same buffer, which is then sorted and
    /// deduplicated once.
    pub fn candidates_into(&self, query: &SpjgExpr, qsum: &ExprSummary, out: &mut Vec<ViewId>) {
        self.candidates_into_in(&self.snapshot(), query, qsum, out)
    }

    /// [`MatchingEngine::candidates_into`] against a pinned snapshot.
    fn candidates_into_in(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        out: &mut Vec<ViewId>,
    ) {
        out.clear();
        if !self.config.use_filter_tree {
            out.extend(
                snap.views
                    .iter()
                    .map(|(id, _)| id)
                    .filter(|id| !snap.removed.contains(id)),
            );
            return;
        }
        let tokens = self.query_tokens(snap, query, qsum);
        snap.spj_tree.search_into(&tokens.spj_searches(), out);
        if query.is_aggregate() && !snap.agg_tree.is_empty() {
            snap.agg_tree.search_into(&tokens.agg_searches(), out);
        }
        // Removed views are already gone from the trees; the retain is a
        // cheap second line of defense for the matching invariant.
        out.retain(|id| !snap.removed.contains(id));
        out.sort_unstable();
        // Each view lives in exactly one partition of exactly one tree, so
        // the merged result must already be duplicate-free.
        debug_assert!(
            out.windows(2).all(|w| w[0] != w[1]),
            "spj and agg filter trees must hold disjoint view sets"
        );
        out.dedup();
    }

    /// Run the full matching tests over a filtered candidate list,
    /// serially or fanned out across threads per
    /// [`MatchConfig::parallel_threshold`]. Each `match_view` call is pure
    /// in the engine's shared state, and results keep candidate order
    /// (ascending `ViewId`), so both paths return byte-identical lists.
    fn match_candidates(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        candidates: &[ViewId],
    ) -> Vec<(ViewId, Substitute)> {
        let pq = PreparedQuery::new(query, qsum);
        // The packed probe drives the per-candidate prechecks: residual
        // token subset, table correspondence, aggregation compatibility
        // and the §3.2 edge-less-extra rejection — all as sorted-slice
        // scans over the arena, before any descriptor access.
        let q_res_tokens: Vec<u64> = qsum
            .residuals
            .iter()
            .map(|t| snap.interner.lookup(&t.text))
            .collect();
        let probe = PackedProbe::new(query.is_aggregate(), &q_res_tokens, &pq.by_table);
        let try_candidate = |&id: &ViewId| -> Option<(ViewId, Substitute)> {
            if !snap.packed.precheck(id, &probe) {
                return None;
            }
            // Freshness gate: the view's materialized state must be within
            // the configured staleness bound of the current data epochs.
            // Checked before the (costlier) matching tests, and the lag is
            // stamped onto the substitute so callers see the guarantee.
            let lag = snap.view_lag(id);
            if !self.config.freshness.admits(lag) {
                return None;
            }
            let view = snap.views.get(id);
            let pv = snap.packed.prepared(id);
            match_view_prepared(&self.catalog, &self.config, &pq, id, view, pv).map(|mut sub| {
                sub.freshness = Freshness::from_lag(lag);
                (id, sub)
            })
        };
        let workers = self.config.match_workers(candidates.len());
        if workers > 1 {
            // With the packed prechecks most candidates cost well under a
            // microsecond, so chunks claimed from the shared cursor are
            // kept coarse (64 candidates) to amortize the bookkeeping.
            mv_parallel::par_map_min_chunk(candidates, workers, 64, try_candidate)
                .into_iter()
                .flatten()
                .collect()
        } else {
            candidates.iter().filter_map(try_candidate).collect()
        }
    }

    /// Filter, match and debug-verify — the uncached matching pipeline.
    /// Returns the substitutes, the candidate count, and the filter time.
    fn compute_substitutes(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
    ) -> (Vec<(ViewId, Substitute)>, usize, Duration) {
        let qsum = self.query_summary_in(snap, query);

        let filter_started = self.config.timing.then(Instant::now);
        let mut candidates = Vec::new();
        self.candidates_into_in(snap, query, &qsum, &mut candidates);
        let filter_time = elapsed(filter_started);

        let out = self.match_candidates(snap, query, &qsum, &candidates);
        #[cfg(debug_assertions)]
        {
            self.debug_verify(snap, query, &out);
            self.debug_prove(snap, query, &out);
            self.debug_assert_filter_complete(snap, query, &qsum, &candidates);
        }
        (out, candidates.len(), filter_time)
    }

    /// The view-matching rule: find every view from which `query` can be
    /// computed and build the substitutes. Updates the instrumentation
    /// counters. Callable concurrently from any number of threads sharing
    /// the engine, including while other threads register or remove
    /// views: the whole match runs against one pinned snapshot.
    ///
    /// With the substitute cache enabled (see
    /// [`MatchConfig::substitute_cache_capacity`]), a repeated query shape
    /// returns the cached result — byte-identical to a fresh computation,
    /// which debug builds prove with a differential assertion on every
    /// hit. Entries are stamped with the invalidation epochs of the
    /// query's tables, so a registration over disjoint tables leaves them
    /// valid. Hits replay the original candidate count into the stats so
    /// counter totals stay path-independent.
    pub fn find_substitutes(&self, query: &SpjgExpr) -> Vec<(ViewId, Substitute)> {
        let snap = self.snapshot();
        self.find_substitutes_in(&snap, query).0
    }

    /// [`MatchingEngine::find_substitutes`] against a pinned snapshot,
    /// also returning the candidate count (the batch path records it for
    /// replayed group members). Records stats and drives the substitute
    /// cache exactly like the public entry point.
    fn find_substitutes_in(
        &self,
        snap: &Arc<CatalogSnapshot>,
        query: &SpjgExpr,
    ) -> (Vec<(ViewId, Substitute)>, usize) {
        let started = self.config.timing.then(Instant::now);
        if !self.cache.is_enabled() {
            let (out, n_candidates, filter_time) = self.compute_substitutes(snap, query);
            self.stats.record(
                n_candidates,
                snap.live_view_count(),
                out.len(),
                filter_time,
                elapsed(started),
            );
            return (out, n_candidates);
        }
        let fp = fingerprint(query);
        let stamp = snap.table_stamp(query);
        match self.cache.lookup(fp.hash, &fp.render, &stamp) {
            CacheLookup::Hit {
                mut results,
                candidates,
            } => {
                // Output names are the one query-specific part of a
                // substitute the fingerprint deliberately ignores.
                restamp_output_names(&mut results, query);
                #[cfg(debug_assertions)]
                {
                    self.debug_verify(snap, query, &results);
                    let (fresh, _, _) = self.compute_substitutes(snap, query);
                    assert_eq!(
                        results, fresh,
                        "cached substitutes must be byte-identical to a fresh \
                         computation for the probing query"
                    );
                }
                self.stats.record_cache_hit();
                self.stats.record(
                    candidates,
                    snap.live_view_count(),
                    results.len(),
                    Duration::ZERO,
                    elapsed(started),
                );
                return (results, candidates);
            }
            CacheLookup::Stale => self.stats.record_cache_invalidation(),
            CacheLookup::Miss | CacheLookup::Disabled => {}
        }
        let (out, n_candidates, filter_time) = self.compute_substitutes(snap, query);
        #[cfg(mv_model)]
        let skip_miss_stat = crate::mutation::active(crate::mutation::SKIP_CACHE_MISS_STAT);
        #[cfg(not(mv_model))]
        let skip_miss_stat = false;
        if !skip_miss_stat {
            self.stats.record_cache_miss();
        }
        self.stats.record(
            n_candidates,
            snap.live_view_count(),
            out.len(),
            filter_time,
            elapsed(started),
        );
        // The entry MUST carry the stamp of the pinned snapshot the
        // results were computed from. Re-deriving it from the currently
        // published snapshot (the STAMP_AFTER_PUBLISH mutation) stamps
        // pre-registration results with post-registration epochs,
        // making a stale entry look fresh forever.
        #[cfg(mv_model)]
        let stamp = if crate::mutation::active(crate::mutation::STAMP_AFTER_PUBLISH) {
            self.snapshot().table_stamp(query)
        } else {
            stamp
        };
        self.cache
            .insert(fp.hash, fp.render, stamp, n_candidates, out.clone());
        (out, n_candidates)
    }

    /// Drop every cached `find_substitutes` result (capacity unchanged).
    pub fn clear_substitute_cache(&self) {
        self.cache.clear();
    }

    /// Number of live entries in the substitute cache.
    pub fn substitute_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Match a whole batch of queries, fanning out across threads — the
    /// entry point for workload drivers and multi-query optimization.
    /// Results arrive in query order, each entry byte-identical to what
    /// [`MatchingEngine::find_substitutes`] returns for that query;
    /// instrumentation counters accumulate across all workers.
    pub fn find_substitutes_batch(&self, queries: &[SpjgExpr]) -> Vec<Vec<(ViewId, Substitute)>> {
        let workers = self.config.batch_workers(queries.len());
        mv_parallel::par_map(queries, workers, |q| self.find_substitutes(q))
    }

    /// Batched matching for bursts of queries: pins **one** catalog
    /// snapshot for the whole batch and groups the queries by cache
    /// fingerprint, so repeated query shapes — the common case in a
    /// workload replay — pay one filter-tree descent per distinct shape
    /// instead of one per query. Groups fan out through `mv-parallel`.
    ///
    /// Results arrive in query order, each entry byte-identical to what
    /// [`MatchingEngine::find_substitutes`] returns for that query, and
    /// the per-query instrumentation counters accumulate exactly as if
    /// every query had been matched individually (replayed group members
    /// record the representative's candidate count, like a cache hit).
    pub fn find_substitutes_many(&self, queries: &[SpjgExpr]) -> Vec<Vec<(ViewId, Substitute)>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let snap = self.snapshot();
        // Sort query indices by fingerprint so equal shapes become
        // consecutive runs; the index tiebreak keeps the representative
        // (first member) deterministic.
        let fps: Vec<Fingerprint> = queries.iter().map(fingerprint).collect();
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            (fps[a].hash, &fps[a].render, a).cmp(&(fps[b].hash, &fps[b].render, b))
        });
        let mut groups: Vec<&[usize]> = Vec::new();
        let mut start = 0;
        for i in 1..=order.len() {
            if i == order.len()
                || fps[order[i]].hash != fps[order[start]].hash
                || fps[order[i]].render != fps[order[start]].render
            {
                groups.push(&order[start..i]);
                start = i;
            }
        }
        let workers = self.config.batch_workers(groups.len());
        let matched = mv_parallel::par_map(&groups, workers, |group| {
            let started = self.config.timing.then(Instant::now);
            let rep = group[0];
            let (results, n_candidates) = self.find_substitutes_in(&snap, &queries[rep]);
            // Replay the representative's result for the other members:
            // same fingerprint means the same substitutes up to output
            // names, which are restamped per query (mirrors a cache hit).
            let replays: Vec<Vec<(ViewId, Substitute)>> = group[1..]
                .iter()
                .map(|&qi| {
                    let mut r = results.clone();
                    restamp_output_names(&mut r, &queries[qi]);
                    #[cfg(debug_assertions)]
                    self.debug_verify(&snap, &queries[qi], &r);
                    // A replay is served from the representative's result
                    // exactly as a cache hit serves a repeated query, so it
                    // must move the cache counters the same way the
                    // per-query path would (the representative already
                    // recorded its own hit or miss).
                    if self.cache.is_enabled() {
                        self.stats.record_cache_hit();
                    }
                    self.stats.record(
                        n_candidates,
                        snap.live_view_count(),
                        r.len(),
                        Duration::ZERO,
                        elapsed(started),
                    );
                    r
                })
                .collect();
            (results, replays)
        });
        let mut out: Vec<Vec<(ViewId, Substitute)>> = vec![Vec::new(); queries.len()];
        for (group, (rep_result, replays)) in groups.iter().zip(matched) {
            out[group[0]] = rep_result;
            for (&qi, r) in group[1..].iter().zip(replays) {
                out[qi] = r;
            }
        }
        out
    }

    /// Match the query against one specific view (bypassing the filter).
    /// Returns `None` for removed and out-of-range view ids rather than
    /// panicking — an id is data here, not a proven-valid handle.
    pub fn match_one(&self, query: &SpjgExpr, view: ViewId) -> Option<Substitute> {
        let snap = self.snapshot();
        if snap.removed.contains(&view) || (view.0 as usize) >= snap.views.len() {
            return None;
        }
        let qsum = self.query_summary_in(&snap, query);
        self.match_one_in(&snap, query, &qsum, view)
    }

    /// [`MatchingEngine::match_one`] with a caller-supplied query summary,
    /// so a driver probing many views against one query (the `mv-audit`
    /// differential pass) analyzes the query once instead of per probe.
    pub fn match_one_prepared(
        &self,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        view: ViewId,
    ) -> Option<Substitute> {
        self.match_one_in(&self.snapshot(), query, qsum, view)
    }

    fn match_one_in(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        view: ViewId,
    ) -> Option<Substitute> {
        if snap.removed.contains(&view) || (view.0 as usize) >= snap.views.len() {
            return None;
        }
        // Same freshness gate and stamp as the batch path, so a single
        // probe and `find_substitutes` never disagree on admissibility.
        let lag = snap.view_lag(view);
        if !self.config.freshness.admits(lag) {
            return None;
        }
        let pq = PreparedQuery::new(query, qsum);
        let result = match_view_prepared(
            &self.catalog,
            &self.config,
            &pq,
            view,
            snap.views.get(view),
            snap.packed.prepared(view),
        )
        .map(|mut sub| {
            sub.freshness = Freshness::from_lag(lag);
            sub
        });
        #[cfg(debug_assertions)]
        if let Some(sub) = &result {
            self.debug_verify(snap, query, std::slice::from_ref(&(view, sub.clone())));
        }
        result
    }

    // ------------------------------------------------------------------
    // Audit API: read-only views into the filter index for `mv-audit`.
    // ------------------------------------------------------------------

    /// Has this view been dropped with [`MatchingEngine::remove_view`]?
    pub fn is_removed(&self, id: ViewId) -> bool {
        self.snapshot().removed.contains(&id)
    }

    /// Re-derive the per-level filter keys of a registered live view,
    /// read-only: template texts resolve through [`Interner::lookup`], so
    /// no tokens are minted and the engine is not mutated. For a live view
    /// this reproduces exactly the keys `add_view` computed (every text
    /// was interned then). Returns `None` for removed or out-of-range ids.
    pub fn view_filter_keys(&self, id: ViewId) -> Option<Vec<Vec<u64>>> {
        self.view_filter_keys_in(&self.snapshot(), id)
    }

    fn view_filter_keys_in(&self, snap: &CatalogSnapshot, id: ViewId) -> Option<Vec<Vec<u64>>> {
        if snap.removed.contains(&id) || (id.0 as usize) >= snap.views.len() {
            return None;
        }
        let def = snap.views.get(id);
        let vsum = &snap.packed.prepared(id).summary;
        Some(Self::view_keys(
            &self.catalog,
            &self.config,
            &mut |s| snap.interner.lookup(s),
            &def.expr,
            vsum,
        ))
    }

    /// Every `(view, stored per-level keys)` entry across both filter
    /// trees, exactly as the index holds them (normalized). SPJ entries
    /// carry [`SPJ_LEVELS`] keys, aggregation entries [`AGG_LEVELS`].
    pub fn filter_entries(&self) -> Vec<(ViewId, Vec<Vec<u64>>)> {
        let snap = self.snapshot();
        let mut out = snap.spj_tree.entries();
        out.extend(snap.agg_tree.entries());
        out
    }

    /// Is the view filed in its tree under exactly the keys a fresh
    /// derivation produces? `false` means the index lost the view or
    /// holds it under stale keys — either way a search may never reach it.
    pub fn view_in_tree(&self, id: ViewId) -> bool {
        let snap = self.snapshot();
        let Some(keys) = self.view_filter_keys_in(&snap, id) else {
            return false;
        };
        if snap.views.get(id).expr.is_aggregate() {
            snap.agg_tree.contains(&keys, id)
        } else {
            snap.spj_tree.contains(&keys[..SPJ_LEVELS], id)
        }
    }

    /// The per-level search conditions a query poses against the SPJ and
    /// aggregation trees, in that order. Read-only (unknown template
    /// texts resolve to the reserved [`UNKNOWN_TOKEN`]).
    pub fn query_searches(
        &self,
        query: &SpjgExpr,
        qsum: &ExprSummary,
    ) -> (Vec<LevelSearch>, Vec<LevelSearch>) {
        let tokens = self.query_tokens(&self.snapshot(), query, qsum);
        (tokens.spj_searches(), tokens.agg_searches())
    }

    /// Number of template-text tokens ever minted. Tokens are issued
    /// sequentially from 0, so any stored text token `>= known_token_count`
    /// (other than unreachable [`UNKNOWN_TOKEN`] query tokens) denotes a
    /// corrupted index entry.
    pub fn known_token_count(&self) -> u64 {
        self.snapshot().interner.map.len() as u64
    }

    /// Corruption hook for the `mv-audit` test suite: silently drop `id`
    /// from its filter tree while the engine still believes it is live.
    /// Simulates an index that lost an entry. Never call outside tests.
    /// Bumps every table epoch: a corrupted index invalidates all cached
    /// results, by design.
    #[doc(hidden)]
    pub fn evict_view_for_audit(&self, id: ViewId) -> bool {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        let Some(keys) = self.view_filter_keys_in(&next, id) else {
            return false;
        };
        let evicted = if next.views.get(id).expr.is_aggregate() {
            Arc::make_mut(&mut next.agg_tree).remove(&keys, id)
        } else {
            Arc::make_mut(&mut next.spj_tree).remove(&keys[..SPJ_LEVELS], id)
        };
        if !evicted {
            return false;
        }
        let all_tables: Vec<TableId> = (0..next.table_epochs.len())
            .map(|i| TableId(i as u32))
            .collect();
        next.bump_tables(all_tables);
        self.shared.store(Arc::new(next));
        true
    }

    /// Corruption hook for the `mv-audit` test suite: re-file `id` under
    /// caller-chosen per-level keys (arity must match the view's tree).
    /// Simulates an index whose stored keys drifted from the definition.
    /// Never call outside tests.
    #[doc(hidden)]
    pub fn refile_view_for_audit(&self, id: ViewId, keys: &[Vec<u64>]) -> bool {
        if !self.evict_view_for_audit(id) {
            return false;
        }
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        if next.views.get(id).expr.is_aggregate() {
            Arc::make_mut(&mut next.agg_tree).insert(keys, id);
        } else {
            Arc::make_mut(&mut next.spj_tree).insert(keys, id);
        }
        next.epoch += 1;
        self.shared.store(Arc::new(next));
        true
    }

    /// Pinned view of the packed descriptor arena — `mv-audit` walks it
    /// to validate spans against re-derived descriptors. Derefs to
    /// [`PackedCatalog`]; hold it across several reads to see one
    /// coherent arena while writers keep publishing.
    pub fn packed(&self) -> PackedGuard {
        PackedGuard {
            snap: self.snapshot(),
        }
    }

    /// Bytes reserved by the packed descriptor arenas of the current
    /// snapshot. The bench harness divides this by the live view count
    /// for its `bytes_per_view_arena` column.
    pub fn arena_bytes(&self) -> usize {
        self.snapshot().packed.arena_bytes()
    }

    /// Corruption hook for the `mv-audit` test suite: overwrite `id`'s
    /// residual-token span with an out-of-bounds `(offset, len)` while
    /// the rest of the catalog stays intact. Simulates a torn arena
    /// page. Never call outside tests. Bumps every table epoch: a
    /// corrupted arena invalidates all cached results, by design.
    #[doc(hidden)]
    pub fn corrupt_packed_span_for_audit(&self, id: ViewId) -> bool {
        let _writer = self.writer_guard();
        let mut next = (*self.snapshot()).clone();
        if next.removed.contains(&id) || (id.0 as usize) >= next.views.len() {
            return false;
        }
        next.packed.corrupt_span_for_audit(id);
        let all_tables: Vec<TableId> = (0..next.table_epochs.len())
            .map(|i| TableId(i as u32))
            .collect();
        next.bump_tables(all_tables);
        self.shared.store(Arc::new(next));
        true
    }

    /// Debug-mode completeness oracle, the dual of
    /// [`MatchingEngine::debug_verify`]: after every filtered
    /// `find_substitutes`, exhaustively re-match each live view the filter
    /// tree pruned and panic if one of them actually matches — unless the
    /// only rejecting levels are the documented strict-expression-filter
    /// conservatism ([`strict_filter_exempt_levels`], section 4.2.7).
    /// Every test exercising the matching path in a debug build therefore
    /// doubles as a proof obligation that filter-tree candidates ⊇
    /// exhaustive matches. Capped at a modest catalog size so large debug
    /// workload tests stay fast; compiled out of release builds.
    #[cfg(debug_assertions)]
    fn debug_assert_filter_complete(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        candidates: &[ViewId],
    ) {
        const DEBUG_COMPLETENESS_CAP: usize = 512;
        if !self.config.use_filter_tree || snap.live_view_count() > DEBUG_COMPLETENESS_CAP {
            return;
        }
        let tokens = self.query_tokens(snap, query, qsum);
        let (spj, agg) = (tokens.spj_searches(), tokens.agg_searches());
        let pq = PreparedQuery::new(query, qsum);
        for (id, view) in snap.views.iter() {
            // `candidates` is sorted (see `candidates_into`).
            if snap.removed.contains(&id) || candidates.binary_search(&id).is_ok() {
                continue;
            }
            let pv = snap.packed.prepared(id);
            if match_view_prepared(&self.catalog, &self.config, &pq, id, view, pv).is_none() {
                continue;
            }
            let is_agg = view.expr.is_aggregate();
            assert!(
                !is_agg || query.is_aggregate(),
                "matcher accepted aggregation view `{}` for a non-aggregate \
                 query — invalid per section 3.3",
                view.name
            );
            let keys = self
                .view_filter_keys_in(snap, id)
                .expect("live view has derivable keys");
            let searches = if is_agg { &agg } else { &spj };
            let rejecting: Vec<usize> = searches
                .iter()
                .enumerate()
                .filter(|(lvl, s)| !s.accepts(&keys[*lvl]))
                .map(|(lvl, _)| lvl)
                .collect();
            let exempt = strict_filter_exempt_levels(is_agg);
            if self.config.strict_expression_filter
                && !rejecting.is_empty()
                && rejecting.iter().all(|l| exempt.contains(l))
            {
                continue;
            }
            let levels: Vec<&str> = rejecting.iter().map(|&l| LEVEL_NAMES[l]).collect();
            panic!(
                "filter tree dropped matching view `{}` (rejecting levels {levels:?}; \
                 an empty list means the view is missing from its tree)",
                view.name
            );
        }
    }

    /// Debug-mode oracle: run the independent `mv-verify` analyzer over
    /// every substitute the matcher just produced and panic on any
    /// ERROR-severity diagnostic. Because the analyzer shares no logic
    /// with the matcher, every test exercising the matching path doubles
    /// as a soundness test for both sides. Compiled out of release builds.
    #[cfg(debug_assertions)]
    fn debug_verify(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        results: &[(ViewId, Substitute)],
    ) {
        let ctx = mv_verify::VerifyContext::new(&self.catalog, &snap.checks);
        for (id, sub) in results {
            let view = snap.views.get(*id);
            let diags =
                mv_verify::verify_substitute(&ctx, query, &view.expr, sub, &view.name, "query");
            let errors: Vec<String> = diags
                .iter()
                .filter(|d| d.severity == mv_verify::Severity::Error)
                .map(|d| d.to_json())
                .collect();
            assert!(
                errors.is_empty(),
                "mv-verify rejected a matcher-produced substitute for view `{}`:\n{}",
                view.name,
                errors.join("\n"),
            );
        }
    }

    /// Debug-mode semantic oracle: run the `mv-prove` bounded model
    /// checker (DESIGN.md §15) over every substitute the matcher just
    /// produced and panic on a refutation, rendering the witness
    /// database. Off unless [`MatchConfig::prove_budget`] is nonzero —
    /// proving enumerates databases and executes both plans, so it is
    /// opt-in even for debug builds. Compiled out of release builds.
    #[cfg(debug_assertions)]
    fn debug_prove(
        &self,
        snap: &CatalogSnapshot,
        query: &SpjgExpr,
        results: &[(ViewId, Substitute)],
    ) {
        // Cap mirrors DEBUG_COMPLETENESS_CAP: proving is for functional
        // tests, not the scale benchmarks.
        const DEBUG_PROVE_CAP: usize = 64;
        if self.config.prove_budget == 0 || snap.views.len() > DEBUG_PROVE_CAP {
            return;
        }
        let ctx = mv_prove::ProveCtx::new(&self.catalog, &snap.checks);
        let cfg = mv_prove::ProveConfig {
            max_databases: self.config.prove_budget as u64,
            ..mv_prove::ProveConfig::default()
        };
        for (id, sub) in results {
            let view = snap.views.get(*id);
            let outcome = mv_prove::prove(&ctx, query, &view.expr, sub, &cfg);
            if outcome.is_refuted() {
                let tables = mv_prove::pair_tables(query, &view.expr, sub);
                let diags: Vec<String> =
                    mv_prove::prove_diagnostics(&outcome, &view.name, "query", &tables, &cfg)
                        .iter()
                        .map(|d| d.to_json())
                        .collect();
                panic!(
                    "mv-prove refuted a matcher-produced substitute for view `{}`:\n{}",
                    view.name,
                    diags.join("\n"),
                );
            }
        }
    }
}

/// A pinned, read-only handle on the registered views: derefs to
/// [`ViewSet`] and keeps the underlying [`CatalogSnapshot`] alive, so the
/// registry it exposes stays coherent (and valid) however many writers
/// publish while the guard is held. Returned by
/// [`MatchingEngine::views`].
#[derive(Debug, Clone)]
pub struct ViewsGuard {
    snap: Arc<CatalogSnapshot>,
}

impl std::ops::Deref for ViewsGuard {
    type Target = ViewSet;
    fn deref(&self) -> &ViewSet {
        &self.snap.views
    }
}

/// A pinned, read-only handle on the packed descriptor arena: derefs to
/// [`PackedCatalog`]. Writers publishing new snapshots never mutate the
/// arena this guard sees. Returned by [`MatchingEngine::packed`].
#[derive(Debug, Clone)]
pub struct PackedGuard {
    snap: Arc<CatalogSnapshot>,
}

impl std::ops::Deref for PackedGuard {
    type Target = PackedCatalog;
    fn deref(&self) -> &PackedCatalog {
        &self.snap.packed
    }
}

/// A pinned, read-only handle on the declared check constraints: derefs
/// to the per-table conjunct map. Returned by
/// [`MatchingEngine::check_constraints`].
#[derive(Debug, Clone)]
pub struct ChecksGuard {
    snap: Arc<CatalogSnapshot>,
}

impl std::ops::Deref for ChecksGuard {
    type Target = HashMap<TableId, Vec<Conjunct>>;
    fn deref(&self) -> &HashMap<TableId, Vec<Conjunct>> {
        &self.snap.checks
    }
}

/// `Instant::elapsed` for a gated timer: `Duration::ZERO` when timing is
/// off ([`MatchConfig::timing`] = false).
fn elapsed(started: Option<Instant>) -> Duration {
    started.map_or(Duration::ZERO, |t| t.elapsed())
}

/// Overwrite the output names of cached substitutes with the probing
/// query's names. The fingerprint deliberately ignores names (α-equivalent
/// queries share an entry), and substitute outputs are positional with the
/// query's outputs, so restamping by position restores byte identity with
/// a fresh computation for this exact query.
fn restamp_output_names(results: &mut [(ViewId, Substitute)], query: &SpjgExpr) {
    let names = query.output_names();
    for (_, sub) in results.iter_mut() {
        match &mut sub.output {
            OutputList::Spj(items) => {
                for (item, name) in items.iter_mut().zip(&names) {
                    if item.name != *name {
                        item.name = (*name).to_string();
                    }
                }
            }
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                let (g_names, a_names) = names.split_at(group_by.len());
                for (item, name) in group_by.iter_mut().zip(g_names) {
                    if item.name != *name {
                        item.name = (*name).to_string();
                    }
                }
                for (item, name) in aggregates.iter_mut().zip(a_names) {
                    if item.name != *name {
                        item.name = (*name).to_string();
                    }
                }
            }
        }
    }
}

/// Query-side filter tokens, rendered once and shared by both trees'
/// search conditions.
struct QueryTokens {
    /// Source-table tokens (levels 1 and 2).
    source: Vec<u64>,
    /// Complex scalar output templates (level 3, and level 7 on the
    /// aggregation tree).
    scalar_exprs: Vec<u64>,
    /// Complex `SUM` argument templates — required from both view kinds.
    sum_exprs_complex: Vec<u64>,
    /// Simple-column `SUM` argument templates — required from aggregation
    /// views; against SPJ views the column condition covers them instead.
    sum_exprs_simple: Vec<u64>,
    /// Hitting classes of simple-column scalar outputs (level 4, and
    /// level 8 on the aggregation tree).
    out_classes: Vec<Vec<u64>>,
    /// Hitting classes of simple-column `SUM` arguments (SPJ tree only).
    sum_classes: Vec<Vec<u64>>,
    /// Residual predicate texts (level 5).
    residuals: Vec<u64>,
    /// Extended range-constrained column list (level 6).
    range_cols: Vec<u64>,
}

impl QueryTokens {
    /// Search conditions for the 6-level SPJ-view tree.
    fn spj_searches(&self) -> Vec<LevelSearch> {
        let exprs: Vec<u64> = self
            .scalar_exprs
            .iter()
            .chain(&self.sum_exprs_complex)
            .copied()
            .collect();
        let classes: Vec<Vec<u64>> = self
            .out_classes
            .iter()
            .chain(&self.sum_classes)
            .cloned()
            .collect();
        vec![
            LevelSearch::Subset(self.source.clone()),
            LevelSearch::Superset(self.source.clone()),
            LevelSearch::Superset(exprs),
            LevelSearch::Hitting(classes),
            LevelSearch::Subset(self.residuals.clone()),
            LevelSearch::Subset(self.range_cols.clone()),
        ]
    }

    /// Search conditions for the 8-level aggregation-view tree.
    fn agg_searches(&self) -> Vec<LevelSearch> {
        let exprs: Vec<u64> = self
            .scalar_exprs
            .iter()
            .chain(&self.sum_exprs_complex)
            .chain(&self.sum_exprs_simple)
            .copied()
            .collect();
        vec![
            LevelSearch::Subset(self.source.clone()),
            LevelSearch::Superset(self.source.clone()),
            LevelSearch::Superset(exprs),
            LevelSearch::Hitting(self.out_classes.clone()),
            LevelSearch::Subset(self.residuals.clone()),
            LevelSearch::Subset(self.range_cols.clone()),
            LevelSearch::Superset(self.scalar_exprs.clone()),
            LevelSearch::Hitting(self.out_classes.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::FreshnessPolicy;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};
    use mv_plan::{NamedAgg, NamedExpr};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    fn part_view(lo: i64, hi: i64, name: &str) -> (String, SpjgExpr) {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(hi)),
        ]);
        (
            name.to_string(),
            SpjgExpr::spj(
                vec![t.part],
                pred,
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                    NamedExpr::new(S::col(cr(0, 5)), "p_size"),
                ],
            ),
        )
    }

    fn engine_with_views(config: MatchConfig) -> MatchingEngine {
        let (cat, t) = tpch_catalog();
        let engine = MatchingEngine::new(cat, config);
        for (name, v) in [
            part_view(0, 1000, "parts_low"),
            part_view(500, 2000, "parts_mid"),
            part_view(5000, 9000, "parts_high"),
        ] {
            engine.add_view(ViewDef::new(name, v)).unwrap();
        }
        // An unrelated orders aggregate.
        let agg = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        );
        engine
            .add_view(ViewDef::new("orders_by_cust", agg))
            .unwrap();
        engine
    }

    fn part_query(lo: i64, hi: i64) -> SpjgExpr {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(hi)),
        ]);
        SpjgExpr::spj(
            vec![t.part],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")],
        )
    }

    #[test]
    fn finds_all_containing_views() {
        let engine = engine_with_views(MatchConfig::default());
        // Query range [600, 900) is contained in parts_low and parts_mid.
        let subs = engine.find_substitutes(&part_query(600, 900));
        assert_eq!(subs.len(), 2);
        // Range [400, 900) only fits parts_low.
        let subs = engine.find_substitutes(&part_query(400, 900));
        assert_eq!(subs.len(), 1);
        assert_eq!(engine.views().get(subs[0].0).name, "parts_low");
    }

    #[test]
    fn filter_and_no_filter_agree() {
        let with = engine_with_views(MatchConfig::default());
        let without = engine_with_views(MatchConfig {
            use_filter_tree: false,
            ..MatchConfig::default()
        });
        for (lo, hi) in [(600, 900), (400, 900), (0, 10_000), (5500, 6000)] {
            let q = part_query(lo, hi);
            let mut a: Vec<ViewId> = with
                .find_substitutes(&q)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            let mut b: Vec<ViewId> = without
                .find_substitutes(&q)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "range [{lo},{hi})");
        }
    }

    #[test]
    fn filter_narrows_candidates() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        let qsum = ExprSummary::analyze(&q);
        let candidates = engine.candidates(&q, &qsum);
        // The orders aggregate must never be a candidate for a part query.
        assert!(candidates.len() <= 3);
        let (_, t) = tpch_catalog();
        for id in candidates {
            assert_eq!(engine.views().get(id).expr.tables, vec![t.part]);
        }
    }

    #[test]
    fn stats_accumulate() {
        let engine = engine_with_views(MatchConfig::default());
        engine.find_substitutes(&part_query(600, 900));
        engine.find_substitutes(&part_query(400, 900));
        let stats = engine.stats();
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.substitutes, 3);
        assert_eq!(stats.views_available, 8);
        assert!(stats.candidates <= 8);
        engine.reset_stats();
        assert_eq!(engine.stats().invocations, 0);
    }

    #[test]
    fn aggregate_query_sees_both_trees() {
        let engine = engine_with_views(MatchConfig::default());
        let (_, t) = tpch_catalog();
        // Aggregate query over orders: answered by the aggregation view.
        let q = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "n")],
        );
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 1);
        assert_eq!(engine.views().get(subs[0].0).name, "orders_by_cust");
    }

    #[test]
    fn match_one_bypasses_filter() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        assert!(engine.match_one(&q, ViewId(0)).is_some());
        assert!(engine.match_one(&q, ViewId(2)).is_none());
    }

    #[test]
    fn removed_views_stop_matching() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        assert_eq!(engine.find_substitutes(&q).len(), 2);
        // Drop parts_low (ViewId 0).
        assert!(engine.remove_view(ViewId(0)));
        assert!(!engine.remove_view(ViewId(0)), "double remove is a no-op");
        assert_eq!(engine.live_view_count(), 3);
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 1);
        assert_eq!(engine.views().get(subs[0].0).name, "parts_mid");
        assert!(engine.match_one(&q, ViewId(0)).is_none());
        // The same holds with the filter tree disabled.
        let engine = engine_with_views(MatchConfig {
            use_filter_tree: false,
            ..MatchConfig::default()
        });
        engine.remove_view(ViewId(0));
        assert_eq!(engine.find_substitutes(&q).len(), 1);
        // Aggregation-tree removal works too.
        let engine = engine_with_views(MatchConfig::default());
        assert!(engine.remove_view(ViewId(3))); // orders_by_cust
        let (_, t) = tpch_catalog();
        let agg = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "n")],
        );
        assert!(engine.find_substitutes(&agg).is_empty());
    }

    #[test]
    fn audit_api_reports_index_state() {
        let engine = engine_with_views(MatchConfig::default());
        for id in 0..4 {
            assert!(engine.view_in_tree(ViewId(id)));
            assert!(!engine.is_removed(ViewId(id)));
        }
        assert!(engine.view_filter_keys(ViewId(99)).is_none());
        assert!(engine
            .match_one(&part_query(600, 900), ViewId(99))
            .is_none());
        let entries = engine.filter_entries();
        assert_eq!(entries.len(), 4);
        // Stored keys equal a fresh read-only derivation, up to the
        // normalization the lattice applies on insert.
        for (id, stored) in &entries {
            let derived = engine.view_filter_keys(*id).unwrap();
            assert!(stored.len() <= derived.len());
            for (s, d) in stored.iter().zip(derived.iter()) {
                let mut d = d.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(s, &d);
            }
        }
        // Evicting drops the view from the index but not from the engine.
        assert!(engine.evict_view_for_audit(ViewId(0)));
        assert!(!engine.view_in_tree(ViewId(0)));
        assert_eq!(engine.filter_entries().len(), 3);
        assert_eq!(engine.live_view_count(), 4);
        // Removed views have no keys and cannot be corrupted.
        let engine = engine_with_views(MatchConfig::default());
        engine.remove_view(ViewId(1));
        assert!(engine.view_filter_keys(ViewId(1)).is_none());
        assert!(!engine.evict_view_for_audit(ViewId(1)));
        assert!(!engine.refile_view_for_audit(ViewId(1), &[]));
    }

    #[test]
    fn refile_moves_the_index_entry() {
        let engine = engine_with_views(MatchConfig::default());
        let mut keys = engine.view_filter_keys(ViewId(0)).unwrap();
        keys.truncate(SPJ_LEVELS);
        keys[4].push(999_999); // bogus residual token
        assert!(engine.refile_view_for_audit(ViewId(0), &keys));
        assert!(!engine.view_in_tree(ViewId(0)), "stored keys are stale now");
        assert_eq!(engine.filter_entries().len(), 4);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "filter tree dropped matching view")]
    fn debug_hook_catches_evicted_view() {
        let engine = engine_with_views(MatchConfig::default());
        engine.evict_view_for_audit(ViewId(0));
        engine.find_substitutes(&part_query(600, 900));
    }

    #[test]
    fn rejects_invalid_view() {
        let (cat, t) = tpch_catalog();
        let engine = MatchingEngine::new(cat, MatchConfig::default());
        let bad = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(5, 0)), "oops")],
        );
        assert!(engine.add_view(ViewDef::new("bad", bad)).is_err());
    }

    #[test]
    fn add_views_bulk_is_all_or_nothing() {
        let (cat, t) = tpch_catalog();
        let engine = MatchingEngine::new(cat, MatchConfig::default());
        let (n1, v1) = part_view(0, 100, "a");
        let (n2, v2) = part_view(100, 200, "b");
        let ids = engine
            .add_views(vec![ViewDef::new(n1, v1), ViewDef::new(n2, v2)])
            .unwrap();
        assert_eq!(ids, vec![ViewId(0), ViewId(1)]);
        assert_eq!(engine.live_view_count(), 2);
        assert_eq!(engine.stats().registrations, 2);
        let epoch_before = engine.snapshot_epoch();
        // A batch with an invalid member registers nothing at all.
        let (n3, v3) = part_view(200, 300, "c");
        let bad = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(5, 0)), "oops")],
        );
        assert!(engine
            .add_views(vec![ViewDef::new(n3, v3), ViewDef::new("bad", bad)])
            .is_err());
        assert_eq!(engine.live_view_count(), 2);
        assert_eq!(engine.stats().registrations, 2);
        assert_eq!(engine.snapshot_epoch(), epoch_before, "nothing published");
    }

    #[test]
    fn disjoint_writes_preserve_cache_entries() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        let first = engine.find_substitutes(&q);
        // Removing the orders aggregate touches no table of the cached
        // part query, so its entry must survive.
        assert!(engine.remove_view(ViewId(3)));
        let again = engine.find_substitutes(&q);
        assert_eq!(first, again);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1, "disjoint removal must not evict");
        assert_eq!(stats.cache_invalidations, 0);
        assert_eq!(stats.removals, 1);
        // A check constraint on a table the query never references keeps
        // the entry valid too.
        let (_, t) = tpch_catalog();
        engine
            .add_check_constraint(
                t.orders,
                BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
            )
            .unwrap();
        engine.find_substitutes(&q);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_invalidations, 0);
    }

    #[test]
    fn overlapping_writes_invalidate_cache_entries() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        engine.find_substitutes(&q);
        // Registering another part view overlaps the cached query's
        // tables: the entry must go stale and the new view must appear.
        let (name, v) = part_view(0, 10_000, "parts_all");
        engine.add_view(ViewDef::new(name, v)).unwrap();
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 3, "the freshly registered view matches too");
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_invalidations, 1);
        assert_eq!(stats.registrations, 5, "4 initial + 1");
        // A check constraint on the query's own table invalidates as well.
        let (_, t) = tpch_catalog();
        engine
            .add_check_constraint(
                t.part,
                BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
            )
            .unwrap();
        engine.find_substitutes(&q);
        assert_eq!(engine.stats().cache_invalidations, 2);
    }

    #[test]
    fn disabled_constraint_folding_preserves_cache_entries() {
        // With `use_check_constraints` off, a registered constraint never
        // reaches any query summary, so registration must not invalidate —
        // even on the query's own table.
        let engine = engine_with_views(MatchConfig {
            use_check_constraints: false,
            ..MatchConfig::default()
        });
        let q = part_query(600, 900);
        let first = engine.find_substitutes(&q);
        let (_, t) = tpch_catalog();
        engine
            .add_check_constraint(
                t.part,
                BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
            )
            .unwrap();
        let again = engine.find_substitutes(&q);
        assert_eq!(first, again);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1, "unfolded constraint must not evict");
        assert_eq!(stats.cache_invalidations, 0);
    }

    #[test]
    fn strict_fresh_excludes_stale_views() {
        let engine = engine_with_views(MatchConfig {
            freshness: FreshnessPolicy::StrictFresh,
            ..MatchConfig::default()
        });
        let (_, t) = tpch_catalog();
        let q = part_query(600, 900);
        assert_eq!(engine.find_substitutes(&q).len(), 2);
        // A write round against part makes both part views stale.
        engine.record_base_write(t.part);
        assert!(engine.find_substitutes(&q).is_empty());
        assert_eq!(engine.view_staleness(ViewId(0)), Some(1));
        // `match_one` agrees with the batch path.
        assert!(engine.match_one(&q, ViewId(0)).is_none());
        // Maintenance restamps parts_low; it alone serves again, Fresh.
        assert!(engine.mark_view_maintained(ViewId(0)));
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].0, ViewId(0));
        assert!(subs[0].1.freshness.is_fresh());
        // The orders aggregate never referenced part: still fresh.
        assert_eq!(engine.view_staleness(ViewId(3)), Some(0));
    }

    #[test]
    fn bounded_staleness_admits_and_stamps_lag() {
        let engine = engine_with_views(MatchConfig {
            freshness: FreshnessPolicy::BoundedStaleness(2),
            ..MatchConfig::default()
        });
        let (_, t) = tpch_catalog();
        let q = part_query(600, 900);
        engine.record_base_write(t.part);
        engine.record_base_write(t.part);
        // Two rounds behind: admitted at the bound, stamped with the lag.
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 2);
        for (_, sub) in &subs {
            assert_eq!(sub.freshness, Freshness::Stale { lag: 2 });
        }
        // A third round exceeds the bound.
        engine.record_base_write(t.part);
        assert!(engine.find_substitutes(&q).is_empty());
    }

    #[test]
    fn stale_ok_serves_everything_with_honest_stamps() {
        let engine = engine_with_views(MatchConfig::default());
        let (_, t) = tpch_catalog();
        let q = part_query(600, 900);
        let fresh = engine.find_substitutes(&q);
        assert!(fresh.iter().all(|(_, s)| s.freshness.is_fresh()));
        engine.record_base_write(t.part);
        // StaleOk (the default) still serves, but the stamp says stale —
        // and the write invalidated the cached entry, so the stale stamp
        // is actually visible rather than replayed from cache.
        let stale = engine.find_substitutes(&q);
        assert_eq!(stale.len(), fresh.len());
        assert!(stale
            .iter()
            .all(|(_, s)| s.freshness == Freshness::Stale { lag: 1 }));
        assert_eq!(engine.stats().cache_invalidations, 1);
    }

    #[test]
    fn base_write_invalidates_via_view_table_closure() {
        // A view may cover more tables than the queries it serves (e.g.
        // after FK elimination), so `record_base_write` must bump the
        // epochs of *all* tables of every view containing the written
        // table — a cached query over a subset of the view's tables would
        // otherwise keep serving the old freshness stamp.
        let (cat, t) = tpch_catalog();
        let engine = MatchingEngine::new(cat, MatchConfig::default());
        // View joining orders to customer; queries over orders alone can
        // be served from it via FK elimination.
        let v = SpjgExpr::spj(
            vec![t.orders, t.customer],
            BoolExpr::col_eq(cr(0, 1), cr(1, 0)),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "o_orderkey"),
                NamedExpr::new(S::col(cr(0, 1)), "o_custkey"),
            ],
        );
        engine.add_view(ViewDef::new("orders_cust", v)).unwrap();
        let q = SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
        );
        let before = engine.find_substitutes(&q);
        assert_eq!(
            before.len(),
            1,
            "FK elimination serves orders from the join view"
        );
        // Writing *customer* — a table the query never references — still
        // changes the view's freshness, so the cached entry must go stale
        // and the re-match must carry the new stamp.
        engine.record_base_write(t.customer);
        let after = engine.find_substitutes(&q);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].1.freshness, Freshness::Stale { lag: 1 });
        assert_eq!(engine.stats().cache_invalidations, 1);
    }

    #[test]
    fn view_registered_after_writes_starts_fresh() {
        let engine = engine_with_views(MatchConfig {
            freshness: FreshnessPolicy::StrictFresh,
            ..MatchConfig::default()
        });
        let (_, t) = tpch_catalog();
        engine.record_base_write(t.part);
        // A view materialized *now* reflects the current data: its stamp
        // must equal the current epochs, not zero.
        let (name, v) = part_view(0, 10_000, "parts_all");
        let id = engine.add_view(ViewDef::new(name, v)).unwrap();
        assert_eq!(engine.view_staleness(id), Some(0));
        let subs = engine.find_substitutes(&part_query(600, 900));
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].0, id);
    }
}
