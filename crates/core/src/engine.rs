//! The matching engine: view registration, filter-tree maintenance, and
//! the `find_substitutes` entry point that a transformation-based optimizer
//! invokes as its view-matching rule.

use crate::cache::{fingerprint, CacheLookup, SubstituteCache};
use crate::descriptor::PreparedView;
use crate::filter::{FilterTree, LevelSearch};
use crate::fkgraph::{build_fk_graph, compute_hub};
use crate::matching::{match_view_prepared, MatchConfig, PreparedQuery};
use crate::stats::{AtomicMatchStats, MatchStats};
use crate::summary::ExprSummary;
use mv_catalog::{Catalog, ColumnId, TableId};
use mv_expr::{classify, BoolExpr, ColRef, Conjunct, OccId, Template};
use mv_plan::{AggFunc, OutputList, SpjgExpr, Substitute, ViewDef, ViewId, ViewSet};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Number of filter-tree levels for SPJ views (hub, source tables, output
/// expressions, output columns, residual predicates, range-constrained
/// columns).
pub const SPJ_LEVELS: usize = 6;
/// Aggregation views add grouping expressions and grouping columns.
pub const AGG_LEVELS: usize = 8;

/// Human-readable names of the filter-tree levels, in key order (the
/// first [`SPJ_LEVELS`] apply to the SPJ tree). Diagnostics use these to
/// say *which* partitioning condition wrongly pruned a view.
pub const LEVEL_NAMES: [&str; AGG_LEVELS] = [
    "hub",
    "source-tables",
    "output-exprs",
    "output-cols",
    "residuals",
    "range-cols",
    "grouping-exprs",
    "grouping-cols",
];

/// Filter-tree levels at which the paper-faithful strict expression
/// filter ([`MatchConfig::strict_expression_filter`], section 4.2.7) is
/// *deliberately* incomplete: the matcher can recompute a complex output
/// expression from a view's plain columns, but the strict filter requires
/// the rendered template to appear in the view's output-expression key.
/// A view pruned *only* at these levels while the matcher accepts it is
/// documented conservatism, not an index fault; any other rejecting level
/// is a genuine completeness violation (rule MV102).
pub fn strict_filter_exempt_levels(is_aggregate_view: bool) -> &'static [usize] {
    if is_aggregate_view {
        &[2, 6]
    } else {
        &[2]
    }
}

/// String interner mapping template texts to filter-key tokens.
///
/// Tokens are minted only on the **write path** (`add_view` /
/// `remove_view`, both `&mut self`); the query-side read path uses
/// [`Interner::lookup`], which never allocates or mutates. This is what
/// lets [`MatchingEngine`] be `Sync` without a lock around the interner,
/// and it also keeps the map's size proportional to the registered views
/// instead of growing with every distinct query ever matched.
#[derive(Debug, Default)]
struct Interner {
    map: HashMap<String, u64>,
}

/// Query-side token for a template text no registered view ever produced.
/// Real tokens are minted sequentially from 0, so this value cannot
/// collide. In a superset-level search an unknown token correctly empties
/// the result (no view key contains it); in a subset-level search it
/// merely widens the allowed set, which is equally harmless.
pub const UNKNOWN_TOKEN: u64 = u64::MAX;

impl Interner {
    /// Token for `s`, minting one only if the text was never seen —
    /// lookup first, so the common already-interned case allocates
    /// nothing.
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&t) = self.map.get(s) {
            return t;
        }
        let next = self.map.len() as u64;
        self.map.insert(s.to_string(), next);
        next
    }

    /// Read-only token lookup for the query path.
    fn lookup(&self, s: &str) -> u64 {
        self.map.get(s).copied().unwrap_or(UNKNOWN_TOKEN)
    }
}

/// Token for a base table. Public so `mv-audit` can decode and rebuild
/// level keys when validating the stored index entries.
pub fn table_token(t: TableId) -> u64 {
    t.0 as u64
}

/// Token for a base-qualified column. The filter tree compares columns at
/// the base-table level (not per occurrence), which is exact for
/// expressions without self-joins and conservative (never drops a valid
/// candidate) with them.
pub fn col_token(table: TableId, col: ColumnId) -> u64 {
    ((table.0 as u64) << 32) | col.0 as u64
}

/// Inverse of [`col_token`]: the `(table, column)` pair a column-level
/// key token denotes. Meaningful only for tokens taken from a
/// column-keyed filter level.
pub fn decode_col_token(token: u64) -> (TableId, ColumnId) {
    (TableId((token >> 32) as u32), ColumnId(token as u32))
}

fn base_col_token(expr: &SpjgExpr, c: ColRef) -> u64 {
    col_token(expr.table_of(c.occ), c.col)
}

/// The engine owning the view registry, per-view summaries, the filter
/// trees and the instrumentation counters.
///
/// # Concurrency
///
/// The engine is `Send + Sync`: registration (`add_view`,
/// `remove_view`, `add_check_constraint`) takes `&mut self`, while the
/// whole matching path (`find_substitutes`, `find_substitutes_batch`,
/// `candidates`, `match_one`) takes `&self` and touches no interior
/// mutability beyond the atomic [`AtomicMatchStats`] counters. A
/// multi-threaded optimizer host can therefore share one engine behind an
/// `Arc` and match queries from any number of threads concurrently; see
/// also [`MatchConfig::parallel_threshold`] for the intra-query fan-out
/// of the candidate loop.
#[derive(Debug)]
pub struct MatchingEngine {
    catalog: Catalog,
    config: MatchConfig,
    views: ViewSet,
    prepared: Vec<PreparedView>,
    spj_tree: FilterTree,
    agg_tree: FilterTree,
    interner: Interner,
    stats: AtomicMatchStats,
    /// Check constraints per table, pre-classified, with column references
    /// in table space (`occ = 0`).
    checks: HashMap<TableId, Vec<Conjunct>>,
    /// Views dropped with [`MatchingEngine::remove_view`]. Their slots (and
    /// names) stay reserved; matching skips them.
    removed: std::collections::HashSet<ViewId>,
    /// Fingerprint-keyed cache of complete `find_substitutes` results.
    cache: SubstituteCache,
    /// Registration epoch: bumped by every `add_view`/`remove_view`/
    /// `add_check_constraint`. Cache entries carry the epoch they were
    /// computed under and are lazily discarded on mismatch. A plain `u64`
    /// suffices: all writers hold `&mut self`, all readers `&self`.
    epoch: u64,
}

// Compile-time guarantee that the engine stays shareable across threads:
// a reintroduced `RefCell`/`Rc` anywhere in its fields breaks the build
// here, not in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MatchingEngine>()
};

impl MatchingEngine {
    /// Create an engine over a schema.
    pub fn new(catalog: Catalog, config: MatchConfig) -> Self {
        let cache = SubstituteCache::new(
            config.substitute_cache_capacity,
            config.substitute_cache_shards,
        );
        MatchingEngine {
            catalog,
            config,
            views: ViewSet::new(),
            prepared: Vec::new(),
            spj_tree: FilterTree::new(SPJ_LEVELS),
            agg_tree: FilterTree::new(AGG_LEVELS),
            interner: Interner::default(),
            stats: AtomicMatchStats::default(),
            checks: HashMap::new(),
            removed: std::collections::HashSet::new(),
            cache,
            epoch: 0,
        }
    }

    /// Drop a view from matching: it is removed from its filter tree and
    /// never considered again. The definition (and its name) stay
    /// registered — this mirrors dropping a cached query result, the
    /// intro's "cached results can be treated as temporary materialized
    /// views" scenario, where entries come and go.
    pub fn remove_view(&mut self, id: ViewId) -> bool {
        if self.removed.contains(&id) || (id.0 as usize) >= self.views.len() {
            return false;
        }
        let def = self.views.get(id);
        let vsum = self.prepared[id.0 as usize].summary.clone();
        let keys = Self::view_keys(
            &self.catalog,
            &self.config,
            &mut |s| self.interner.intern(s),
            &def.expr,
            &vsum,
        );
        let in_tree = if def.expr.is_aggregate() {
            self.agg_tree.remove(&keys, id)
        } else {
            self.spj_tree.remove(&keys[..SPJ_LEVELS], id)
        };
        debug_assert!(in_tree, "registered view must be present in its tree");
        self.removed.insert(id);
        // Invalidate cached results lazily: entries computed under an
        // older epoch are discarded at their next lookup.
        self.epoch += 1;
        true
    }

    /// Number of live (non-removed) views.
    pub fn live_view_count(&self) -> usize {
        self.views.len() - self.removed.len()
    }

    /// Declare a check constraint on a base table. The predicate uses
    /// `occ = 0` column references into the table. During matching, check
    /// constraints are folded into the query's antecedent (section 3.1.2:
    /// "check constraints on the tables of a query can be added to the
    /// where-clause without changing the query result"), so view
    /// predicates implied by a constraint no longer block matching.
    pub fn add_check_constraint(
        &mut self,
        table: TableId,
        predicate: BoolExpr,
    ) -> Result<(), String> {
        let n_cols = self.catalog.table(table).columns.len() as u32;
        for c in predicate.columns() {
            if c.occ != OccId(0) || c.col.0 >= n_cols {
                return Err(format!(
                    "check constraint column {c} out of range for table {}",
                    self.catalog.table(table).name
                ));
            }
        }
        self.checks
            .entry(table)
            .or_default()
            .extend(classify(predicate));
        // Check constraints change every query's effective summary, so
        // cached results are stale.
        self.epoch += 1;
        Ok(())
    }

    /// Analyze a query, folding in check constraints when enabled.
    pub fn query_summary(&self, query: &SpjgExpr) -> ExprSummary {
        if !self.config.use_check_constraints || self.checks.is_empty() {
            return ExprSummary::analyze(query);
        }
        let mut extras = Vec::new();
        for (occ, table) in query.occurrences() {
            if let Some(conjs) = self.checks.get(&table) {
                for conj in conjs {
                    // The closure is total, so the remap cannot fail; if a
                    // future edit breaks that, dropping the conjunct only
                    // weakens the antecedent (safe direction) — flag it in
                    // debug builds instead of panicking in release.
                    let mapped = conj.try_map_columns(&mut |c| Some(ColRef { occ, col: c.col }));
                    debug_assert!(mapped.is_some(), "total column remap cannot fail");
                    extras.extend(mapped);
                }
            }
        }
        ExprSummary::analyze_with_extras(query, &extras)
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The registered views.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// The declared check constraints, pre-classified per table, with
    /// column references in table space (`occ = 0`). Exposed so external
    /// analyzers (`mv-verify`, `mv-lint`) can reason from the same
    /// constraint knowledge the matcher uses.
    pub fn check_constraints(&self) -> &HashMap<TableId, Vec<Conjunct>> {
        &self.checks
    }

    /// Snapshot of the instrumentation counters.
    pub fn stats(&self) -> MatchStats {
        self.stats.snapshot()
    }

    /// Reset the instrumentation counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Register a materialized view: validates it, computes its summary
    /// and filter keys, and inserts it into the appropriate filter tree.
    pub fn add_view(&mut self, def: ViewDef) -> Result<ViewId, String> {
        def.expr.validate(&self.catalog)?;
        let vsum = ExprSummary::analyze(&def.expr);
        let keys = Self::view_keys(
            &self.catalog,
            &self.config,
            &mut |s| self.interner.intern(s),
            &def.expr,
            &vsum,
        );
        // Level 5 of the filter keys is exactly the view's interned
        // residual tokens; the prepared descriptor reuses them for the
        // per-candidate token-subset prefilter.
        let prepared = PreparedView::prepare(
            &self.catalog,
            &self.config,
            &def.expr,
            vsum,
            keys[4].clone(),
        );
        let is_agg = def.expr.is_aggregate();
        let id = self.views.add(def)?;
        self.prepared.push(prepared);
        if is_agg {
            self.agg_tree.insert(&keys, id);
        } else {
            self.spj_tree.insert(&keys[..SPJ_LEVELS], id);
        }
        self.epoch += 1;
        Ok(id)
    }

    /// Is an occurrence "anchored" for the hub refinement of section
    /// 4.2.2: does it carry a range or residual predicate on a column that
    /// participates in no non-trivial equivalence class?
    fn is_anchored(vsum: &ExprSummary, occ: OccId) -> bool {
        vsum.ranges
            .keys()
            .any(|r| r.occ == occ && vsum.ec.is_trivial(*r))
            || vsum
                .residuals
                .iter()
                .flat_map(|t| t.cols.iter())
                .any(|c| c.occ == occ && vsum.ec.is_trivial(*c))
    }

    /// Compute the 8 per-level filter keys for a view (the first 6 are
    /// used for SPJ views). An associated function over explicit fields —
    /// not a method — so the write-path callers can borrow the interner
    /// mutably while the view registry stays immutably borrowed.
    ///
    /// Template texts go through the `token` closure: the write path
    /// passes [`Interner::intern`] (minting), while the audit path passes
    /// the read-only [`Interner::lookup`] — for a registered view the two
    /// agree, because every one of its texts was interned at `add_view`
    /// time. That agreement is exactly what lets `mv-audit` re-derive a
    /// view's keys without mutating the engine.
    fn view_keys(
        catalog: &Catalog,
        config: &MatchConfig,
        token: &mut dyn FnMut(&str) -> u64,
        expr: &SpjgExpr,
        vsum: &ExprSummary,
    ) -> Vec<Vec<u64>> {
        let occs: Vec<(OccId, TableId)> = expr.occurrences().collect();

        // Level 1: hub condition key.
        let graph = build_fk_graph(catalog, &occs, &vsum.ec, &|_| config.null_rejecting_fk);
        let refined = config.refined_hubs;
        let hub = compute_hub(&graph, &|o| refined && Self::is_anchored(vsum, o));
        let k_hub: Vec<u64> = hub.into_iter().map(table_token).collect();

        // Level 2: source tables.
        let k_tables: Vec<u64> = expr.tables.iter().copied().map(table_token).collect();

        // Level 3: textual output expressions (complex scalar outputs plus
        // SUM argument templates).
        let mut k_exprs: Vec<u64> = Vec::new();
        for ne in expr.scalar_outputs() {
            if ne.expr.as_column().is_none() && !ne.expr.is_constant() {
                k_exprs.push(token(&Template::of_scalar(&ne.expr).text));
            }
        }
        for agg in expr.aggregate_outputs() {
            if let AggFunc::Sum(e) = &agg.func {
                k_exprs.push(token(&Template::of_scalar(e).text));
            }
        }

        // Level 4: extended output column list — every column equivalent
        // to a simple-column output (section 4.2.3).
        let mut k_outcols: Vec<u64> = Vec::new();
        for ne in expr.scalar_outputs() {
            if let Some(c) = ne.expr.as_column() {
                for m in vsum.ec.class_of(c) {
                    k_outcols.push(base_col_token(expr, m));
                }
            }
        }
        // With the backjoin extension, every column of a table whose
        // non-null unique key the view outputs is reachable too — the
        // filter must not prune views the matcher could still use.
        if config.allow_backjoins {
            k_outcols.extend(Self::backjoin_reachable_tokens(catalog, expr, vsum));
        }

        // Level 5: residual predicate texts.
        let k_residuals: Vec<u64> = vsum.residuals.iter().map(|t| token(&t.text)).collect();

        // Level 6: reduced range constraint list — constrained columns in
        // trivial equivalence classes (section 4.2.5).
        let k_ranges: Vec<u64> = vsum
            .ranges
            .keys()
            .filter(|r| vsum.ec.is_trivial(**r))
            .map(|r| base_col_token(expr, *r))
            .collect();

        // Level 7 (aggregation views): textual grouping expressions.
        let mut k_gexprs: Vec<u64> = Vec::new();
        // Level 8: extended grouping column list.
        let mut k_gcols: Vec<u64> = Vec::new();
        if expr.is_aggregate() {
            for ne in expr.scalar_outputs() {
                if let Some(c) = ne.expr.as_column() {
                    for m in vsum.ec.class_of(c) {
                        k_gcols.push(base_col_token(expr, m));
                    }
                } else if !ne.expr.is_constant() {
                    k_gexprs.push(token(&Template::of_scalar(&ne.expr).text));
                }
            }
            if config.allow_backjoins {
                k_gcols.extend(Self::backjoin_reachable_tokens(catalog, expr, vsum));
            }
        }

        vec![
            k_hub,
            k_tables,
            k_exprs,
            k_outcols,
            k_residuals,
            k_ranges,
            k_gexprs,
            k_gcols,
        ]
    }

    /// Base-qualified column tokens reachable through backjoins: for each
    /// occurrence whose base table has a non-null unique key fully covered
    /// by the view's simple outputs (through the view's equivalence
    /// classes), every column of that table.
    fn backjoin_reachable_tokens(
        catalog: &Catalog,
        expr: &SpjgExpr,
        vsum: &ExprSummary,
    ) -> Vec<u64> {
        let mut simple_outputs: HashMap<ColRef, ()> = HashMap::new();
        for ne in expr.scalar_outputs() {
            if let Some(c) = ne.expr.as_column() {
                simple_outputs.insert(c, ());
            }
        }
        let covered = |c: ColRef| {
            simple_outputs.contains_key(&c)
                || vsum
                    .ec
                    .class_of(c)
                    .into_iter()
                    .any(|m| simple_outputs.contains_key(&m))
        };
        let mut out = Vec::new();
        for (occ, table) in expr.occurrences() {
            let def = catalog.table(table);
            let joinable = def.keys.iter().any(|key| {
                key.columns
                    .iter()
                    .all(|&c| def.column(c).not_null && covered(ColRef { occ, col: c }))
            });
            if joinable {
                for c in 0..def.columns.len() as u32 {
                    out.push(col_token(table, ColumnId(c)));
                }
            }
        }
        out
    }

    /// Render and look up every query-side filter token exactly once.
    /// Both trees' search conditions are assembled from this one pass, so
    /// an aggregate query no longer renders its output templates twice.
    /// Lookups go through the read-only [`Interner::lookup`] — the query
    /// path mints no tokens and performs no interner writes.
    fn query_tokens(&self, query: &SpjgExpr, qsum: &ExprSummary) -> QueryTokens {
        let source: Vec<u64> = query.tables.iter().copied().map(table_token).collect();

        // Textual output expressions. With the paper-faithful strict
        // filter these must all appear in the view; recomputation from
        // plain columns is ignored (section 4.2.7 calls this
        // "conservative"). Against aggregation views every SUM argument
        // must match a view SUM output; against SPJ views a simple column
        // argument is recomputable and is covered by the output-column
        // condition instead — so simple SUM arguments are kept apart.
        let mut scalar_exprs: Vec<u64> = Vec::new();
        let mut sum_exprs_complex: Vec<u64> = Vec::new();
        let mut sum_exprs_simple: Vec<u64> = Vec::new();
        if self.config.strict_expression_filter {
            for ne in query.scalar_outputs() {
                if ne.expr.as_column().is_none() && !ne.expr.is_constant() {
                    scalar_exprs.push(self.interner.lookup(&Template::of_scalar(&ne.expr).text));
                }
            }
            for agg in query.aggregate_outputs() {
                if let AggFunc::Sum(e) = &agg.func {
                    let token = self.interner.lookup(&Template::of_scalar(e).text);
                    if e.as_column().is_none() && !e.is_constant() {
                        sum_exprs_complex.push(token);
                    } else {
                        sum_exprs_simple.push(token);
                    }
                }
            }
        }

        // Output-column hitting classes.
        let class_of = |c: ColRef| {
            let mut cl: Vec<u64> = qsum
                .ec
                .class_of(c)
                .into_iter()
                .map(|m| base_col_token(query, m))
                .collect();
            cl.sort();
            cl.dedup();
            cl
        };
        let out_classes: Vec<Vec<u64>> = query
            .scalar_outputs()
            .iter()
            .filter_map(|ne| ne.expr.as_column())
            .map(class_of)
            .collect();
        let sum_classes: Vec<Vec<u64>> = query
            .aggregate_outputs()
            .iter()
            .filter_map(|agg| match &agg.func {
                AggFunc::Sum(e) => e.as_column(),
                _ => None,
            })
            .map(class_of)
            .collect();

        // Residual texts of the query.
        let residuals: Vec<u64> = qsum
            .residuals
            .iter()
            .map(|t| self.interner.lookup(&t.text))
            .collect();

        // Extended range constraint list — every column of every
        // constrained equivalence class.
        let mut range_cols: Vec<u64> = Vec::new();
        for root in qsum.ranges.keys() {
            for m in qsum.ec.class_of(*root) {
                range_cols.push(base_col_token(query, m));
            }
        }

        QueryTokens {
            source,
            scalar_exprs,
            sum_exprs_complex,
            sum_exprs_simple,
            out_classes,
            sum_classes,
            residuals,
            range_cols,
        }
    }

    /// The candidate views for a query: filter-tree search, or every view
    /// when the filter tree is disabled.
    pub fn candidates(&self, query: &SpjgExpr, qsum: &ExprSummary) -> Vec<ViewId> {
        let mut out = Vec::new();
        self.candidates_into(query, qsum, &mut out);
        out
    }

    /// [`MatchingEngine::candidates`] into a caller-owned buffer (cleared
    /// first), so a driver probing many queries reuses one allocation.
    /// Both trees append into the same buffer, which is then sorted and
    /// deduplicated once.
    pub fn candidates_into(&self, query: &SpjgExpr, qsum: &ExprSummary, out: &mut Vec<ViewId>) {
        out.clear();
        if !self.config.use_filter_tree {
            out.extend(
                self.views
                    .iter()
                    .map(|(id, _)| id)
                    .filter(|id| !self.removed.contains(id)),
            );
            return;
        }
        let tokens = self.query_tokens(query, qsum);
        self.spj_tree.search_into(&tokens.spj_searches(), out);
        if query.is_aggregate() && !self.agg_tree.is_empty() {
            self.agg_tree.search_into(&tokens.agg_searches(), out);
        }
        // Removed views are already gone from the trees; the retain is a
        // cheap second line of defense for the matching invariant.
        out.retain(|id| !self.removed.contains(id));
        out.sort_unstable();
        // Each view lives in exactly one partition of exactly one tree, so
        // the merged result must already be duplicate-free.
        debug_assert!(
            out.windows(2).all(|w| w[0] != w[1]),
            "spj and agg filter trees must hold disjoint view sets"
        );
        out.dedup();
    }

    /// Run the full matching tests over a filtered candidate list,
    /// serially or fanned out across threads per
    /// [`MatchConfig::parallel_threshold`]. Each `match_view` call is pure
    /// in the engine's shared state, and results keep candidate order
    /// (ascending `ViewId`), so both paths return byte-identical lists.
    fn match_candidates(
        &self,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        candidates: &[ViewId],
    ) -> Vec<(ViewId, Substitute)> {
        let pq = PreparedQuery::new(query, qsum);
        // Sorted query residual tokens for the per-candidate prefilter:
        // every view residual must textually match a query residual, so a
        // candidate whose token set is not a subset cannot match.
        let mut q_res_tokens: Vec<u64> = qsum
            .residuals
            .iter()
            .map(|t| self.interner.lookup(&t.text))
            .collect();
        q_res_tokens.sort_unstable();
        let try_candidate = |&id: &ViewId| -> Option<(ViewId, Substitute)> {
            let view = self.views.get(id);
            let pv = &self.prepared[id.0 as usize];
            if !pv
                .residual_tokens
                .iter()
                .all(|t| q_res_tokens.binary_search(t).is_ok())
            {
                return None;
            }
            match_view_prepared(&self.catalog, &self.config, &pq, id, view, pv).map(|sub| (id, sub))
        };
        let workers = self.config.match_workers(candidates.len());
        if workers > 1 {
            mv_parallel::par_map_min_chunk(candidates, workers, 16, try_candidate)
                .into_iter()
                .flatten()
                .collect()
        } else {
            candidates.iter().filter_map(try_candidate).collect()
        }
    }

    /// Filter, match and debug-verify — the uncached matching pipeline.
    /// Returns the substitutes, the candidate count, and the filter time.
    fn compute_substitutes(
        &self,
        query: &SpjgExpr,
    ) -> (Vec<(ViewId, Substitute)>, usize, Duration) {
        let qsum = self.query_summary(query);

        let filter_started = self.config.timing.then(Instant::now);
        let candidates = self.candidates(query, &qsum);
        let filter_time = elapsed(filter_started);

        let out = self.match_candidates(query, &qsum, &candidates);
        #[cfg(debug_assertions)]
        {
            self.debug_verify(query, &out);
            self.debug_assert_filter_complete(query, &qsum, &candidates);
        }
        (out, candidates.len(), filter_time)
    }

    /// The view-matching rule: find every view from which `query` can be
    /// computed and build the substitutes. Updates the instrumentation
    /// counters. Callable concurrently from any number of threads sharing
    /// the engine.
    ///
    /// With the substitute cache enabled (see
    /// [`MatchConfig::substitute_cache_capacity`]), a repeated query shape
    /// returns the cached result — byte-identical to a fresh computation,
    /// which debug builds prove with a differential assertion on every
    /// hit. Hits replay the original candidate count into the stats so
    /// counter totals stay path-independent.
    pub fn find_substitutes(&self, query: &SpjgExpr) -> Vec<(ViewId, Substitute)> {
        let started = self.config.timing.then(Instant::now);
        if !self.cache.is_enabled() {
            let (out, n_candidates, filter_time) = self.compute_substitutes(query);
            self.stats.record(
                n_candidates,
                self.live_view_count(),
                out.len(),
                filter_time,
                elapsed(started),
            );
            return out;
        }
        let fp = fingerprint(query);
        match self.cache.lookup(fp.hash, &fp.render, self.epoch) {
            CacheLookup::Hit {
                mut results,
                candidates,
            } => {
                // Output names are the one query-specific part of a
                // substitute the fingerprint deliberately ignores.
                restamp_output_names(&mut results, query);
                #[cfg(debug_assertions)]
                {
                    self.debug_verify(query, &results);
                    let (fresh, _, _) = self.compute_substitutes(query);
                    assert_eq!(
                        results, fresh,
                        "cached substitutes must be byte-identical to a fresh \
                         computation for the probing query"
                    );
                }
                self.stats.record_cache_hit();
                self.stats.record(
                    candidates,
                    self.live_view_count(),
                    results.len(),
                    Duration::ZERO,
                    elapsed(started),
                );
                return results;
            }
            CacheLookup::Stale => self.stats.record_cache_invalidation(),
            CacheLookup::Miss | CacheLookup::Disabled => {}
        }
        let (out, n_candidates, filter_time) = self.compute_substitutes(query);
        self.stats.record_cache_miss();
        self.stats.record(
            n_candidates,
            self.live_view_count(),
            out.len(),
            filter_time,
            elapsed(started),
        );
        self.cache
            .insert(fp.hash, fp.render, self.epoch, n_candidates, out.clone());
        out
    }

    /// Drop every cached `find_substitutes` result (capacity unchanged).
    pub fn clear_substitute_cache(&self) {
        self.cache.clear();
    }

    /// Number of live entries in the substitute cache.
    pub fn substitute_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Match a whole batch of queries, fanning out across threads — the
    /// entry point for workload drivers and multi-query optimization.
    /// Results arrive in query order, each entry byte-identical to what
    /// [`MatchingEngine::find_substitutes`] returns for that query;
    /// instrumentation counters accumulate across all workers.
    pub fn find_substitutes_batch(&self, queries: &[SpjgExpr]) -> Vec<Vec<(ViewId, Substitute)>> {
        let workers = self.config.batch_workers(queries.len());
        mv_parallel::par_map(queries, workers, |q| self.find_substitutes(q))
    }

    /// Match the query against one specific view (bypassing the filter).
    /// Returns `None` for removed and out-of-range view ids rather than
    /// panicking — an id is data here, not a proven-valid handle.
    pub fn match_one(&self, query: &SpjgExpr, view: ViewId) -> Option<Substitute> {
        if self.removed.contains(&view) || (view.0 as usize) >= self.views.len() {
            return None;
        }
        let qsum = self.query_summary(query);
        self.match_one_prepared(query, &qsum, view)
    }

    /// [`MatchingEngine::match_one`] with a caller-supplied query summary,
    /// so a driver probing many views against one query (the `mv-audit`
    /// differential pass) analyzes the query once instead of per probe.
    pub fn match_one_prepared(
        &self,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        view: ViewId,
    ) -> Option<Substitute> {
        if self.removed.contains(&view) || (view.0 as usize) >= self.views.len() {
            return None;
        }
        let pq = PreparedQuery::new(query, qsum);
        let result = match_view_prepared(
            &self.catalog,
            &self.config,
            &pq,
            view,
            self.views.get(view),
            &self.prepared[view.0 as usize],
        );
        #[cfg(debug_assertions)]
        if let Some(sub) = &result {
            self.debug_verify(query, std::slice::from_ref(&(view, sub.clone())));
        }
        result
    }

    // ------------------------------------------------------------------
    // Audit API: read-only views into the filter index for `mv-audit`.
    // ------------------------------------------------------------------

    /// Has this view been dropped with [`MatchingEngine::remove_view`]?
    pub fn is_removed(&self, id: ViewId) -> bool {
        self.removed.contains(&id)
    }

    /// Re-derive the per-level filter keys of a registered live view,
    /// read-only: template texts resolve through [`Interner::lookup`], so
    /// no tokens are minted and the engine is not mutated. For a live view
    /// this reproduces exactly the keys `add_view` computed (every text
    /// was interned then). Returns `None` for removed or out-of-range ids.
    pub fn view_filter_keys(&self, id: ViewId) -> Option<Vec<Vec<u64>>> {
        if self.removed.contains(&id) || (id.0 as usize) >= self.views.len() {
            return None;
        }
        let def = self.views.get(id);
        let vsum = &self.prepared[id.0 as usize].summary;
        Some(Self::view_keys(
            &self.catalog,
            &self.config,
            &mut |s| self.interner.lookup(s),
            &def.expr,
            vsum,
        ))
    }

    /// Every `(view, stored per-level keys)` entry across both filter
    /// trees, exactly as the index holds them (normalized). SPJ entries
    /// carry [`SPJ_LEVELS`] keys, aggregation entries [`AGG_LEVELS`].
    pub fn filter_entries(&self) -> Vec<(ViewId, Vec<Vec<u64>>)> {
        let mut out = self.spj_tree.entries();
        out.extend(self.agg_tree.entries());
        out
    }

    /// Is the view filed in its tree under exactly the keys a fresh
    /// derivation produces? `false` means the index lost the view or
    /// holds it under stale keys — either way a search may never reach it.
    pub fn view_in_tree(&self, id: ViewId) -> bool {
        let Some(keys) = self.view_filter_keys(id) else {
            return false;
        };
        if self.views.get(id).expr.is_aggregate() {
            self.agg_tree.contains(&keys, id)
        } else {
            self.spj_tree.contains(&keys[..SPJ_LEVELS], id)
        }
    }

    /// The per-level search conditions a query poses against the SPJ and
    /// aggregation trees, in that order. Read-only (unknown template
    /// texts resolve to the reserved [`UNKNOWN_TOKEN`]).
    pub fn query_searches(
        &self,
        query: &SpjgExpr,
        qsum: &ExprSummary,
    ) -> (Vec<LevelSearch>, Vec<LevelSearch>) {
        let tokens = self.query_tokens(query, qsum);
        (tokens.spj_searches(), tokens.agg_searches())
    }

    /// Number of template-text tokens ever minted. Tokens are issued
    /// sequentially from 0, so any stored text token `>= known_token_count`
    /// (other than unreachable [`UNKNOWN_TOKEN`] query tokens) denotes a
    /// corrupted index entry.
    pub fn known_token_count(&self) -> u64 {
        self.interner.map.len() as u64
    }

    /// Corruption hook for the `mv-audit` test suite: silently drop `id`
    /// from its filter tree while the engine still believes it is live.
    /// Simulates an index that lost an entry. Never call outside tests.
    #[doc(hidden)]
    pub fn evict_view_for_audit(&mut self, id: ViewId) -> bool {
        let Some(keys) = self.view_filter_keys(id) else {
            return false;
        };
        if self.views.get(id).expr.is_aggregate() {
            self.agg_tree.remove(&keys, id)
        } else {
            self.spj_tree.remove(&keys[..SPJ_LEVELS], id)
        }
    }

    /// Corruption hook for the `mv-audit` test suite: re-file `id` under
    /// caller-chosen per-level keys (arity must match the view's tree).
    /// Simulates an index whose stored keys drifted from the definition.
    /// Never call outside tests.
    #[doc(hidden)]
    pub fn refile_view_for_audit(&mut self, id: ViewId, keys: &[Vec<u64>]) -> bool {
        if !self.evict_view_for_audit(id) {
            return false;
        }
        if self.views.get(id).expr.is_aggregate() {
            self.agg_tree.insert(keys, id);
        } else {
            self.spj_tree.insert(keys, id);
        }
        true
    }

    /// Debug-mode completeness oracle, the dual of
    /// [`MatchingEngine::debug_verify`]: after every filtered
    /// `find_substitutes`, exhaustively re-match each live view the filter
    /// tree pruned and panic if one of them actually matches — unless the
    /// only rejecting levels are the documented strict-expression-filter
    /// conservatism ([`strict_filter_exempt_levels`], section 4.2.7).
    /// Every test exercising the matching path in a debug build therefore
    /// doubles as a proof obligation that filter-tree candidates ⊇
    /// exhaustive matches. Capped at a modest catalog size so large debug
    /// workload tests stay fast; compiled out of release builds.
    #[cfg(debug_assertions)]
    fn debug_assert_filter_complete(
        &self,
        query: &SpjgExpr,
        qsum: &ExprSummary,
        candidates: &[ViewId],
    ) {
        const DEBUG_COMPLETENESS_CAP: usize = 512;
        if !self.config.use_filter_tree || self.live_view_count() > DEBUG_COMPLETENESS_CAP {
            return;
        }
        let (spj, agg) = self.query_searches(query, qsum);
        let pq = PreparedQuery::new(query, qsum);
        for (id, view) in self.views.iter() {
            // `candidates` is sorted (see `candidates_into`).
            if self.removed.contains(&id) || candidates.binary_search(&id).is_ok() {
                continue;
            }
            let pv = &self.prepared[id.0 as usize];
            if match_view_prepared(&self.catalog, &self.config, &pq, id, view, pv).is_none() {
                continue;
            }
            let is_agg = view.expr.is_aggregate();
            assert!(
                !is_agg || query.is_aggregate(),
                "matcher accepted aggregation view `{}` for a non-aggregate \
                 query — invalid per section 3.3",
                view.name
            );
            let keys = self
                .view_filter_keys(id)
                .expect("live view has derivable keys");
            let searches = if is_agg { &agg } else { &spj };
            let rejecting: Vec<usize> = searches
                .iter()
                .enumerate()
                .filter(|(lvl, s)| !s.accepts(&keys[*lvl]))
                .map(|(lvl, _)| lvl)
                .collect();
            let exempt = strict_filter_exempt_levels(is_agg);
            if self.config.strict_expression_filter
                && !rejecting.is_empty()
                && rejecting.iter().all(|l| exempt.contains(l))
            {
                continue;
            }
            let levels: Vec<&str> = rejecting.iter().map(|&l| LEVEL_NAMES[l]).collect();
            panic!(
                "filter tree dropped matching view `{}` (rejecting levels {levels:?}; \
                 an empty list means the view is missing from its tree)",
                view.name
            );
        }
    }

    /// Debug-mode oracle: run the independent `mv-verify` analyzer over
    /// every substitute the matcher just produced and panic on any
    /// ERROR-severity diagnostic. Because the analyzer shares no logic
    /// with the matcher, every test exercising the matching path doubles
    /// as a soundness test for both sides. Compiled out of release builds.
    #[cfg(debug_assertions)]
    fn debug_verify(&self, query: &SpjgExpr, results: &[(ViewId, Substitute)]) {
        let ctx = mv_verify::VerifyContext::new(&self.catalog, &self.checks);
        for (id, sub) in results {
            let view = self.views.get(*id);
            let diags =
                mv_verify::verify_substitute(&ctx, query, &view.expr, sub, &view.name, "query");
            let errors: Vec<String> = diags
                .iter()
                .filter(|d| d.severity == mv_verify::Severity::Error)
                .map(|d| d.to_json())
                .collect();
            assert!(
                errors.is_empty(),
                "mv-verify rejected a matcher-produced substitute for view `{}`:\n{}",
                view.name,
                errors.join("\n"),
            );
        }
    }
}

/// `Instant::elapsed` for a gated timer: `Duration::ZERO` when timing is
/// off ([`MatchConfig::timing`] = false).
fn elapsed(started: Option<Instant>) -> Duration {
    started.map_or(Duration::ZERO, |t| t.elapsed())
}

/// Overwrite the output names of cached substitutes with the probing
/// query's names. The fingerprint deliberately ignores names (α-equivalent
/// queries share an entry), and substitute outputs are positional with the
/// query's outputs, so restamping by position restores byte identity with
/// a fresh computation for this exact query.
fn restamp_output_names(results: &mut [(ViewId, Substitute)], query: &SpjgExpr) {
    let names = query.output_names();
    for (_, sub) in results.iter_mut() {
        match &mut sub.output {
            OutputList::Spj(items) => {
                for (item, name) in items.iter_mut().zip(&names) {
                    if item.name != *name {
                        item.name = (*name).to_string();
                    }
                }
            }
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                let (g_names, a_names) = names.split_at(group_by.len());
                for (item, name) in group_by.iter_mut().zip(g_names) {
                    if item.name != *name {
                        item.name = (*name).to_string();
                    }
                }
                for (item, name) in aggregates.iter_mut().zip(a_names) {
                    if item.name != *name {
                        item.name = (*name).to_string();
                    }
                }
            }
        }
    }
}

/// Query-side filter tokens, rendered once and shared by both trees'
/// search conditions.
struct QueryTokens {
    /// Source-table tokens (levels 1 and 2).
    source: Vec<u64>,
    /// Complex scalar output templates (level 3, and level 7 on the
    /// aggregation tree).
    scalar_exprs: Vec<u64>,
    /// Complex `SUM` argument templates — required from both view kinds.
    sum_exprs_complex: Vec<u64>,
    /// Simple-column `SUM` argument templates — required from aggregation
    /// views; against SPJ views the column condition covers them instead.
    sum_exprs_simple: Vec<u64>,
    /// Hitting classes of simple-column scalar outputs (level 4, and
    /// level 8 on the aggregation tree).
    out_classes: Vec<Vec<u64>>,
    /// Hitting classes of simple-column `SUM` arguments (SPJ tree only).
    sum_classes: Vec<Vec<u64>>,
    /// Residual predicate texts (level 5).
    residuals: Vec<u64>,
    /// Extended range-constrained column list (level 6).
    range_cols: Vec<u64>,
}

impl QueryTokens {
    /// Search conditions for the 6-level SPJ-view tree.
    fn spj_searches(&self) -> Vec<LevelSearch> {
        let exprs: Vec<u64> = self
            .scalar_exprs
            .iter()
            .chain(&self.sum_exprs_complex)
            .copied()
            .collect();
        let classes: Vec<Vec<u64>> = self
            .out_classes
            .iter()
            .chain(&self.sum_classes)
            .cloned()
            .collect();
        vec![
            LevelSearch::Subset(self.source.clone()),
            LevelSearch::Superset(self.source.clone()),
            LevelSearch::Superset(exprs),
            LevelSearch::Hitting(classes),
            LevelSearch::Subset(self.residuals.clone()),
            LevelSearch::Subset(self.range_cols.clone()),
        ]
    }

    /// Search conditions for the 8-level aggregation-view tree.
    fn agg_searches(&self) -> Vec<LevelSearch> {
        let exprs: Vec<u64> = self
            .scalar_exprs
            .iter()
            .chain(&self.sum_exprs_complex)
            .chain(&self.sum_exprs_simple)
            .copied()
            .collect();
        vec![
            LevelSearch::Subset(self.source.clone()),
            LevelSearch::Superset(self.source.clone()),
            LevelSearch::Superset(exprs),
            LevelSearch::Hitting(self.out_classes.clone()),
            LevelSearch::Subset(self.residuals.clone()),
            LevelSearch::Subset(self.range_cols.clone()),
            LevelSearch::Superset(self.scalar_exprs.clone()),
            LevelSearch::Hitting(self.out_classes.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{BoolExpr, CmpOp, ScalarExpr as S};
    use mv_plan::{NamedAgg, NamedExpr};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    fn part_view(lo: i64, hi: i64, name: &str) -> (String, SpjgExpr) {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(hi)),
        ]);
        (
            name.to_string(),
            SpjgExpr::spj(
                vec![t.part],
                pred,
                vec![
                    NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                    NamedExpr::new(S::col(cr(0, 5)), "p_size"),
                ],
            ),
        )
    }

    fn engine_with_views(config: MatchConfig) -> MatchingEngine {
        let (cat, t) = tpch_catalog();
        let mut engine = MatchingEngine::new(cat, config);
        for (name, v) in [
            part_view(0, 1000, "parts_low"),
            part_view(500, 2000, "parts_mid"),
            part_view(5000, 9000, "parts_high"),
        ] {
            engine.add_view(ViewDef::new(name, v)).unwrap();
        }
        // An unrelated orders aggregate.
        let agg = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        );
        engine
            .add_view(ViewDef::new("orders_by_cust", agg))
            .unwrap();
        engine
    }

    fn part_query(lo: i64, hi: i64) -> SpjgExpr {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(hi)),
        ]);
        SpjgExpr::spj(
            vec![t.part],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")],
        )
    }

    #[test]
    fn finds_all_containing_views() {
        let engine = engine_with_views(MatchConfig::default());
        // Query range [600, 900) is contained in parts_low and parts_mid.
        let subs = engine.find_substitutes(&part_query(600, 900));
        assert_eq!(subs.len(), 2);
        // Range [400, 900) only fits parts_low.
        let subs = engine.find_substitutes(&part_query(400, 900));
        assert_eq!(subs.len(), 1);
        assert_eq!(engine.views.get(subs[0].0).name, "parts_low");
    }

    #[test]
    fn filter_and_no_filter_agree() {
        let with = engine_with_views(MatchConfig::default());
        let without = engine_with_views(MatchConfig {
            use_filter_tree: false,
            ..MatchConfig::default()
        });
        for (lo, hi) in [(600, 900), (400, 900), (0, 10_000), (5500, 6000)] {
            let q = part_query(lo, hi);
            let mut a: Vec<ViewId> = with
                .find_substitutes(&q)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            let mut b: Vec<ViewId> = without
                .find_substitutes(&q)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "range [{lo},{hi})");
        }
    }

    #[test]
    fn filter_narrows_candidates() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        let qsum = ExprSummary::analyze(&q);
        let candidates = engine.candidates(&q, &qsum);
        // The orders aggregate must never be a candidate for a part query.
        assert!(candidates.len() <= 3);
        let (_, t) = tpch_catalog();
        for id in candidates {
            assert_eq!(engine.views().get(id).expr.tables, vec![t.part]);
        }
    }

    #[test]
    fn stats_accumulate() {
        let engine = engine_with_views(MatchConfig::default());
        engine.find_substitutes(&part_query(600, 900));
        engine.find_substitutes(&part_query(400, 900));
        let stats = engine.stats();
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.substitutes, 3);
        assert_eq!(stats.views_available, 8);
        assert!(stats.candidates <= 8);
        engine.reset_stats();
        assert_eq!(engine.stats().invocations, 0);
    }

    #[test]
    fn aggregate_query_sees_both_trees() {
        let engine = engine_with_views(MatchConfig::default());
        let (_, t) = tpch_catalog();
        // Aggregate query over orders: answered by the aggregation view.
        let q = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "n")],
        );
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 1);
        assert_eq!(engine.views().get(subs[0].0).name, "orders_by_cust");
    }

    #[test]
    fn match_one_bypasses_filter() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        assert!(engine.match_one(&q, ViewId(0)).is_some());
        assert!(engine.match_one(&q, ViewId(2)).is_none());
    }

    #[test]
    fn removed_views_stop_matching() {
        let engine = engine_with_views(MatchConfig::default());
        let q = part_query(600, 900);
        assert_eq!(engine.find_substitutes(&q).len(), 2);
        let mut engine = engine;
        // Drop parts_low (ViewId 0).
        assert!(engine.remove_view(ViewId(0)));
        assert!(!engine.remove_view(ViewId(0)), "double remove is a no-op");
        assert_eq!(engine.live_view_count(), 3);
        let subs = engine.find_substitutes(&q);
        assert_eq!(subs.len(), 1);
        assert_eq!(engine.views().get(subs[0].0).name, "parts_mid");
        assert!(engine.match_one(&q, ViewId(0)).is_none());
        // The same holds with the filter tree disabled.
        let mut engine = engine_with_views(MatchConfig {
            use_filter_tree: false,
            ..MatchConfig::default()
        });
        engine.remove_view(ViewId(0));
        assert_eq!(engine.find_substitutes(&q).len(), 1);
        // Aggregation-tree removal works too.
        let mut engine = engine_with_views(MatchConfig::default());
        assert!(engine.remove_view(ViewId(3))); // orders_by_cust
        let (_, t) = tpch_catalog();
        let agg = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "n")],
        );
        assert!(engine.find_substitutes(&agg).is_empty());
    }

    #[test]
    fn audit_api_reports_index_state() {
        let engine = engine_with_views(MatchConfig::default());
        for id in 0..4 {
            assert!(engine.view_in_tree(ViewId(id)));
            assert!(!engine.is_removed(ViewId(id)));
        }
        assert!(engine.view_filter_keys(ViewId(99)).is_none());
        assert!(engine
            .match_one(&part_query(600, 900), ViewId(99))
            .is_none());
        let entries = engine.filter_entries();
        assert_eq!(entries.len(), 4);
        // Stored keys equal a fresh read-only derivation, up to the
        // normalization the lattice applies on insert.
        for (id, stored) in &entries {
            let derived = engine.view_filter_keys(*id).unwrap();
            assert!(stored.len() <= derived.len());
            for (s, d) in stored.iter().zip(derived.iter()) {
                let mut d = d.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(s, &d);
            }
        }
        // Evicting drops the view from the index but not from the engine.
        let mut engine = engine;
        assert!(engine.evict_view_for_audit(ViewId(0)));
        assert!(!engine.view_in_tree(ViewId(0)));
        assert_eq!(engine.filter_entries().len(), 3);
        assert_eq!(engine.live_view_count(), 4);
        // Removed views have no keys and cannot be corrupted.
        let mut engine = engine_with_views(MatchConfig::default());
        engine.remove_view(ViewId(1));
        assert!(engine.view_filter_keys(ViewId(1)).is_none());
        assert!(!engine.evict_view_for_audit(ViewId(1)));
        assert!(!engine.refile_view_for_audit(ViewId(1), &[]));
    }

    #[test]
    fn refile_moves_the_index_entry() {
        let mut engine = engine_with_views(MatchConfig::default());
        let mut keys = engine.view_filter_keys(ViewId(0)).unwrap();
        keys.truncate(SPJ_LEVELS);
        keys[4].push(999_999); // bogus residual token
        assert!(engine.refile_view_for_audit(ViewId(0), &keys));
        assert!(!engine.view_in_tree(ViewId(0)), "stored keys are stale now");
        assert_eq!(engine.filter_entries().len(), 4);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "filter tree dropped matching view")]
    fn debug_hook_catches_evicted_view() {
        let mut engine = engine_with_views(MatchConfig::default());
        engine.evict_view_for_audit(ViewId(0));
        engine.find_substitutes(&part_query(600, 900));
    }

    #[test]
    fn rejects_invalid_view() {
        let (cat, t) = tpch_catalog();
        let mut engine = MatchingEngine::new(cat, MatchConfig::default());
        let bad = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(5, 0)), "oops")],
        );
        assert!(engine.add_view(ViewDef::new("bad", bad)).is_err());
    }
}
