//! The filter tree of section 4.2: a stack of lattice indexes that
//! "recursively subdivides the set of views into smaller and smaller
//! non-overlapping partitions. At each level, a different partitioning
//! condition is applied."
//!
//! Keys at every level are sets of opaque `u64` tokens (table ids,
//! base-qualified column ids, or interned template texts — the
//! [`crate::engine`] module computes them). Each level searches its lattice
//! index with one of three monotone conditions:
//!
//! * [`LevelSearch::Subset`] — view key ⊆ query key (hub condition,
//!   residual-predicate condition, weak range-constraint condition),
//! * [`LevelSearch::Superset`] — view key ⊇ query key (source-table
//!   condition, output/grouping-expression conditions),
//! * [`LevelSearch::Hitting`] — the view key intersects every one of the
//!   query's equivalence classes (output-column and grouping-column
//!   conditions, sections 4.2.3/4.2.4).

use crate::lattice::LatticeIndex;
use mv_plan::ViewId;
use std::sync::Arc;

/// The search condition applied at one level.
#[derive(Debug, Clone)]
pub enum LevelSearch {
    /// Qualify nodes whose key is a subset of the given set.
    Subset(Vec<u64>),
    /// Qualify nodes whose key is a superset of the given set.
    Superset(Vec<u64>),
    /// Qualify nodes whose key intersects every one of the given classes.
    /// An empty class list qualifies everything.
    Hitting(Vec<Vec<u64>>),
}

impl LevelSearch {
    /// Would this search condition accept a partition stored under `key`?
    ///
    /// This is the pointwise form of the monotone condition each level's
    /// lattice search evaluates over whole branches; `mv-audit` uses it to
    /// attribute a wrongly pruned view to the first level whose stored key
    /// fails the query's condition. `key` need not be normalized.
    pub fn accepts(&self, key: &[u64]) -> bool {
        let mut key = key.to_vec();
        key.sort_unstable();
        key.dedup();
        match self {
            LevelSearch::Subset(s) => {
                let mut s = s.clone();
                s.sort_unstable();
                key.iter().all(|k| s.binary_search(k).is_ok())
            }
            LevelSearch::Superset(s) => s.iter().all(|e| key.binary_search(e).is_ok()),
            LevelSearch::Hitting(classes) => classes
                .iter()
                .all(|cl| cl.iter().any(|e| key.binary_search(e).is_ok())),
        }
    }
}

/// One partition node of the filter tree. Children are held behind `Arc`
/// so a cloned tree shares every untouched subtree with the original:
/// the online catalog clones the published tree per registration and
/// mutates only the root-to-leaf path of the affected partition
/// (`Arc::make_mut` copies a shared node on first write), leaving the
/// published snapshot untouched.
#[derive(Debug, Clone)]
enum FilterNode {
    /// Bottom level: the views in this partition.
    Leaf(Vec<ViewId>),
    /// Interior level: a lattice index over the next partitioning key.
    Internal(LatticeIndex<u64, Arc<FilterNode>>),
}

/// A filter tree with a fixed number of levels.
///
/// `Clone` is a *structural-sharing* copy: the root level's lattice node
/// table is copied, but every child partition is shared behind an `Arc`
/// until a write touches it. Cloning a 100k-view tree costs the root
/// fan-out, not the whole index.
#[derive(Debug, Clone)]
pub struct FilterTree {
    depth: usize,
    root: FilterNode,
    len: usize,
}

impl FilterTree {
    /// An empty tree with `depth` levels (one key per level).
    pub fn new(depth: usize) -> Self {
        let root = if depth == 0 {
            FilterNode::Leaf(Vec::new())
        } else {
            FilterNode::Internal(LatticeIndex::new())
        };
        FilterTree {
            depth,
            root,
            len: 0,
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of views stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no views.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a view with its per-level keys (`keys.len()` must equal the
    /// tree depth).
    pub fn insert(&mut self, keys: &[Vec<u64>], view: ViewId) {
        assert_eq!(keys.len(), self.depth, "level key count mismatch");
        self.len += 1;
        Self::insert_node(&mut self.root, keys, view);
    }

    fn insert_node(node: &mut FilterNode, keys: &[Vec<u64>], view: ViewId) {
        match node {
            FilterNode::Leaf(views) => {
                debug_assert!(keys.is_empty());
                views.push(view);
            }
            FilterNode::Internal(index) => {
                let child = index.get_or_insert_with(keys[0].clone(), || {
                    Arc::new(if keys.len() == 1 {
                        FilterNode::Leaf(Vec::new())
                    } else {
                        FilterNode::Internal(LatticeIndex::new())
                    })
                });
                // Copy-on-write: a child shared with a published snapshot
                // is cloned here (one lattice level), an unshared one is
                // mutated in place.
                Self::insert_node(Arc::make_mut(child), &keys[1..], view);
            }
        }
    }

    /// Remove a view previously inserted under exactly these keys.
    /// Returns whether it was found. The partition structure remains (a
    /// re-insert under the same keys is cheap).
    pub fn remove(&mut self, keys: &[Vec<u64>], view: ViewId) -> bool {
        assert_eq!(keys.len(), self.depth, "level key count mismatch");
        let removed = Self::remove_node(&mut self.root, keys, view);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_node(node: &mut FilterNode, keys: &[Vec<u64>], view: ViewId) -> bool {
        match node {
            FilterNode::Leaf(views) => match views.iter().position(|&v| v == view) {
                Some(i) => {
                    views.remove(i);
                    true
                }
                None => false,
            },
            FilterNode::Internal(index) => match index.peek_mut(keys[0].clone()) {
                Some(child) => Self::remove_node(Arc::make_mut(child), &keys[1..], view),
                None => false,
            },
        }
    }

    /// Is `view` stored under exactly these per-level keys? Keys need not
    /// be normalized. Panics if `keys.len()` differs from the tree depth,
    /// like [`FilterTree::insert`].
    pub fn contains(&self, keys: &[Vec<u64>], view: ViewId) -> bool {
        assert_eq!(keys.len(), self.depth, "level key count mismatch");
        let mut node = &self.root;
        for key in keys {
            match node {
                FilterNode::Leaf(_) => unreachable!("depth checked above"),
                FilterNode::Internal(index) => match index.peek(key.clone()) {
                    Some(child) => node = child,
                    None => return false,
                },
            }
        }
        match node {
            FilterNode::Leaf(views) => views.contains(&view),
            FilterNode::Internal(_) => unreachable!("depth checked above"),
        }
    }

    /// Every `(view, per-level keys)` pair stored in the tree, in
    /// unspecified order. Keys come back normalized (sorted, deduplicated)
    /// — the form the lattice indexes store. `mv-audit` walks this to
    /// check each stored entry against a fresh re-derivation of the view's
    /// keys.
    pub fn entries(&self) -> Vec<(ViewId, Vec<Vec<u64>>)> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        Self::collect_entries(&self.root, &mut prefix, &mut out);
        out
    }

    fn collect_entries(
        node: &FilterNode,
        prefix: &mut Vec<Vec<u64>>,
        out: &mut Vec<(ViewId, Vec<Vec<u64>>)>,
    ) {
        match node {
            FilterNode::Leaf(views) => {
                out.extend(views.iter().map(|&v| (v, prefix.clone())));
            }
            FilterNode::Internal(index) => {
                for (key, child) in index.iter() {
                    prefix.push(key.to_vec());
                    Self::collect_entries(child, prefix, out);
                    prefix.pop();
                }
            }
        }
    }

    /// Collect the views in all partitions satisfying every level's search
    /// condition.
    pub fn search(&self, searches: &[LevelSearch]) -> Vec<ViewId> {
        let mut out = Vec::new();
        self.search_into(searches, &mut out);
        out
    }

    /// [`FilterTree::search`] into a caller-owned buffer: results are
    /// **appended** (the buffer is not cleared), so one buffer can collect
    /// the union over several trees without intermediate allocations.
    ///
    /// Each level's search set is normalized (sorted, deduplicated) once
    /// up front; the per-partition lattice searches then run through the
    /// allocation-free visitor API — a descent over a large tree does no
    /// per-partition allocation.
    pub fn search_into(&self, searches: &[LevelSearch], out: &mut Vec<ViewId>) {
        assert_eq!(searches.len(), self.depth, "level search count mismatch");
        let normalized: Vec<LevelSearch> = searches
            .iter()
            .map(|s| match s {
                LevelSearch::Subset(v) => {
                    let mut v = v.clone();
                    v.sort_unstable();
                    v.dedup();
                    LevelSearch::Subset(v)
                }
                LevelSearch::Superset(v) => {
                    let mut v = v.clone();
                    v.sort_unstable();
                    v.dedup();
                    LevelSearch::Superset(v)
                }
                LevelSearch::Hitting(classes) => LevelSearch::Hitting(classes.clone()),
            })
            .collect();
        Self::search_node(&self.root, &normalized, out);
    }

    /// `searches` must already be normalized (sorted, deduplicated sets).
    fn search_node(node: &FilterNode, searches: &[LevelSearch], out: &mut Vec<ViewId>) {
        match node {
            FilterNode::Leaf(views) => out.extend(views.iter().copied()),
            FilterNode::Internal(index) => {
                let rest = &searches[1..];
                let descend = |child: &Arc<FilterNode>| Self::search_node(child, rest, out);
                match &searches[0] {
                    LevelSearch::Subset(s) => index.for_each_subset_value(s, descend),
                    LevelSearch::Superset(s) => index.for_each_superset_value(s, descend),
                    LevelSearch::Hitting(classes) => index.for_each_monotone_down_value(
                        |key| {
                            classes
                                .iter()
                                .all(|cl| cl.iter().any(|e| key.binary_search(e).is_ok()))
                        },
                        descend,
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ViewId {
        ViewId(i)
    }

    #[test]
    fn two_level_tree_composes_conditions() {
        // Level 0: source tables (superset condition).
        // Level 1: residual templates (subset condition).
        let mut tree = FilterTree::new(2);
        tree.insert(&[vec![1, 2], vec![100]], v(0)); // tables {1,2}, residuals {100}
        tree.insert(&[vec![1, 2], vec![]], v(1)); // tables {1,2}, no residuals
        tree.insert(&[vec![1], vec![]], v(2)); // tables {1}
        tree.insert(&[vec![1, 2, 3], vec![100, 200]], v(3));
        assert_eq!(tree.len(), 4);

        // Query over tables {1,2} with residuals {100}:
        // - view must reference at least {1,2} (v0, v1, v3 qualify),
        // - view residuals must be ⊆ {100} (drops v3).
        let mut found = tree.search(&[
            LevelSearch::Superset(vec![1, 2]),
            LevelSearch::Subset(vec![100]),
        ]);
        found.sort();
        assert_eq!(found, vec![v(0), v(1)]);

        // Query with no residuals: only residual-free views qualify.
        let found = tree.search(&[
            LevelSearch::Superset(vec![1, 2]),
            LevelSearch::Subset(vec![]),
        ]);
        assert_eq!(found, vec![v(1)]);
    }

    #[test]
    fn hitting_condition_level() {
        // One level keyed by extended output columns; the query needs one
        // column from each class.
        let mut tree = FilterTree::new(1);
        tree.insert(&[vec![10, 11, 20]], v(0));
        tree.insert(&[vec![10, 30]], v(1));
        tree.insert(&[vec![20, 30]], v(2));
        // Query classes: {10, 11} and {30, 31}.
        let search = LevelSearch::Hitting(vec![vec![10, 11], vec![30, 31]]);
        let found = tree.search(std::slice::from_ref(&search));
        assert_eq!(found, vec![v(1)]);
        // Empty class list: everything qualifies.
        let found = tree.search(&[LevelSearch::Hitting(vec![])]);
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn zero_depth_tree_returns_everything() {
        let mut tree = FilterTree::new(0);
        tree.insert(&[], v(7));
        tree.insert(&[], v(8));
        assert_eq!(tree.search(&[]), vec![v(7), v(8)]);
    }

    #[test]
    #[should_panic(expected = "level key count mismatch")]
    fn wrong_key_arity_panics() {
        let mut tree = FilterTree::new(2);
        tree.insert(&[vec![1]], v(0));
    }

    #[test]
    fn accepts_mirrors_search_conditions() {
        let sub = LevelSearch::Subset(vec![100, 200]);
        assert!(sub.accepts(&[100]));
        assert!(sub.accepts(&[]));
        assert!(sub.accepts(&[200, 100, 100])); // unnormalized input
        assert!(!sub.accepts(&[100, 300]));
        let sup = LevelSearch::Superset(vec![1, 2]);
        assert!(sup.accepts(&[2, 1, 3]));
        assert!(!sup.accepts(&[1]));
        let hit = LevelSearch::Hitting(vec![vec![10, 11], vec![30, 31]]);
        assert!(hit.accepts(&[11, 30]));
        assert!(!hit.accepts(&[10, 20]));
        assert!(LevelSearch::Hitting(vec![]).accepts(&[]));
    }

    #[test]
    fn accepts_agrees_with_tree_search() {
        // Any view returned by a tree search must be accepted level-by-level
        // by the same conditions, and vice versa.
        let mut tree = FilterTree::new(2);
        let keys: Vec<Vec<Vec<u64>>> = vec![
            vec![vec![1, 2], vec![100]],
            vec![vec![1, 2], vec![]],
            vec![vec![1], vec![]],
            vec![vec![1, 2, 3], vec![100, 200]],
        ];
        for (i, k) in keys.iter().enumerate() {
            tree.insert(k, v(i as u32));
        }
        let searches = [
            LevelSearch::Superset(vec![1, 2]),
            LevelSearch::Subset(vec![100]),
        ];
        let mut found = tree.search(&searches);
        found.sort();
        let expected: Vec<ViewId> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| searches.iter().zip(k.iter()).all(|(s, key)| s.accepts(key)))
            .map(|(i, _)| v(i as u32))
            .collect();
        assert_eq!(found, expected);
    }

    #[test]
    fn contains_and_entries_report_stored_keys() {
        let mut tree = FilterTree::new(2);
        tree.insert(&[vec![2, 1, 1], vec![100]], v(0)); // stored normalized
        tree.insert(&[vec![3], vec![]], v(1));
        assert!(tree.contains(&[vec![1, 2], vec![100]], v(0)));
        assert!(tree.contains(&[vec![2, 1], vec![100]], v(0))); // unnormalized probe
        assert!(!tree.contains(&[vec![1, 2], vec![100]], v(1)));
        assert!(!tree.contains(&[vec![1], vec![100]], v(0)));
        let mut entries = tree.entries();
        entries.sort();
        assert_eq!(
            entries,
            vec![
                (v(0), vec![vec![1, 2], vec![100]]),
                (v(1), vec![vec![3], vec![]]),
            ]
        );
        tree.remove(&[vec![1, 2], vec![100]], v(0));
        assert!(!tree.contains(&[vec![1, 2], vec![100]], v(0)));
        assert_eq!(tree.entries(), vec![(v(1), vec![vec![3], vec![]])]);
    }

    #[test]
    fn partitions_do_not_leak() {
        let mut tree = FilterTree::new(2);
        tree.insert(&[vec![1], vec![5]], v(0));
        tree.insert(&[vec![2], vec![5]], v(1));
        // Search that matches the second level for everyone, first level
        // only for table {1}.
        let found = tree.search(&[
            LevelSearch::Superset(vec![1]),
            LevelSearch::Subset(vec![5, 6]),
        ]);
        assert_eq!(found, vec![v(0)]);
    }
}
