//! Ordering-aware atomic shims.
//!
//! Inside a model execution every access goes through the scheduler's
//! release/acquire memory model: a relaxed or acquire load may observe
//! any coherence-admissible store (each admissible set > 1 is a DFS
//! branch point), RMWs always operate on the newest store, and release
//! stores carry the writer's vector clock so acquire loads establish
//! happens-before. Outside an execution the shims are plain std atomics.

use std::fmt;

pub use std::sync::atomic::Ordering;

use std::sync::atomic::AtomicU64 as Cell;

use crate::ctx::ctx;
use crate::exec::Object;

macro_rules! atomic_shim {
    ($name:ident, $raw:ty, $prim:ty) => {
        pub struct $name {
            cell: Cell,
            inner: $raw,
        }

        // The casts are identities for the u64 instantiation.
        #[allow(clippy::unnecessary_cast)]
        impl $name {
            pub const fn new(value: $prim) -> $name {
                $name {
                    cell: Cell::new(0),
                    inner: <$raw>::new(value),
                }
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                match ctx() {
                    None => self.inner.load(ord),
                    Some((exec, me)) => {
                        let obj = exec.ensure_object(&self.cell, || {
                            Object::new_atomic(self.inner.load(Ordering::SeqCst) as u64)
                        });
                        exec.op_atomic_load(me, obj, ord) as $prim
                    }
                }
            }

            pub fn store(&self, value: $prim, ord: Ordering) {
                match ctx() {
                    None => self.inner.store(value, ord),
                    Some((exec, me)) => {
                        let obj = exec.ensure_object(&self.cell, || {
                            Object::new_atomic(self.inner.load(Ordering::SeqCst) as u64)
                        });
                        exec.op_atomic_store(me, obj, value as u64, ord, |v| {
                            self.inner.store(v as $prim, Ordering::SeqCst)
                        });
                    }
                }
            }

            fn rmw(&self, ord: Ordering, f: impl FnOnce($prim) -> $prim) -> $prim {
                match ctx() {
                    None => unreachable!("rmw fallback handled per-method"),
                    Some((exec, me)) => {
                        let obj = exec.ensure_object(&self.cell, || {
                            Object::new_atomic(self.inner.load(Ordering::SeqCst) as u64)
                        });
                        exec.op_atomic_rmw(
                            me,
                            obj,
                            ord,
                            |v| f(v as $prim) as u64,
                            |v| self.inner.store(v as $prim, Ordering::SeqCst),
                        ) as $prim
                    }
                }
            }

            pub fn fetch_add(&self, value: $prim, ord: Ordering) -> $prim {
                if ctx().is_none() {
                    return self.inner.fetch_add(value, ord);
                }
                self.rmw(ord, |v| v.wrapping_add(value))
            }

            pub fn fetch_sub(&self, value: $prim, ord: Ordering) -> $prim {
                if ctx().is_none() {
                    return self.inner.fetch_sub(value, ord);
                }
                self.rmw(ord, |v| v.wrapping_sub(value))
            }

            pub fn fetch_or(&self, value: $prim, ord: Ordering) -> $prim {
                if ctx().is_none() {
                    return self.inner.fetch_or(value, ord);
                }
                self.rmw(ord, |v| v | value)
            }

            pub fn fetch_and(&self, value: $prim, ord: Ordering) -> $prim {
                if ctx().is_none() {
                    return self.inner.fetch_and(value, ord);
                }
                self.rmw(ord, |v| v & value)
            }

            pub fn fetch_max(&self, value: $prim, ord: Ordering) -> $prim {
                if ctx().is_none() {
                    return self.inner.fetch_max(value, ord);
                }
                self.rmw(ord, |v| v.max(value))
            }

            pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                if ctx().is_none() {
                    return self.inner.swap(value, ord);
                }
                self.rmw(ord, |_| value)
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if ctx().is_none() {
                    return self.inner.compare_exchange(current, new, success, failure);
                }
                // Model path: a CAS is an RMW that either installs `new`
                // or re-installs the observed value. Either way it reads
                // the newest store, which is exactly CAS semantics.
                let ord = if success == Ordering::Relaxed {
                    failure
                } else {
                    success
                };
                let seen = self.rmw(ord, |v| if v == current { new } else { v });
                if seen == current {
                    Ok(seen)
                } else {
                    Err(seen)
                }
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.inner)
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(0)
            }
        }
    };
}

atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
