//! Thread-local link from a model thread to its execution.
//!
//! When the context is `None`, every shim primitive falls back to plain
//! std behavior — this is what lets reference engines be built *outside*
//! `explore` in the same mv_model-compiled binary.

use std::any::Any;
use std::cell::RefCell;
use std::sync::Arc;

use crate::exec::Execution;

std::thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(v: Option<(Arc<Execution>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

pub(crate) fn panic_message(p: &Box<dyn Any + Send + 'static>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("thread panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("thread panicked: {s}")
    } else {
        "thread panicked (non-string payload)".to_string()
    }
}
