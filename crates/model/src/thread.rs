//! `thread::spawn` shim. Spawned closures run on real OS threads, but a
//! model thread only makes progress while the scheduler has selected it,
//! and `join` is a scheduler blocking point with a happens-before edge
//! from the joined thread's final operation.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use crate::ctx::{ctx, panic_message, set_ctx};
use crate::exec::Execution;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        handle: std::thread::JoinHandle<Option<T>>,
        exec: Arc<Execution>,
        tid: usize,
    },
}

pub struct JoinHandle<T>(Inner<T>);

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        Some((exec, me)) => {
            let tid = exec.register_thread(me);
            let texec = Arc::clone(&exec);
            let handle = std::thread::spawn(move || {
                set_ctx(Some((Arc::clone(&texec), tid)));
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    texec.enter_thread(tid);
                    f()
                }));
                let failure = match &result {
                    Ok(_) => None,
                    Err(p) if p.is::<crate::exec::AbortSignal>() => None,
                    Err(p) => Some(panic_message(p)),
                };
                texec.exit_thread(tid, failure);
                set_ctx(None);
                result.ok()
            });
            // Schedule point: DFS may run the child before the parent's
            // next operation.
            exec.op_yield(me);
            JoinHandle(Inner::Model { handle, exec, tid })
        }
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { handle, exec, tid } => {
                let (_, me) = ctx().expect("model thread joined from outside its execution");
                exec.op_join(me, tid);
                match handle.join() {
                    Ok(Some(v)) => Ok(v),
                    // The child unwound (abort or failure): this run is
                    // being torn down, so tear the joiner down too.
                    Ok(None) => panic::panic_any(crate::exec::AbortSignal),
                    Err(e) => Err(e),
                }
            }
        }
    }
}

pub fn yield_now() {
    match ctx() {
        None => std::thread::yield_now(),
        Some((exec, me)) => exec.op_yield(me),
    }
}
