//! The cooperative scheduler behind the shim primitives.
//!
//! One model thread runs at a time. Every shim operation enters
//! [`Execution::admission`], which decides — deterministically, from a
//! recorded decision vector — whether the calling thread keeps running
//! or hands off to another runnable thread. The explorer in `lib.rs`
//! drives depth-first search over those decision vectors, so every
//! branch point (scheduling choice, or which store a relaxed load may
//! observe) is enumerated rather than left to the OS.
//!
//! Threads are real OS threads parked on a condvar; "cooperative" means
//! only the thread whose tid equals `ExecState::current` makes
//! progress. A run aborts by setting the `aborted` flag and panicking
//! with [`AbortSignal`], which every parked thread notices, re-raises,
//! and catches at its own top level.

use std::collections::HashSet;
use std::panic;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear a run down without reporting a failure.
pub(crate) struct AbortSignal;

/// How many stores per atomic the memory model keeps visible to relaxed
/// loads. Older stores are coherence-forbidden for everyone anyway once
/// this many newer ones exist in a bounded program.
const HIST_MAX: usize = 6;

/// One recorded branch point: `alts` alternatives existed, `chosen` was
/// taken. Only points with `alts > 1` are recorded.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    pub alts: u32,
    pub chosen: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockOn {
    Lock(usize),
    Read(usize),
    Write(usize),
    Join(usize),
    /// For operations that never block (atomics, yield points).
    Never,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    Blocked(BlockOn),
    Finished,
}

struct ThreadInfo {
    status: Status,
    /// Vector clock; index = tid. May be shorter than the thread count —
    /// missing entries are zero.
    clock: Vec<u64>,
    /// Fold of everything this thread has observed. Two threads with the
    /// same code and the same `obs` are in the same local state, which is
    /// what makes the state fingerprint sound for prefix pruning.
    obs: u64,
    /// Local operation count (also the thread's lamport time).
    ops: u64,
}

pub(crate) struct StoreRec {
    val: u64,
    /// `usize::MAX` marks the initial value, which happens-before everyone.
    writer: usize,
    wtime: u64,
    /// Release clock, if the store (or the release-sequence head it
    /// continues) had release semantics.
    release: Option<Vec<u64>>,
}

pub(crate) enum Object {
    Mutex {
        owner: Option<usize>,
        clock: Vec<u64>,
        hist: u64,
    },
    RwLock {
        writer: Option<usize>,
        readers: Vec<usize>,
        wclock: Vec<u64>,
        rclock: Vec<u64>,
        hist: u64,
    },
    Atomic {
        /// Store history window; absolute index = `base` + position.
        stores: Vec<StoreRec>,
        base: usize,
        /// Per-tid absolute index of the newest store each thread has
        /// observed (coherence floor).
        seen: Vec<usize>,
        /// Absolute index of the newest SeqCst store.
        last_sc: usize,
        hist: u64,
    },
}

impl Object {
    pub(crate) fn new_mutex() -> Object {
        Object::Mutex {
            owner: None,
            clock: Vec::new(),
            hist: 0x6d75,
        }
    }
    pub(crate) fn new_rwlock() -> Object {
        Object::RwLock {
            writer: None,
            readers: Vec::new(),
            wclock: Vec::new(),
            rclock: Vec::new(),
            hist: 0x7277,
        }
    }
    pub(crate) fn new_atomic(init: u64) -> Object {
        Object::Atomic {
            stores: vec![StoreRec {
                val: init,
                writer: usize::MAX,
                wtime: 0,
                release: None,
            }],
            base: 0,
            seen: Vec::new(),
            last_sc: 0,
            hist: mix(0x6174, init),
        }
    }
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(23)
        .wrapping_mul(0x100_0000_01B3)
}

fn is_acquire(ord: StdOrdering) -> bool {
    matches!(
        ord,
        StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

fn is_release(ord: StdOrdering) -> bool {
    matches!(
        ord,
        StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

enum Admit {
    Yes,
    Block,
    Fail(String),
}

enum Decide {
    Chosen(usize),
    Diverged(String),
    Pruned,
}

pub(crate) struct RunOutcome {
    pub(crate) decisions: Vec<Decision>,
    pub(crate) failure: Option<String>,
    pub(crate) pruned: bool,
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    current: usize,
    objects: Vec<Object>,
    finished: usize,
    /// Replayed decision prefix; beyond it DFS takes alternative 0.
    prefix: Vec<u32>,
    cursor: usize,
    decisions: Vec<Decision>,
    steps: u64,
    max_steps: u64,
    preemptions_left: u32,
    failure: Option<String>,
    pruned: bool,
    /// Shared across runs of one `explore`: fingerprints of
    /// (state, chosen alternative) pairs already fully explored.
    seen: Option<Arc<Mutex<HashSet<u64>>>>,
}

impl ExecState {
    fn ready_others(&self, me: usize) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|&(t, i)| t != me && i.status == Status::Ready)
            .map(|(t, _)| t)
            .collect()
    }

    fn tick(&mut self, me: usize) {
        let n = self.threads.len();
        let t = &mut self.threads[me];
        if t.clock.len() < n {
            t.clock.resize(n, 0);
        }
        t.clock[me] += 1;
        t.ops += 1;
    }

    fn join_clock(&mut self, me: usize, other: &[u64]) {
        let t = &mut self.threads[me];
        if t.clock.len() < other.len() {
            t.clock.resize(other.len(), 0);
        }
        let mut acc = t.obs;
        for (i, &v) in other.iter().enumerate() {
            if v > t.clock[i] {
                t.clock[i] = v;
            }
            acc = mix(acc, v);
        }
        t.obs = acc;
    }

    fn observe(&mut self, me: usize, tag: u64, a: u64, b: u64) {
        let t = &mut self.threads[me];
        t.obs = mix(mix(mix(t.obs, tag), a), b);
    }

    fn wake(&mut self, pred: impl Fn(BlockOn) -> bool) {
        for t in &mut self.threads {
            if let Status::Blocked(b) = t.status {
                if pred(b) {
                    t.status = Status::Ready;
                }
            }
        }
    }

    /// Record a branch point, consulting the replay prefix and (beyond
    /// the replayed region) the cross-run prune set.
    fn decide_core(&mut self, alts: usize) -> Decide {
        if alts <= 1 {
            return Decide::Chosen(0);
        }
        let pos = self.cursor;
        self.cursor += 1;
        let chosen = if pos < self.prefix.len() {
            let c = self.prefix[pos] as usize;
            if c >= alts {
                return Decide::Diverged(format!(
                    "replay divergence at decision {pos}: seed chose {c} of {alts} \
                     alternatives — the model program is not deterministic"
                ));
            }
            c
        } else {
            0
        };
        // `pos + 1 >= prefix.len()` marks genuinely new exploration: every
        // earlier position is a re-walk of a prefix whose (state, choice)
        // pair was inserted when it was itself new.
        if pos + 1 >= self.prefix.len() {
            if let Some(seen) = self.seen.clone() {
                let key = mix(self.fingerprint(), chosen as u64 + 1);
                let mut set = seen.lock().unwrap_or_else(|e| e.into_inner());
                if !set.insert(key) {
                    self.decisions.push(Decision {
                        alts: alts as u32,
                        chosen: chosen as u32,
                    });
                    return Decide::Pruned;
                }
            }
        }
        self.decisions.push(Decision {
            alts: alts as u32,
            chosen: chosen as u32,
        });
        Decide::Chosen(chosen)
    }

    /// Hash of the full execution state. Thread-local state is captured
    /// by `obs`/`ops` (a deterministic program's local state is a
    /// function of what it has observed); shared state is hashed
    /// directly. Includes the remaining preemption budget because it
    /// constrains which continuations are explorable.
    fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = mix(h, self.current as u64);
        h = mix(h, self.preemptions_left as u64);
        for t in &self.threads {
            let s = match t.status {
                Status::Ready => 1,
                Status::Finished => 2,
                Status::Blocked(b) => {
                    3 + match b {
                        BlockOn::Lock(o) => o as u64 * 8,
                        BlockOn::Read(o) => 1 + o as u64 * 8,
                        BlockOn::Write(o) => 2 + o as u64 * 8,
                        BlockOn::Join(t) => 3 + t as u64 * 8,
                        BlockOn::Never => 4,
                    }
                }
            };
            h = mix(mix(mix(h, s), t.obs), t.ops);
        }
        for o in &self.objects {
            match o {
                Object::Mutex { owner, hist, .. } => {
                    h = mix(mix(h, owner.map_or(0, |t| t as u64 + 1)), *hist);
                }
                Object::RwLock {
                    writer,
                    readers,
                    hist,
                    ..
                } => {
                    h = mix(mix(h, writer.map_or(0, |t| t as u64 + 1)), *hist);
                    for &r in readers {
                        h = mix(h, r as u64 + 1);
                    }
                }
                Object::Atomic {
                    stores,
                    base,
                    seen,
                    last_sc,
                    hist,
                } => {
                    h = mix(mix(mix(h, *base as u64), *last_sc as u64), *hist);
                    for s in stores {
                        h = mix(mix(h, s.val), s.wtime.wrapping_add(s.writer as u64));
                    }
                    for &s in seen {
                        h = mix(h, s as u64);
                    }
                }
            }
        }
        h
    }
}

pub(crate) struct Execution {
    /// Run generation; object cells tag themselves with it so stale
    /// registrations from earlier runs are ignored.
    pub(crate) gen: u64,
    state: Mutex<ExecState>,
    cv: Condvar,
    aborted: AtomicBool,
}

impl Execution {
    pub(crate) fn new(
        gen: u64,
        preemption_bound: u32,
        max_steps: u64,
        prefix: Vec<u32>,
        seen: Option<Arc<Mutex<HashSet<u64>>>>,
    ) -> Execution {
        Execution {
            gen,
            state: Mutex::new(ExecState {
                threads: vec![ThreadInfo {
                    status: Status::Ready,
                    clock: vec![1],
                    obs: 0,
                    ops: 0,
                }],
                current: 0,
                objects: Vec::new(),
                finished: 0,
                prefix,
                cursor: 0,
                decisions: Vec::new(),
                steps: 0,
                max_steps,
                preemptions_left: preemption_bound,
                failure: None,
                pruned: false,
                seen,
            }),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(StdOrdering::SeqCst)
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort_now(&self, st: MutexGuard<'_, ExecState>) -> ! {
        drop(st);
        panic::panic_any(AbortSignal);
    }

    fn fail(&self, mut st: MutexGuard<'_, ExecState>, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.aborted.store(true, StdOrdering::SeqCst);
        self.cv.notify_all();
        self.abort_now(st)
    }

    fn prune_abort(&self, mut st: MutexGuard<'_, ExecState>) -> ! {
        st.pruned = true;
        self.aborted.store(true, StdOrdering::SeqCst);
        self.cv.notify_all();
        self.abort_now(st)
    }

    fn decide<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        alts: usize,
    ) -> (MutexGuard<'a, ExecState>, usize) {
        match st.decide_core(alts) {
            Decide::Chosen(c) => (st, c),
            Decide::Diverged(m) => self.fail(st, m),
            Decide::Pruned => self.prune_abort(st),
        }
    }

    fn wait_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if self.is_aborted() {
                self.abort_now(st);
            }
            if st.current == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The single scheduling gate. Returns with the state lock held,
    /// `me` current, and the operation admissible; the caller then
    /// applies its effects under the same lock hold.
    fn admission(
        &self,
        me: usize,
        block: BlockOn,
        can: impl Fn(&ExecState) -> Admit,
    ) -> MutexGuard<'_, ExecState> {
        let mut st = self.lock_state();
        loop {
            if self.is_aborted() {
                self.abort_now(st);
            }
            st.steps += 1;
            if st.steps > st.max_steps {
                let cap = st.max_steps;
                self.fail(
                    st,
                    format!("step cap ({cap}) exceeded — possible livelock in the model program"),
                );
            }
            match can(&st) {
                Admit::Fail(msg) => self.fail(st, msg),
                Admit::Yes => {
                    let others = st.ready_others(me);
                    let alts = if st.preemptions_left > 0 {
                        1 + others.len()
                    } else {
                        1
                    };
                    let (mut st2, choice) = self.decide(st, alts);
                    if choice == 0 {
                        return st2;
                    }
                    st2.preemptions_left -= 1;
                    st2.current = others[choice - 1];
                    self.cv.notify_all();
                    st = self.wait_turn(st2, me);
                }
                Admit::Block => {
                    st.threads[me].status = Status::Blocked(block);
                    let ready = st.ready_others(me);
                    if ready.is_empty() {
                        self.fail(
                            st,
                            format!(
                                "deadlock: thread {me} blocked on {block:?} with no runnable thread"
                            ),
                        );
                    }
                    let (mut st2, choice) = self.decide(st, ready.len());
                    st2.current = ready[choice];
                    self.cv.notify_all();
                    st = self.wait_turn(st2, me);
                }
            }
        }
    }

    // ---- object registry -------------------------------------------------

    /// Resolve the object id a shim cell refers to in this run,
    /// registering it on first touch. The cell packs (gen << 24 | id+1).
    pub(crate) fn ensure_object(&self, cell: &AtomicU64, make: impl FnOnce() -> Object) -> usize {
        let tag = cell.load(StdOrdering::SeqCst);
        if tag >> 24 == self.gen && tag & 0xFF_FFFF != 0 {
            return (tag & 0xFF_FFFF) as usize - 1;
        }
        let mut st = self.lock_state();
        let tag = cell.load(StdOrdering::SeqCst);
        if tag >> 24 == self.gen && tag & 0xFF_FFFF != 0 {
            return (tag & 0xFF_FFFF) as usize - 1;
        }
        let id = st.objects.len();
        st.objects.push(make());
        cell.store((self.gen << 24) | (id as u64 + 1), StdOrdering::SeqCst);
        id
    }

    // ---- mutex -----------------------------------------------------------

    pub(crate) fn op_mutex_lock(&self, me: usize, obj: usize) {
        let mut st = self.admission(me, BlockOn::Lock(obj), |st| match &st.objects[obj] {
            Object::Mutex { owner, .. } => match owner {
                Some(o) if *o == me => {
                    Admit::Fail(format!("thread {me} re-locked a mutex it already holds"))
                }
                Some(_) => Admit::Block,
                None => Admit::Yes,
            },
            _ => Admit::Fail("object kind confusion: expected mutex".into()),
        });
        st.tick(me);
        let (mclock, mhist) = match &mut st.objects[obj] {
            Object::Mutex { owner, clock, hist } => {
                *owner = Some(me);
                *hist = mix(mix(*hist, me as u64 + 1), 0x11);
                (clock.clone(), *hist)
            }
            _ => unreachable!(),
        };
        st.join_clock(me, &mclock);
        st.observe(me, 0x11, obj as u64, mhist);
    }

    pub(crate) fn op_mutex_unlock(&self, me: usize, obj: usize) {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
        let myclock = st.threads[me].clock.clone();
        if let Object::Mutex { owner, clock, hist } = &mut st.objects[obj] {
            *owner = None;
            *clock = myclock;
            *hist = mix(mix(*hist, me as u64 + 1), 0x12);
        }
        st.observe(me, 0x12, obj as u64, 0);
        st.wake(|b| b == BlockOn::Lock(obj));
        self.cv.notify_all();
    }

    /// Release during unwinding or after an abort: fix the scheduler
    /// state so other threads are not wedged, but never panic and never
    /// branch — this path must be safe inside `Drop`.
    pub(crate) fn quiet_release_mutex(&self, me: usize, obj: usize) {
        let mut st = self.lock_state();
        let myclock = st.threads[me].clock.clone();
        if let Some(Object::Mutex { owner, clock, .. }) = st.objects.get_mut(obj) {
            *owner = None;
            *clock = myclock;
        }
        st.wake(|b| b == BlockOn::Lock(obj));
        self.cv.notify_all();
    }

    // ---- rwlock ----------------------------------------------------------

    pub(crate) fn op_rw_read(&self, me: usize, obj: usize) {
        let mut st = self.admission(me, BlockOn::Read(obj), |st| match &st.objects[obj] {
            Object::RwLock {
                writer, readers, ..
            } => {
                if *writer == Some(me) || readers.contains(&me) {
                    Admit::Fail(format!("thread {me} re-entered an rwlock it already holds"))
                } else if writer.is_some() {
                    Admit::Block
                } else {
                    Admit::Yes
                }
            }
            _ => Admit::Fail("object kind confusion: expected rwlock".into()),
        });
        st.tick(me);
        let (wclock, h) = match &mut st.objects[obj] {
            Object::RwLock {
                readers,
                wclock,
                hist,
                ..
            } => {
                readers.push(me);
                *hist = mix(mix(*hist, me as u64 + 1), 0x21);
                (wclock.clone(), *hist)
            }
            _ => unreachable!(),
        };
        st.join_clock(me, &wclock);
        st.observe(me, 0x21, obj as u64, h);
    }

    pub(crate) fn op_rw_read_unlock(&self, me: usize, obj: usize) {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
        let myclock = st.threads[me].clock.clone();
        if let Object::RwLock {
            readers,
            rclock,
            hist,
            ..
        } = &mut st.objects[obj]
        {
            readers.retain(|&r| r != me);
            if rclock.len() < myclock.len() {
                rclock.resize(myclock.len(), 0);
            }
            for (i, &v) in myclock.iter().enumerate() {
                if v > rclock[i] {
                    rclock[i] = v;
                }
            }
            *hist = mix(mix(*hist, me as u64 + 1), 0x22);
        }
        st.observe(me, 0x22, obj as u64, 0);
        st.wake(|b| b == BlockOn::Write(obj));
        self.cv.notify_all();
    }

    pub(crate) fn op_rw_write(&self, me: usize, obj: usize) {
        let mut st = self.admission(me, BlockOn::Write(obj), |st| match &st.objects[obj] {
            Object::RwLock {
                writer, readers, ..
            } => {
                if *writer == Some(me) || readers.contains(&me) {
                    Admit::Fail(format!("thread {me} re-entered an rwlock it already holds"))
                } else if writer.is_some() || !readers.is_empty() {
                    Admit::Block
                } else {
                    Admit::Yes
                }
            }
            _ => Admit::Fail("object kind confusion: expected rwlock".into()),
        });
        st.tick(me);
        let (wclock, rclock, h) = match &mut st.objects[obj] {
            Object::RwLock {
                writer,
                wclock,
                rclock,
                hist,
                ..
            } => {
                *writer = Some(me);
                *hist = mix(mix(*hist, me as u64 + 1), 0x23);
                (wclock.clone(), rclock.clone(), *hist)
            }
            _ => unreachable!(),
        };
        st.join_clock(me, &wclock);
        st.join_clock(me, &rclock);
        st.observe(me, 0x23, obj as u64, h);
    }

    pub(crate) fn op_rw_write_unlock(&self, me: usize, obj: usize) {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
        let myclock = st.threads[me].clock.clone();
        if let Object::RwLock {
            writer,
            wclock,
            hist,
            ..
        } = &mut st.objects[obj]
        {
            *writer = None;
            *wclock = myclock;
            *hist = mix(mix(*hist, me as u64 + 1), 0x24);
        }
        st.observe(me, 0x24, obj as u64, 0);
        st.wake(|b| b == BlockOn::Read(obj) || b == BlockOn::Write(obj));
        self.cv.notify_all();
    }

    pub(crate) fn quiet_release_rw(&self, me: usize, obj: usize, write: bool) {
        let mut st = self.lock_state();
        let myclock = st.threads[me].clock.clone();
        if let Some(Object::RwLock {
            writer,
            readers,
            wclock,
            ..
        }) = st.objects.get_mut(obj)
        {
            if write {
                *writer = None;
                *wclock = myclock;
            } else {
                readers.retain(|&r| r != me);
            }
        }
        st.wake(|b| b == BlockOn::Read(obj) || b == BlockOn::Write(obj));
        self.cv.notify_all();
    }

    // ---- atomics ---------------------------------------------------------

    /// A load observes one of the coherence-admissible stores; when more
    /// than one is admissible (a genuinely racy read) the choice is a DFS
    /// branch point. Alternative 0 reads the newest store, so the first
    /// explored schedule behaves sequentially consistently.
    pub(crate) fn op_atomic_load(&self, me: usize, obj: usize, ord: StdOrdering) -> u64 {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
        let (lo, hi) = {
            let clock = st.threads[me].clock.clone();
            match &mut st.objects[obj] {
                Object::Atomic {
                    stores,
                    base,
                    seen,
                    last_sc,
                    ..
                } => {
                    if seen.len() <= me {
                        seen.resize(me + 1, *base);
                    }
                    let mut lo = seen[me].max(*base);
                    if ord == StdOrdering::SeqCst {
                        lo = lo.max(*last_sc);
                    }
                    for (pos, s) in stores.iter().enumerate() {
                        let hb = s.writer == usize::MAX
                            || clock.get(s.writer).copied().unwrap_or(0) >= s.wtime;
                        if hb {
                            lo = lo.max(*base + pos);
                        }
                    }
                    (lo, *base + stores.len() - 1)
                }
                _ => panic!("object kind confusion: expected atomic"),
            }
        };
        let alts = hi - lo + 1;
        let (mut st, choice) = self.decide(st, alts);
        let idx = hi - choice;
        let (val, release) = match &mut st.objects[obj] {
            Object::Atomic {
                stores, base, seen, ..
            } => {
                seen[me] = idx;
                let s = &stores[idx - *base];
                (s.val, s.release.clone())
            }
            _ => unreachable!(),
        };
        if is_acquire(ord) {
            if let Some(rel) = release {
                st.join_clock(me, &rel);
            }
        }
        st.observe(me, 0x31, obj as u64, mix(idx as u64, val));
        val
    }

    pub(crate) fn op_atomic_store(
        &self,
        me: usize,
        obj: usize,
        val: u64,
        ord: StdOrdering,
        sync_back: impl FnOnce(u64),
    ) {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
        let clock = st.threads[me].clock.clone();
        let wtime = clock[me];
        if let Object::Atomic {
            stores,
            base,
            seen,
            last_sc,
            hist,
        } = &mut st.objects[obj]
        {
            stores.push(StoreRec {
                val,
                writer: me,
                wtime,
                release: is_release(ord).then(|| clock.clone()),
            });
            let idx = *base + stores.len() - 1;
            if seen.len() <= me {
                seen.resize(me + 1, *base);
            }
            seen[me] = idx;
            if ord == StdOrdering::SeqCst {
                *last_sc = idx;
            }
            *hist = mix(mix(*hist, val), me as u64 + 1);
            while stores.len() > HIST_MAX {
                stores.remove(0);
                *base += 1;
            }
            let b = *base;
            for s in seen.iter_mut() {
                *s = (*s).max(b);
            }
        }
        st.observe(me, 0x32, obj as u64, val);
        // Push the value into the std backing while the state lock is
        // held, so the backing's modification order matches the model's.
        sync_back(val);
    }

    /// RMWs always read the newest store (atomicity), continue release
    /// sequences, and never branch.
    pub(crate) fn op_atomic_rmw(
        &self,
        me: usize,
        obj: usize,
        ord: StdOrdering,
        f: impl FnOnce(u64) -> u64,
        sync_back: impl FnOnce(u64),
    ) -> u64 {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
        let clock = st.threads[me].clock.clone();
        let wtime = clock[me];
        let (old, acquired) = match &mut st.objects[obj] {
            Object::Atomic { stores, .. } => {
                let s = stores.last().expect("atomic history never empty");
                (s.val, s.release.clone())
            }
            _ => panic!("object kind confusion: expected atomic"),
        };
        if is_acquire(ord) {
            if let Some(rel) = acquired {
                st.join_clock(me, &rel);
            }
        }
        let new = f(old);
        let clock = st.threads[me].clock.clone();
        if let Object::Atomic {
            stores,
            base,
            seen,
            last_sc,
            hist,
        } = &mut st.objects[obj]
        {
            let prev_release = stores.last().and_then(|s| s.release.clone());
            stores.push(StoreRec {
                val: new,
                writer: me,
                wtime,
                release: if is_release(ord) {
                    Some(clock)
                } else {
                    // A relaxed RMW continues the release sequence headed
                    // by the store it read from.
                    prev_release
                },
            });
            let idx = *base + stores.len() - 1;
            if seen.len() <= me {
                seen.resize(me + 1, *base);
            }
            seen[me] = idx;
            if ord == StdOrdering::SeqCst {
                *last_sc = idx;
            }
            *hist = mix(mix(*hist, new), me as u64 + 1);
            while stores.len() > HIST_MAX {
                stores.remove(0);
                *base += 1;
            }
            let b = *base;
            for s in seen.iter_mut() {
                *s = (*s).max(b);
            }
        }
        st.observe(me, 0x33, obj as u64, mix(old, new));
        sync_back(new);
        old
    }

    // ---- threads ---------------------------------------------------------

    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        clock.resize(tid + 1, 0);
        st.threads.push(ThreadInfo {
            status: Status::Ready,
            clock,
            obs: mix(0x7464, tid as u64),
            ops: 0,
        });
        tid
    }

    /// A plain schedule point (spawn sites, `yield_now`).
    pub(crate) fn op_yield(&self, me: usize) {
        let mut st = self.admission(me, BlockOn::Never, |_| Admit::Yes);
        st.tick(me);
    }

    /// First thing a spawned thread does: park until scheduled.
    pub(crate) fn enter_thread(&self, me: usize) {
        let st = self.lock_state();
        let mut st = self.wait_turn(st, me);
        st.tick(me);
    }

    pub(crate) fn op_join(&self, me: usize, target: usize) {
        let mut st = self.admission(me, BlockOn::Join(target), |st| {
            if st.threads[target].status == Status::Finished {
                Admit::Yes
            } else {
                Admit::Block
            }
        });
        st.tick(me);
        let tclock = st.threads[target].clock.clone();
        st.join_clock(me, &tclock);
        st.observe(me, 0x41, target as u64, 0);
    }

    /// Thread teardown. Must not panic: it runs outside the thread's
    /// `catch_unwind` region.
    pub(crate) fn exit_thread(&self, me: usize, real_panic: Option<String>) {
        let mut st = self.lock_state();
        if let Some(msg) = real_panic {
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            self.aborted.store(true, StdOrdering::SeqCst);
        }
        st.threads[me].status = Status::Finished;
        st.finished += 1;
        st.wake(|b| b == BlockOn::Join(me));
        if !self.is_aborted() {
            let ready = st.ready_others(me);
            if !ready.is_empty() {
                let choice = match st.decide_core(ready.len()) {
                    Decide::Chosen(c) => c,
                    Decide::Diverged(m) => {
                        if st.failure.is_none() {
                            st.failure = Some(m);
                        }
                        self.aborted.store(true, StdOrdering::SeqCst);
                        0
                    }
                    Decide::Pruned => {
                        st.pruned = true;
                        self.aborted.store(true, StdOrdering::SeqCst);
                        0
                    }
                };
                st.current = ready[choice];
            } else if st.finished < st.threads.len() {
                if st.failure.is_none() {
                    st.failure = Some(format!(
                        "deadlock: thread {me} finished but every remaining thread is blocked"
                    ));
                }
                self.aborted.store(true, StdOrdering::SeqCst);
            }
        }
        self.cv.notify_all();
    }

    /// Called on the exploring thread after the program closure returns
    /// (or unwinds): finish tid 0, hand off to any still-live threads,
    /// and wait for every spawned thread to reach `Finished`.
    pub(crate) fn main_finish(&self, real_panic: Option<String>) {
        self.exit_thread(0, real_panic);
        let mut st = self.lock_state();
        while st.finished < st.threads.len() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn collect(&self) -> RunOutcome {
        let st = self.lock_state();
        RunOutcome {
            decisions: st.decisions.clone(),
            failure: st.failure.clone(),
            pruned: st.pruned,
        }
    }
}
