//! `Mutex`/`RwLock` shims. API-compatible with the std types for the
//! operations the engine uses (`new`, `lock`, `read`, `write`), but with
//! acquisition admitted by the model scheduler when a model execution is
//! active on the current thread.
//!
//! The std primitive underneath still stores the data and is acquired
//! *after* scheduler admission, so it never actually contends: the
//! scheduler guarantees exclusivity before the std lock is touched.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64 as Cell;
use std::sync::{LockResult, PoisonError};

pub use std::sync::Arc;

use crate::ctx::ctx;
use crate::exec::{Execution, Object};

// ---- Mutex ----------------------------------------------------------------

pub struct Mutex<T> {
    cell: Cell,
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    sched: Option<(Arc<Execution>, usize, usize)>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            cell: Cell::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match ctx() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    sched: None,
                    inner: Some(g),
                }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    sched: None,
                    inner: Some(e.into_inner()),
                })),
            },
            Some((exec, me)) => {
                let obj = exec.ensure_object(&self.cell, Object::new_mutex);
                exec.op_mutex_lock(me, obj);
                let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    sched: Some((exec, me, obj)),
                    inner: Some(g),
                })
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("mutex guard used after drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("mutex guard used after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, obj)) = self.sched.take() {
            if std::thread::panicking() || exec.is_aborted() {
                exec.quiet_release_mutex(me, obj);
            } else {
                exec.op_mutex_unlock(me, obj);
            }
        }
    }
}

// ---- RwLock ---------------------------------------------------------------

pub struct RwLock<T> {
    cell: Cell,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T> {
    sched: Option<(Arc<Execution>, usize, usize)>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

pub struct RwLockWriteGuard<'a, T> {
    sched: Option<(Arc<Execution>, usize, usize)>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            cell: Cell::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match ctx() {
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    sched: None,
                    inner: Some(g),
                }),
                Err(e) => Err(PoisonError::new(RwLockReadGuard {
                    sched: None,
                    inner: Some(e.into_inner()),
                })),
            },
            Some((exec, me)) => {
                let obj = exec.ensure_object(&self.cell, Object::new_rwlock);
                exec.op_rw_read(me, obj);
                let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
                Ok(RwLockReadGuard {
                    sched: Some((exec, me, obj)),
                    inner: Some(g),
                })
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match ctx() {
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    sched: None,
                    inner: Some(g),
                }),
                Err(e) => Err(PoisonError::new(RwLockWriteGuard {
                    sched: None,
                    inner: Some(e.into_inner()),
                })),
            },
            Some((exec, me)) => {
                let obj = exec.ensure_object(&self.cell, Object::new_rwlock);
                exec.op_rw_write(me, obj);
                let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
                Ok(RwLockWriteGuard {
                    sched: Some((exec, me, obj)),
                    inner: Some(g),
                })
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("rwlock guard used after drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, obj)) = self.sched.take() {
            if std::thread::panicking() || exec.is_aborted() {
                exec.quiet_release_rw(me, obj, false);
            } else {
                exec.op_rw_read_unlock(me, obj);
            }
        }
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("rwlock guard used after drop")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("rwlock guard used after drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, obj)) = self.sched.take() {
            if std::thread::panicking() || exec.is_aborted() {
                exec.quiet_release_rw(me, obj, true);
            } else {
                exec.op_rw_write_unlock(me, obj);
            }
        }
    }
}
