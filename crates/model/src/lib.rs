//! # mv-model — deterministic schedule exploration for the catalog
//!
//! A vendored, registry-free model checker in the spirit of `loom`,
//! sized to what the matview engine's concurrency layer needs. Code
//! under test swaps its sync primitives for this crate's shims (via the
//! `mv_parallel::sync` facade under `--cfg mv_model`); [`explore`] then
//! reruns a closed program over every schedule a bounded-exhaustive DFS
//! can reach:
//!
//! * every shim operation is a scheduling point; switching away from a
//!   runnable thread consumes one unit of the preemption budget
//!   (forced switches at blocking points are free),
//! * relaxed/acquire loads branch over every coherence-admissible store
//!   under a vector-clock release/acquire memory model, so stale reads
//!   that a real weakly-ordered machine could produce are explored
//!   deterministically,
//! * equivalent prefixes are pruned by hashing execution state, and
//! * a failing run prints a dot-joined decision seed that [`replay`]
//!   re-executes exactly.
//!
//! Outside an [`explore`] call the shims behave as plain std types, so
//! reference results can be computed in the same binary.

mod ctx;
mod exec;

pub mod atomic;
pub mod sync;
pub mod thread;

pub use atomic::{AtomicU64, AtomicUsize, Ordering};
pub use sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Mutex as StdMutex;

use ctx::{panic_message, set_ctx};
use exec::{AbortSignal, Decision, Execution, RunOutcome};

/// Exploration limits. The defaults suit programs with a handful of
/// threads and a few hundred shim operations.
#[derive(Clone, Debug)]
pub struct Config {
    /// How many times the DFS may switch away from a runnable thread.
    /// Forced switches (blocking, thread exit) are free. Empirically,
    /// almost all concurrency bugs need very few preemptions (2 is the
    /// classic CHESS bound).
    pub preemption_bound: u32,
    /// Per-run cap on shim operations; exceeding it fails the run
    /// (livelock guard).
    pub max_steps: u64,
    /// Total run budget (explored + pruned). Exploration that exhausts
    /// the budget reports `budget_exhausted: true` instead of failing.
    pub max_schedules: u64,
    /// Prune continuations whose (state fingerprint, next choice) pair
    /// has already been fully explored from an earlier prefix.
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_steps: 20_000,
            max_schedules: 100_000,
            prune: true,
        }
    }
}

/// A schedule that violated an invariant: the panic message plus the
/// decision seed that reproduces it under [`replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    pub seed: String,
    pub message: String,
}

/// Outcome of an [`explore`] call.
#[derive(Clone, Debug)]
pub struct Report {
    /// Completed (non-pruned) schedules.
    pub schedules: u64,
    /// Runs cut short because their continuation was already explored.
    pub pruned: u64,
    /// Deepest decision vector seen.
    pub max_depth: usize,
    /// True if `max_schedules` stopped exploration before the DFS
    /// frontier was fully explored.
    pub budget_exhausted: bool,
    pub failure: Option<Failure>,
}

impl Report {
    /// Assert the program passed, with a diagnostic that includes the
    /// failing seed if it did not.
    pub fn assert_pass(&self, what: &str) {
        if let Some(f) = &self.failure {
            panic!(
                "model program '{what}' failed after {} schedules ({} pruned)\n  seed: {}\n  {}",
                self.schedules, self.pruned, f.seed, f.message
            );
        }
    }

    /// Assert the program failed, returning the failure. Prints the
    /// replayable seed so a human can pin the schedule down.
    pub fn assert_fail(&self, what: &str) -> &Failure {
        match &self.failure {
            Some(f) => {
                println!(
                    "model program '{what}' pinned to a failing schedule \
                     after {} schedules ({} pruned)\n  replay seed: {}\n  {}",
                    self.schedules, self.pruned, f.seed, f.message
                );
                f
            }
            None => panic!(
                "model program '{what}' unexpectedly passed \
                 ({} schedules, {} pruned, budget exhausted: {})",
                self.schedules, self.pruned, self.budget_exhausted
            ),
        }
    }
}

static GEN: StdAtomicU64 = StdAtomicU64::new(1);

fn run_once<F: Fn()>(
    cfg: &Config,
    prefix: Vec<u32>,
    seen: Option<std::sync::Arc<StdMutex<HashSet<u64>>>>,
    f: &F,
) -> RunOutcome {
    let gen = GEN.fetch_add(1, StdOrdering::SeqCst);
    let exec = std::sync::Arc::new(Execution::new(
        gen,
        cfg.preemption_bound,
        cfg.max_steps,
        prefix,
        seen,
    ));
    set_ctx(Some((std::sync::Arc::clone(&exec), 0)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    set_ctx(None);
    let failure = match &result {
        Ok(_) => None,
        Err(p) if p.is::<AbortSignal>() => None,
        Err(p) => Some(panic_message(p)),
    };
    exec.main_finish(failure);
    exec.collect()
}

fn encode_seed(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn decode_seed(seed: &str) -> Vec<u32> {
    if seed.is_empty() {
        return Vec::new();
    }
    seed.split('.')
        .map(|s| s.parse::<u32>().expect("malformed replay seed"))
        .collect()
}

/// Run `f` under every schedule reachable within `cfg`'s bounds. `f` is
/// invoked once per schedule and must be deterministic apart from the
/// scheduling and memory-model choices the shims inject: build all
/// state inside the closure.
pub fn explore<F: Fn()>(cfg: &Config, f: F) -> Report {
    let seen = cfg
        .prune
        .then(|| std::sync::Arc::new(StdMutex::new(HashSet::new())));
    let mut prefix: Vec<u32> = Vec::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    let mut max_depth = 0usize;
    loop {
        let out = run_once(cfg, prefix.clone(), seen.clone(), &f);
        max_depth = max_depth.max(out.decisions.len());
        if out.pruned {
            pruned += 1;
        } else {
            schedules += 1;
        }
        if let Some(message) = out.failure {
            return Report {
                schedules,
                pruned,
                max_depth,
                budget_exhausted: false,
                failure: Some(Failure {
                    seed: encode_seed(&out.decisions),
                    message,
                }),
            };
        }
        if schedules + pruned >= cfg.max_schedules {
            return Report {
                schedules,
                pruned,
                max_depth,
                budget_exhausted: true,
                failure: None,
            };
        }
        // Backtrack: flip the deepest decision with an untried sibling.
        let mut d = out.decisions;
        loop {
            match d.last().copied() {
                None => {
                    return Report {
                        schedules,
                        pruned,
                        max_depth,
                        budget_exhausted: false,
                        failure: None,
                    }
                }
                Some(last) if last.chosen + 1 < last.alts => {
                    d.pop();
                    prefix = d.iter().map(|x| x.chosen).collect();
                    prefix.push(last.chosen + 1);
                    break;
                }
                Some(_) => {
                    d.pop();
                }
            }
        }
    }
}

/// Re-run exactly one schedule from a seed printed by a failing
/// [`explore`], returning the failure message it reproduces (if any).
pub fn replay<F: Fn()>(cfg: &Config, seed: &str, f: F) -> Option<String> {
    let out = run_once(cfg, decode_seed(seed), None, &f);
    out.failure
}
