//! Self-tests for the schedule explorer: known-racy programs must be
//! pinned to failing schedules with replayable seeds, and correctly
//! synchronized programs must pass over the full bounded-exhaustive
//! space. These run in every build — the shims are exercised directly,
//! no `--cfg mv_model` required.

use std::sync::Arc as StdArc;

use mv_model::{explore, replay, AtomicU64, Config, Mutex, Ordering, RwLock};

fn cfg() -> Config {
    Config::default()
}

/// Two threads increment a shared counter with a load/store pair (not an
/// RMW). Some schedule must lose an update.
#[test]
fn unsynchronized_counter_loses_updates() {
    let report = explore(&cfg(), || {
        let counter = StdArc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = StdArc::clone(&counter);
                mv_model::thread::spawn(move || {
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2, "lost update");
    });
    let failure = report.assert_fail("unsynchronized counter");
    // The seed must replay to the same failure.
    let msg = replay(&cfg(), &failure.seed, || {
        let counter = StdArc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = StdArc::clone(&counter);
                mv_model::thread::spawn(move || {
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2, "lost update");
    });
    assert!(
        msg.is_some_and(|m| m.contains("lost update")),
        "replay must reproduce the failure"
    );
}

/// The same program with fetch_add is correct under every schedule.
#[test]
fn rmw_counter_is_sound() {
    let report = explore(&cfg(), || {
        let counter = StdArc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = StdArc::clone(&counter);
                mv_model::thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
    report.assert_pass("fetch_add counter");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

/// Mutex-protected read-modify-write is correct under every schedule,
/// including three-thread interleavings.
#[test]
fn mutex_counter_is_sound() {
    let report = explore(&cfg(), || {
        let counter = StdArc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let counter = StdArc::clone(&counter);
                mv_model::thread::spawn(move || {
                    let mut g = counter.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 3);
    });
    report.assert_pass("mutex counter");
}

/// Classic release/acquire message passing: the data write must be
/// visible once the flag is observed set.
#[test]
fn release_acquire_publication_is_sound() {
    let report = explore(&cfg(), || {
        let data = StdArc::new(AtomicU64::new(0));
        let flag = StdArc::new(AtomicU64::new(0));
        let (d2, f2) = (StdArc::clone(&data), StdArc::clone(&flag));
        let producer = mv_model::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read after acquire");
        }
        producer.join().unwrap();
    });
    report.assert_pass("release/acquire publication");
}

/// Concurrency mutation: weaken the publication protocol's orderings to
/// Relaxed and the consumer can observe the flag without the data — the
/// memory model must expose the stale read some schedule.
#[test]
fn relaxed_publication_is_pinned_to_a_failing_schedule() {
    let program = || {
        let data = StdArc::new(AtomicU64::new(0));
        let flag = StdArc::new(AtomicU64::new(0));
        let (d2, f2) = (StdArc::clone(&data), StdArc::clone(&flag));
        let producer = mv_model::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
        }
        producer.join().unwrap();
    };
    let report = explore(&cfg(), program);
    let failure = report.assert_fail("relaxed publication");
    let msg = replay(&cfg(), &failure.seed, program);
    assert!(msg.is_some_and(|m| m.contains("stale read")));
}

/// AB-BA lock ordering must be reported as a deadlock, not hang.
#[test]
fn lock_order_inversion_deadlocks() {
    let report = explore(&cfg(), || {
        let a = StdArc::new(Mutex::new(()));
        let b = StdArc::new(Mutex::new(()));
        let (a2, b2) = (StdArc::clone(&a), StdArc::clone(&b));
        let t = mv_model::thread::spawn(move || {
            let _g1 = b2.lock().unwrap();
            let _g2 = a2.lock().unwrap();
        });
        let _g1 = a.lock().unwrap();
        let _g2 = b.lock().unwrap();
        drop(_g2);
        drop(_g1);
        t.join().unwrap();
    });
    let failure = report.assert_fail("AB-BA deadlock");
    assert!(failure.message.contains("deadlock"));
}

/// RwLock: writer exclusivity holds; a reader pinned before a write sees
/// the old value, a reader after sees the new one, never anything else.
#[test]
fn rwlock_writer_exclusivity() {
    let report = explore(&cfg(), || {
        let shared = StdArc::new(RwLock::new(0u64));
        let s2 = StdArc::clone(&shared);
        let writer = mv_model::thread::spawn(move || {
            *s2.write().unwrap() = 7;
        });
        let seen = *shared.read().unwrap();
        assert!(seen == 0 || seen == 7, "torn rwlock read: {seen}");
        writer.join().unwrap();
    });
    report.assert_pass("rwlock exclusivity");
}

/// Pruning must not change the verdict, only the work done.
#[test]
fn pruning_preserves_verdicts() {
    let racy = || {
        let c = StdArc::new(AtomicU64::new(0));
        let c2 = StdArc::clone(&c);
        let t = mv_model::thread::spawn(move || {
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        let v = c.load(Ordering::Relaxed);
        c.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
    };
    let pruned = explore(
        &Config {
            prune: true,
            ..cfg()
        },
        racy,
    );
    let full = explore(
        &Config {
            prune: false,
            ..cfg()
        },
        racy,
    );
    assert!(pruned.failure.is_some() && full.failure.is_some());

    let sound = || {
        let c = StdArc::new(AtomicU64::new(0));
        let c2 = StdArc::clone(&c);
        let t = mv_model::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    };
    let pruned = explore(
        &Config {
            prune: true,
            ..cfg()
        },
        sound,
    );
    let full = explore(
        &Config {
            prune: false,
            ..cfg()
        },
        sound,
    );
    assert!(pruned.failure.is_none() && full.failure.is_none());
    assert!(
        pruned.schedules <= full.schedules,
        "pruning should never explore more complete schedules"
    );
}

/// Shims fall back to plain std behavior outside an execution.
#[test]
fn shims_work_outside_explore() {
    let m = Mutex::new(5u64);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);
    let rw = RwLock::new(1u64);
    assert_eq!(*rw.read().unwrap(), 1);
    *rw.write().unwrap() = 2;
    assert_eq!(*rw.read().unwrap(), 2);
    let a = AtomicU64::new(0);
    a.fetch_add(3, Ordering::SeqCst);
    assert_eq!(a.load(Ordering::SeqCst), 3);
}
