//! Property tests for the expression layer.

use mv_catalog::Value;
use mv_expr::{classify, BoolExpr, CmpOp, ColRef, EquivClasses, Interval, ScalarExpr as S};
use proptest::prelude::*;

/// Strategy: a random interval built from a sequence of range predicates
/// over integers.
fn ops() -> impl Strategy<Value = (CmpOp, i64)> {
    (
        prop::sample::select(vec![CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt]),
        -50i64..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The accumulated interval accepts exactly the values every source
    /// predicate accepts (intervals = conjunction of range predicates).
    #[test]
    fn interval_accumulation_equals_predicate_conjunction(
        preds in prop::collection::vec(ops(), 0..5),
        samples in prop::collection::vec(-60i64..60, 20),
    ) {
        let mut iv = Interval::unconstrained();
        let mut applied = Vec::new();
        for (op, v) in &preds {
            if iv.apply(*op, &Value::Int(*v)) {
                applied.push((*op, *v));
            }
        }
        for x in samples {
            let expect = applied
                .iter()
                .all(|(op, v)| op.evaluate(x.cmp(v)));
            prop_assert_eq!(
                iv.contains_value(&Value::Int(x)),
                expect,
                "x={} iv={} preds={:?}", x, iv, applied
            );
        }
    }

    /// Containment really means containment: if `a.contains(b)` then every
    /// value in `b` is in `a`; and compensation narrows `a` exactly to `b`.
    #[test]
    fn containment_and_compensation_are_exact(
        pa in prop::collection::vec(ops(), 0..4),
        pb in prop::collection::vec(ops(), 0..4),
        samples in prop::collection::vec(-60i64..60, 30),
    ) {
        let mut a = Interval::unconstrained();
        for (op, v) in &pa { a.apply(*op, &Value::Int(*v)); }
        let mut b = a.clone();
        for (op, v) in &pb { b.apply(*op, &Value::Int(*v)); }
        // b was built by tightening a, so a must contain b.
        prop_assert_eq!(a.contains(&b), Some(true));
        let comp = a.compensation(&b);
        for x in samples {
            let in_a = a.contains_value(&Value::Int(x));
            let in_b = b.contains_value(&Value::Int(x));
            let passes_comp = comp
                .iter()
                .all(|(op, v)| match v {
                    Value::Int(v) => op.evaluate(x.cmp(v)),
                    _ => unreachable!(),
                });
            prop_assert_eq!(in_a && passes_comp, in_b,
                "x={} a={} b={} comp={:?}", x, a, b, comp);
        }
    }

    /// Equivalence classes equal the transitive closure of the equality
    /// edges.
    #[test]
    fn union_find_is_transitive_closure(
        edges in prop::collection::vec((0u32..8, 0u32..8), 0..15),
        qa in 0u32..8,
        qb in 0u32..8,
    ) {
        let col = |i: u32| ColRef::new(0, i);
        let ec = EquivClasses::from_pairs(edges.iter().map(|&(a, b)| (col(a), col(b))));
        // Floyd-Warshall style closure over 8 nodes.
        let mut reach = [[false; 8]; 8];
        #[allow(clippy::needless_range_loop)]
        for i in 0..8 { reach[i][i] = true; }
        for &(a, b) in &edges {
            reach[a as usize][b as usize] = true;
            reach[b as usize][a as usize] = true;
        }
        for k in 0..8 {
            for i in 0..8 {
                for j in 0..8 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        prop_assert_eq!(ec.same(col(qa), col(qb)), reach[qa as usize][qb as usize]);
    }

    /// CNF conversion preserves three-valued semantics on random
    /// assignments (including NULLs).
    #[test]
    fn cnf_preserves_semantics(
        seed_vals in prop::collection::vec(prop::option::of(-5i64..5), 4),
        shape in 0u32..64,
    ) {
        let col = |i: u32| S::col(ColRef::new(0, i));
        // Build a small random boolean expression from the shape bits.
        let leaf = |i: u32, negate: bool| {
            let c = BoolExpr::cmp(col(i % 4), CmpOp::Lt, S::lit(((i as i64) % 3) - 1));
            if negate { BoolExpr::Not(Box::new(c)) } else { c }
        };
        let e = BoolExpr::or(vec![
            BoolExpr::and(vec![leaf(shape & 3, shape & 4 != 0), leaf((shape >> 3) & 3, shape & 8 != 0)]),
            BoolExpr::Not(Box::new(BoolExpr::or(vec![
                leaf((shape >> 4) & 3, false),
                leaf(shape & 3, true),
            ]))),
        ]);
        let row = |c: ColRef| match seed_vals[c.col.0 as usize] {
            Some(v) => Value::Int(v),
            None => Value::Null,
        };
        let direct = e.eval(&row);
        let cnf = BoolExpr::and(e.clone().to_cnf()).eval(&row);
        prop_assert_eq!(direct, cnf);
        // Classification + reassembly also preserves semantics.
        let conjuncts = classify(e);
        let again = mv_expr::conjuncts_to_bool(&conjuncts).eval(&row);
        prop_assert_eq!(direct, again);
    }
}
