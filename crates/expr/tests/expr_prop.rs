//! Property tests for the expression layer.

use mv_catalog::Value;
use mv_expr::{classify, BoolExpr, Bound, CmpOp, ColRef, EquivClasses, Interval, ScalarExpr as S};
use proptest::prelude::*;

/// Strategy: a random interval built from a sequence of range predicates
/// over integers.
fn ops() -> impl Strategy<Value = (CmpOp, i64)> {
    (
        prop::sample::select(vec![CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt]),
        -50i64..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The accumulated interval accepts exactly the values every source
    /// predicate accepts (intervals = conjunction of range predicates).
    #[test]
    fn interval_accumulation_equals_predicate_conjunction(
        preds in prop::collection::vec(ops(), 0..5),
        samples in prop::collection::vec(-60i64..60, 20),
    ) {
        let mut iv = Interval::unconstrained();
        let mut applied = Vec::new();
        for (op, v) in &preds {
            if iv.apply(*op, &Value::Int(*v)) {
                applied.push((*op, *v));
            }
        }
        for x in samples {
            let expect = applied
                .iter()
                .all(|(op, v)| op.evaluate(x.cmp(v)));
            prop_assert_eq!(
                iv.contains_value(&Value::Int(x)),
                expect,
                "x={} iv={} preds={:?}", x, iv, applied
            );
        }
    }

    /// Containment really means containment: if `a.contains(b)` then every
    /// value in `b` is in `a`; and compensation narrows `a` exactly to `b`.
    #[test]
    fn containment_and_compensation_are_exact(
        pa in prop::collection::vec(ops(), 0..4),
        pb in prop::collection::vec(ops(), 0..4),
        samples in prop::collection::vec(-60i64..60, 30),
    ) {
        let mut a = Interval::unconstrained();
        for (op, v) in &pa { a.apply(*op, &Value::Int(*v)); }
        let mut b = a.clone();
        for (op, v) in &pb { b.apply(*op, &Value::Int(*v)); }
        // b was built by tightening a, so a must contain b.
        prop_assert_eq!(a.contains(&b), Some(true));
        let comp = a.compensation(&b);
        for x in samples {
            let in_a = a.contains_value(&Value::Int(x));
            let in_b = b.contains_value(&Value::Int(x));
            let passes_comp = comp
                .iter()
                .all(|(op, v)| match v {
                    Value::Int(v) => op.evaluate(x.cmp(v)),
                    _ => unreachable!(),
                });
            prop_assert_eq!(in_a && passes_comp, in_b,
                "x={} a={} b={} comp={:?}", x, a, b, comp);
        }
    }

    /// Equivalence classes equal the transitive closure of the equality
    /// edges.
    #[test]
    fn union_find_is_transitive_closure(
        edges in prop::collection::vec((0u32..8, 0u32..8), 0..15),
        qa in 0u32..8,
        qb in 0u32..8,
    ) {
        let col = |i: u32| ColRef::new(0, i);
        let ec = EquivClasses::from_pairs(edges.iter().map(|&(a, b)| (col(a), col(b))));
        // Floyd-Warshall style closure over 8 nodes.
        let mut reach = [[false; 8]; 8];
        #[allow(clippy::needless_range_loop)]
        for i in 0..8 { reach[i][i] = true; }
        for &(a, b) in &edges {
            reach[a as usize][b as usize] = true;
            reach[b as usize][a as usize] = true;
        }
        for k in 0..8 {
            for i in 0..8 {
                for j in 0..8 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        prop_assert_eq!(ec.same(col(qa), col(qb)), reach[qa as usize][qb as usize]);
    }

    /// CNF conversion preserves three-valued semantics on random
    /// assignments (including NULLs).
    #[test]
    fn cnf_preserves_semantics(
        seed_vals in prop::collection::vec(prop::option::of(-5i64..5), 4),
        shape in 0u32..64,
    ) {
        let col = |i: u32| S::col(ColRef::new(0, i));
        // Build a small random boolean expression from the shape bits.
        let leaf = |i: u32, negate: bool| {
            let c = BoolExpr::cmp(col(i % 4), CmpOp::Lt, S::lit(((i as i64) % 3) - 1));
            if negate { BoolExpr::Not(Box::new(c)) } else { c }
        };
        let e = BoolExpr::or(vec![
            BoolExpr::and(vec![leaf(shape & 3, shape & 4 != 0), leaf((shape >> 3) & 3, shape & 8 != 0)]),
            BoolExpr::Not(Box::new(BoolExpr::or(vec![
                leaf((shape >> 4) & 3, false),
                leaf(shape & 3, true),
            ]))),
        ]);
        let row = |c: ColRef| match seed_vals[c.col.0 as usize] {
            Some(v) => Value::Int(v),
            None => Value::Null,
        };
        let direct = e.eval(&row);
        let cnf = BoolExpr::and(e.clone().to_cnf()).eval(&row);
        prop_assert_eq!(direct, cnf);
        // Classification + reassembly also preserves semantics.
        let conjuncts = classify(e);
        let again = mv_expr::conjuncts_to_bool(&conjuncts).eval(&row);
        prop_assert_eq!(direct, again);
    }
}

/// Strategy: a raw interval endpoint — kind 0 is unbounded, 1 inclusive,
/// 2 exclusive. Building bounds directly (instead of via `apply`) reaches
/// open/closed corner cases such as `(4, 5)` and `[5, 5)` that predicate
/// accumulation rarely produces.
fn endpoint() -> impl Strategy<Value = (u32, i64)> {
    (0u32..3, -10i64..10)
}

fn mk_bound((kind, v): (u32, i64)) -> Bound {
    match kind {
        0 => Bound::Unbounded,
        1 => Bound::Incl(Value::Int(v)),
        _ => Bound::Excl(Value::Int(v)),
    }
}

fn mk_interval(lo: (u32, i64), hi: (u32, i64)) -> Interval {
    Interval {
        lo: mk_bound(lo),
        hi: mk_bound(hi),
    }
}

/// Integer points straddling the endpoint range, used as the brute-force
/// point-membership model. Note the model is one-sided for emptiness and
/// non-containment: open real intervals like `(4, 5)` contain no integers,
/// so only the sound directions are asserted.
const POINTS: std::ops::RangeInclusive<i64> = -12..=12;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Intersection is pointwise conjunction of memberships, and is
    /// commutative, for arbitrary open/closed/unbounded endpoints.
    #[test]
    fn intersect_agrees_with_point_model(
        alo in endpoint(), ahi in endpoint(),
        blo in endpoint(), bhi in endpoint(),
    ) {
        let a = mk_interval(alo, ahi);
        let b = mk_interval(blo, bhi);
        let c = a.clone().intersect(&b).expect("Int bounds are comparable");
        let c2 = b.clone().intersect(&a).expect("Int bounds are comparable");
        prop_assert_eq!(&c, &c2, "intersection must be commutative");
        for x in POINTS {
            let v = Value::Int(x);
            prop_assert_eq!(
                c.contains_value(&v),
                a.contains_value(&v) && b.contains_value(&v),
                "x={} a={} b={} c={}", x, a, b, c
            );
        }
    }

    /// `contains` and `is_empty` are sound against the point model: a
    /// claimed containment implies pointwise subset, a pointwise
    /// counterexample refutes containment, and an empty interval holds no
    /// integer points.
    #[test]
    fn contains_and_is_empty_are_sound_on_points(
        alo in endpoint(), ahi in endpoint(),
        blo in endpoint(), bhi in endpoint(),
    ) {
        let a = mk_interval(alo, ahi);
        let b = mk_interval(blo, bhi);
        let subset = POINTS.clone().all(|x| {
            !b.contains_value(&Value::Int(x)) || a.contains_value(&Value::Int(x))
        });
        if a.contains(&b) == Some(true) {
            prop_assert!(subset, "a={} claims to contain b={}", a, b);
        }
        if !subset {
            prop_assert_ne!(a.contains(&b), Some(true), "a={} b={}", a, b);
        }
        for iv in [&a, &b] {
            if iv.is_empty() {
                for x in POINTS {
                    prop_assert!(!iv.contains_value(&Value::Int(x)),
                        "empty interval {} contains {}", iv, x);
                }
            }
        }
    }

    /// Compensation narrows the containing interval exactly to the
    /// contained one, for arbitrary endpoint kinds (the contained interval
    /// is built by intersection, which guarantees containment).
    #[test]
    fn compensation_exact_on_contained_pairs(
        alo in endpoint(), ahi in endpoint(),
        rlo in endpoint(), rhi in endpoint(),
    ) {
        let a = mk_interval(alo, ahi);
        let r = mk_interval(rlo, rhi);
        let b = a.clone().intersect(&r).expect("Int bounds are comparable");
        prop_assert_eq!(a.contains(&b), Some(true), "a={} b=a∩{}={}", a, r, b);
        let comp = a.compensation(&b);
        for x in POINTS {
            let v = Value::Int(x);
            let passes = comp.iter().all(|(op, cv)| match cv {
                Value::Int(cv) => op.evaluate(x.cmp(cv)),
                _ => unreachable!("integer intervals compensate with Int"),
            });
            prop_assert_eq!(
                a.contains_value(&v) && passes,
                b.contains_value(&v),
                "x={} a={} b={} comp={:?}", x, a, b, comp
            );
        }
    }

    /// `absorb` is idempotent: absorbing the same classes a second time —
    /// or absorbing a structure into itself — changes nothing.
    #[test]
    fn absorb_is_idempotent(
        ea in prop::collection::vec((0u32..8, 0u32..8), 0..12),
        eb in prop::collection::vec((0u32..8, 0u32..8), 0..12),
    ) {
        let col = |i: u32| ColRef::new(0, i);
        let mut a = EquivClasses::from_pairs(ea.iter().map(|&(x, y)| (col(x), col(y))));
        let b = EquivClasses::from_pairs(eb.iter().map(|&(x, y)| (col(x), col(y))));
        a.absorb(&b);
        let once = a.nontrivial_classes();
        a.absorb(&b);
        prop_assert_eq!(&a.nontrivial_classes(), &once, "second absorb changed classes");
        let self_copy = a.clone();
        a.absorb(&self_copy);
        prop_assert_eq!(&a.nontrivial_classes(), &once, "self-absorb changed classes");
    }

    /// `from_pairs` is order-independent: reversing the edge list and
    /// swapping edge endpoints yields the same equivalence classes.
    #[test]
    fn from_pairs_order_independent(
        edges in prop::collection::vec((0u32..8, 0u32..8), 0..15),
    ) {
        let col = |i: u32| ColRef::new(0, i);
        let forward = EquivClasses::from_pairs(edges.iter().map(|&(a, b)| (col(a), col(b))));
        let backward =
            EquivClasses::from_pairs(edges.iter().rev().map(|&(a, b)| (col(b), col(a))));
        prop_assert_eq!(forward.nontrivial_classes(), backward.nontrivial_classes());
    }

    /// `nontrivial_classes` is in canonical form: every class sorted with
    /// at least two members, classes sorted by first member, pairwise
    /// disjoint, and membership agrees with `same`.
    #[test]
    fn nontrivial_classes_canonical(
        edges in prop::collection::vec((0u32..8, 0u32..8), 0..15),
    ) {
        let col = |i: u32| ColRef::new(0, i);
        let ec = EquivClasses::from_pairs(edges.iter().map(|&(a, b)| (col(a), col(b))));
        let classes = ec.nontrivial_classes();
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            prop_assert!(class.len() >= 2, "trivial class {:?}", class);
            prop_assert!(class.windows(2).all(|w| w[0] < w[1]),
                "class not strictly sorted: {:?}", class);
            for &m in class {
                prop_assert!(seen.insert(m), "member {:?} appears in two classes", m);
                prop_assert!(ec.same(class[0], m));
            }
        }
        prop_assert!(
            classes.windows(2).all(|w| w[0][0] < w[1][0]),
            "classes not sorted by first member"
        );
    }
}
