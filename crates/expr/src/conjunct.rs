//! Classification of CNF conjuncts into the paper's three predicate
//! components (section 3.1.2):
//!
//! * `PE`: column-equality predicates `Ti.Cp = Tj.Cq`,
//! * `PR`: range predicates `Ti.Cp op c` with `op ∈ {<, <=, =, >=, >}`,
//! * `PU`: the residual predicates (everything else).

use crate::boolean::{BoolExpr, CmpOp};
use crate::colref::ColRef;
use crate::scalar::ScalarExpr;
use mv_catalog::Value;

/// One classified conjunct of a CNF predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conjunct {
    /// `a = b` between two distinct column references (`PE`).
    ColumnEq(ColRef, ColRef),
    /// `col op constant` (`PR`).
    Range {
        col: ColRef,
        op: CmpOp,
        value: Value,
    },
    /// Anything else (`PU`).
    Residual(BoolExpr),
}

impl Conjunct {
    /// Column references of the conjunct, in textual order.
    pub fn columns(&self) -> Vec<ColRef> {
        match self {
            Conjunct::ColumnEq(a, b) => vec![*a, *b],
            Conjunct::Range { col, .. } => vec![*col],
            Conjunct::Residual(p) => p.columns(),
        }
    }

    /// Convert back into a boolean expression (for evaluation and for
    /// emitting substitute plans).
    pub fn to_bool(&self) -> BoolExpr {
        match self {
            Conjunct::ColumnEq(a, b) => BoolExpr::col_eq(*a, *b),
            Conjunct::Range { col, op, value } => BoolExpr::Compare {
                op: *op,
                left: ScalarExpr::Column(*col),
                right: ScalarExpr::Literal(value.clone()),
            },
            Conjunct::Residual(p) => p.clone(),
        }
    }

    /// Rewrite column references through a fallible mapping.
    pub fn try_map_columns(
        &self,
        f: &mut impl FnMut(ColRef) -> Option<ColRef>,
    ) -> Option<Conjunct> {
        Some(match self {
            Conjunct::ColumnEq(a, b) => Conjunct::ColumnEq(f(*a)?, f(*b)?),
            Conjunct::Range { col, op, value } => Conjunct::Range {
                col: f(*col)?,
                op: *op,
                value: value.clone(),
            },
            Conjunct::Residual(p) => Conjunct::Residual(p.try_map_columns(f)?),
        })
    }
}

/// Fold an expression that references no columns down to a literal value.
fn fold_constant(e: &ScalarExpr) -> Option<Value> {
    if !e.is_constant() {
        return None;
    }
    // The row accessor is never consulted for constant expressions.
    Some(e.eval(&|_| Value::Null))
}

/// Classify one CNF conjunct.
///
/// Constant subexpressions on the comparison side are folded first, so
/// `l_partkey < 100 + 50` classifies as a range predicate with bound 150.
/// `a = a` (same column on both sides) is *not* a column-equality predicate
/// — it is kept residual because under SQL semantics it rejects NULLs.
pub fn classify_one(conjunct: BoolExpr) -> Conjunct {
    if let BoolExpr::Compare { op, left, right } = &conjunct {
        // Column = Column.
        if *op == CmpOp::Eq {
            if let (Some(a), Some(b)) = (left.as_column(), right.as_column()) {
                if a != b {
                    // Normalize orientation for determinism.
                    let (a, b) = if a <= b { (a, b) } else { (b, a) };
                    return Conjunct::ColumnEq(a, b);
                } else {
                    return Conjunct::Residual(conjunct);
                }
            }
        }
        if *op != CmpOp::Ne {
            // Column op constant.
            if let (Some(c), Some(v)) = (left.as_column(), fold_constant(right)) {
                return Conjunct::Range {
                    col: c,
                    op: *op,
                    value: v,
                };
            }
            // Constant op column — flip.
            if let (Some(v), Some(c)) = (fold_constant(left), right.as_column()) {
                return Conjunct::Range {
                    col: c,
                    op: op.flipped(),
                    value: v,
                };
            }
        }
    }
    Conjunct::Residual(conjunct)
}

/// Convert a predicate to CNF and classify every conjunct.
pub fn classify(predicate: BoolExpr) -> Vec<Conjunct> {
    predicate.to_cnf().into_iter().map(classify_one).collect()
}

/// Reassemble classified conjuncts into one boolean expression.
pub fn conjuncts_to_bool(conjuncts: &[Conjunct]) -> BoolExpr {
    BoolExpr::and(conjuncts.iter().map(Conjunct::to_bool).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{BinOp, ScalarExpr as S};

    fn c(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn column_equality_detected_and_normalized() {
        let e = BoolExpr::col_eq(c(1, 0), c(0, 0));
        assert_eq!(classify_one(e), Conjunct::ColumnEq(c(0, 0), c(1, 0)));
    }

    #[test]
    fn self_equality_is_residual() {
        let e = BoolExpr::col_eq(c(0, 0), c(0, 0));
        assert!(matches!(classify_one(e), Conjunct::Residual(_)));
    }

    #[test]
    fn range_predicates_both_orientations() {
        // p_partkey < 1000
        let e = BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Lt, S::lit(1000i64));
        assert_eq!(
            classify_one(e),
            Conjunct::Range {
                col: c(0, 0),
                op: CmpOp::Lt,
                value: Value::Int(1000)
            }
        );
        // 1000 > p_partkey  ==  p_partkey < 1000
        let e = BoolExpr::cmp(S::lit(1000i64), CmpOp::Gt, S::col(c(0, 0)));
        assert_eq!(
            classify_one(e),
            Conjunct::Range {
                col: c(0, 0),
                op: CmpOp::Lt,
                value: Value::Int(1000)
            }
        );
    }

    #[test]
    fn constant_folding_in_range_bound() {
        let bound = S::lit(100i64).binary(BinOp::Add, S::lit(50i64));
        let e = BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Lt, bound);
        assert_eq!(
            classify_one(e),
            Conjunct::Range {
                col: c(0, 0),
                op: CmpOp::Lt,
                value: Value::Int(150)
            }
        );
    }

    #[test]
    fn ne_and_complex_predicates_are_residual() {
        let e = BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Ne, S::lit(5i64));
        assert!(matches!(classify_one(e), Conjunct::Residual(_)));
        // l_quantity * l_extendedprice > 100
        let e = BoolExpr::cmp(
            S::col(c(0, 1)).binary(BinOp::Mul, S::col(c(0, 2))),
            CmpOp::Gt,
            S::lit(100i64),
        );
        assert!(matches!(classify_one(e), Conjunct::Residual(_)));
        let e = BoolExpr::Like {
            expr: S::col(c(0, 0)),
            pattern: "%x%".into(),
            negated: false,
        };
        assert!(matches!(classify_one(e), Conjunct::Residual(_)));
    }

    #[test]
    fn classify_full_where_clause() {
        // l_orderkey = o_orderkey AND o_custkey >= 50 AND p_name LIKE '%steel%'
        let e = BoolExpr::and(vec![
            BoolExpr::col_eq(c(0, 0), c(1, 0)),
            BoolExpr::cmp(S::col(c(1, 1)), CmpOp::Ge, S::lit(50i64)),
            BoolExpr::Like {
                expr: S::col(c(2, 1)),
                pattern: "%steel%".into(),
                negated: false,
            },
        ]);
        let conjuncts = classify(e.clone());
        assert_eq!(conjuncts.len(), 3);
        assert!(matches!(conjuncts[0], Conjunct::ColumnEq(..)));
        assert!(matches!(conjuncts[1], Conjunct::Range { .. }));
        assert!(matches!(conjuncts[2], Conjunct::Residual(_)));
        // Roundtrip preserves evaluation.
        let row = |cr: ColRef| match (cr.occ.0, cr.col.0) {
            (0, 0) | (1, 0) => Value::Int(7),
            (1, 1) => Value::Int(99),
            (2, 1) => Value::Str("hot rolled steel".into()),
            _ => Value::Null,
        };
        assert_eq!(conjuncts_to_bool(&conjuncts).eval(&row), e.eval(&row));
    }

    #[test]
    fn between_splits_into_two_ranges() {
        // x BETWEEN 1000 AND 1500 arrives as two conjuncts after parsing.
        let e = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Ge, S::lit(1000i64)),
            BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Le, S::lit(1500i64)),
        ]);
        let conjuncts = classify(e);
        assert_eq!(
            conjuncts,
            vec![
                Conjunct::Range {
                    col: c(0, 0),
                    op: CmpOp::Ge,
                    value: Value::Int(1000)
                },
                Conjunct::Range {
                    col: c(0, 0),
                    op: CmpOp::Le,
                    value: Value::Int(1500)
                },
            ]
        );
    }
}
