//! SQL `LIKE` pattern matching.
//!
//! Supports `%` (any sequence, including empty) and `_` (exactly one
//! character). No escape syntax — TPC-H patterns such as `%steel%` (the
//! paper's Example 1) never need it.

/// Does `s` match the SQL LIKE `pattern`?
pub fn like_match(s: &str, pattern: &str) -> bool {
    // Iterative two-pointer algorithm with backtracking over the last `%`.
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, s idx)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
        assert!(like_match("", ""));
    }

    #[test]
    fn percent_wildcard() {
        assert!(like_match("steel plate", "%steel%"));
        assert!(like_match("steel", "%steel%"));
        assert!(like_match("stainless steel", "%steel"));
        assert!(like_match("steelworks", "steel%"));
        assert!(!like_match("stele", "%steel%"));
        assert!(like_match("anything", "%"));
        assert!(like_match("", "%"));
        assert!(like_match("aXbXc", "a%b%c"));
        // Greedy backtracking case: last match of `b` must be found.
        assert!(like_match("abXb", "a%b"));
        assert!(!like_match("abXc", "a%b"));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("ct", "c_t"));
        assert!(!like_match("cart", "c_t"));
        assert!(like_match("cart", "c__t"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("ab", "___"));
    }

    #[test]
    fn combined_wildcards() {
        assert!(like_match("promo burnished steel", "promo%steel"));
        assert!(like_match("xay", "_a%"));
        assert!(like_match("xa", "_a%"));
        assert!(!like_match("ax", "_a%"));
        assert!(like_match("medium metallic", "%med%tal%"));
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("héllo", "%é%"));
    }
}
