//! Column equivalence classes (section 3.1.1 of the paper).
//!
//! "Knowledge about column equivalences can be captured compactly by
//! computing a set of equivalence classes based on the column equality
//! predicates in `PE`. ... Begin with each column of the tables referenced
//! by the expression in a separate set. Then loop through the column
//! equality predicates in any order ... if they are in different sets merge
//! the two sets."
//!
//! Implemented as a union-find over [`ColRef`]s with path compression and
//! union by size, plus enumeration of class members (needed for *extended*
//! output lists in section 4.2.3 and for rerouting column references).

use crate::colref::ColRef;
use std::collections::HashMap;

/// Union-find over column references.
///
/// Columns never mentioned in any predicate or registration implicitly form
/// trivial singleton classes; [`EquivClasses::class_of`] handles them
/// without requiring registration.
#[derive(Debug, Clone, Default)]
pub struct EquivClasses {
    parent: HashMap<ColRef, ColRef>,
    size: HashMap<ColRef, u32>,
}

impl EquivClasses {
    /// Empty structure: every column is its own class.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build directly from a list of equality pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ColRef, ColRef)>) -> Self {
        let mut ec = Self::new();
        for (a, b) in pairs {
            ec.union(a, b);
        }
        ec
    }

    fn find_internal(&mut self, c: ColRef) -> ColRef {
        match self.parent.get(&c) {
            None => c,
            Some(&p) if p == c => c,
            Some(&p) => {
                let root = self.find_internal(p);
                if root != p {
                    self.parent.insert(c, root);
                }
                root
            }
        }
    }

    /// Canonical representative of the class containing `c` (no mutation;
    /// follows parent pointers without compressing).
    pub fn find(&self, mut c: ColRef) -> ColRef {
        while let Some(&p) = self.parent.get(&c) {
            if p == c {
                break;
            }
            c = p;
        }
        c
    }

    /// Merge the classes of `a` and `b` (applying one column-equality
    /// predicate). Returns `true` if the classes were previously distinct.
    pub fn union(&mut self, a: ColRef, b: ColRef) -> bool {
        let ra = self.find_internal(a);
        let rb = self.find_internal(b);
        if ra == rb {
            return false;
        }
        let sa = *self.size.get(&ra).unwrap_or(&1);
        let sb = *self.size.get(&rb).unwrap_or(&1);
        let (big, small) = if sa >= sb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(small, big);
        self.parent.entry(big).or_insert(big);
        self.size.insert(big, sa + sb);
        true
    }

    /// Are `a` and `b` known to be equal?
    pub fn same(&self, a: ColRef, b: ColRef) -> bool {
        self.find(a) == self.find(b)
    }

    /// Is `c` part of a non-trivial class (equal to at least one other
    /// column)? Used by the *reduced range constraint list* (section 4.2.5)
    /// and the hub refinement (section 4.2.2).
    pub fn is_trivial(&self, c: ColRef) -> bool {
        match self.parent.get(&c) {
            None => true,
            Some(_) => {
                let root = self.find(c);
                *self.size.get(&root).unwrap_or(&1) <= 1
            }
        }
    }

    /// All members of the class containing `c` (at least `[c]` itself).
    pub fn class_of(&self, c: ColRef) -> Vec<ColRef> {
        let root = self.find(c);
        let mut members: Vec<ColRef> = self
            .parent
            .keys()
            .copied()
            .filter(|&k| self.find(k) == root)
            .collect();
        if members.is_empty() {
            members.push(c);
        }
        members.sort();
        members
    }

    /// Every class with two or more members, each sorted, classes sorted by
    /// first member. These are the "non-trivial equivalence classes" whose
    /// containment the equijoin subsumption test checks.
    pub fn nontrivial_classes(&self) -> Vec<Vec<ColRef>> {
        let mut by_root: HashMap<ColRef, Vec<ColRef>> = HashMap::new();
        for &k in self.parent.keys() {
            by_root.entry(self.find(k)).or_default().push(k);
        }
        let mut classes: Vec<Vec<ColRef>> = by_root
            .into_values()
            .filter(|v| v.len() >= 2)
            .map(|mut v| {
                v.sort();
                v
            })
            .collect();
        classes.sort();
        classes
    }

    /// Every column this structure has seen (members of some union call).
    pub fn known_columns(&self) -> impl Iterator<Item = ColRef> + '_ {
        self.parent.keys().copied()
    }

    /// Materialize every class once, for hot loops that would otherwise
    /// call [`EquivClasses::class_of`] (a full scan) per probed column.
    pub fn class_index(&self) -> ClassIndex {
        let mut by_root: HashMap<ColRef, Vec<ColRef>> = HashMap::new();
        for &k in self.parent.keys() {
            by_root.entry(self.find(k)).or_default().push(k);
        }
        let mut classes: Vec<(ColRef, Vec<ColRef>)> = by_root
            .into_iter()
            .map(|(root, mut members)| {
                members.sort();
                (root, members)
            })
            .collect();
        classes.sort_by_key(|(root, _)| *root);
        ClassIndex { classes }
    }

    /// Merge every equality from `other` into `self`. Used when the query's
    /// equivalence classes are extended with the join conditions of
    /// eliminated extra tables (section 3.2): "we scan the join conditions
    /// of all foreign-key edges deleted during the elimination process and
    /// apply them to query equivalence classes".
    pub fn absorb(&mut self, other: &EquivClasses) {
        for class in other.nontrivial_classes() {
            for pair in class.windows(2) {
                self.union(pair[0], pair[1]);
            }
        }
    }
}

/// Every class of an [`EquivClasses`] materialized once: `(root, sorted
/// members)` pairs sorted by root. Built by
/// [`EquivClasses::class_index`]; lookups replace the per-probe full
/// scan of [`EquivClasses::class_of`] with a binary search.
#[derive(Debug, Clone, Default)]
pub struct ClassIndex {
    classes: Vec<(ColRef, Vec<ColRef>)>,
}

impl ClassIndex {
    /// The sorted members of the class rooted at `root` (the caller
    /// passes `ec.find(c)`), or `None` for a column the structure never
    /// saw — the probe's class is then just `[c]` itself.
    pub fn members(&self, root: ColRef) -> Option<&[ColRef]> {
        self.classes
            .binary_search_by_key(&root, |(r, _)| *r)
            .ok()
            .map(|i| self.classes[i].1.as_slice())
    }

    /// The classes with two or more members, ascending by root — the same
    /// class set as [`EquivClasses::nontrivial_classes`] (which orders by
    /// smallest member instead; callers whose per-class work is
    /// order-independent can iterate this without re-deriving the list).
    pub fn nontrivial(&self) -> impl Iterator<Item = &[ColRef]> {
        self.classes
            .iter()
            .filter(|(_, m)| m.len() >= 2)
            .map(|(_, m)| m.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn transitivity() {
        // Paper, equijoin subsumption test discussion: view (A=B, B=C),
        // query (A=C, C=B) — both imply A=B=C.
        let mut v = EquivClasses::new();
        v.union(c(0, 0), c(0, 1)); // A=B
        v.union(c(0, 1), c(0, 2)); // B=C
        let mut q = EquivClasses::new();
        q.union(c(0, 0), c(0, 2)); // A=C
        q.union(c(0, 2), c(0, 1)); // C=B
        assert_eq!(v.nontrivial_classes(), q.nontrivial_classes());
        assert!(v.same(c(0, 0), c(0, 2)));
    }

    #[test]
    fn union_returns_whether_merged() {
        let mut ec = EquivClasses::new();
        assert!(ec.union(c(0, 0), c(1, 0)));
        assert!(!ec.union(c(1, 0), c(0, 0)));
    }

    #[test]
    fn trivial_classes() {
        let mut ec = EquivClasses::new();
        ec.union(c(0, 0), c(1, 0));
        assert!(!ec.is_trivial(c(0, 0)));
        assert!(ec.is_trivial(c(5, 5))); // never seen
        assert_eq!(ec.class_of(c(5, 5)), vec![c(5, 5)]);
    }

    #[test]
    fn class_enumeration() {
        let mut ec = EquivClasses::new();
        ec.union(c(0, 0), c(1, 0));
        ec.union(c(1, 0), c(2, 0));
        ec.union(c(0, 5), c(1, 5));
        let classes = ec.nontrivial_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![c(0, 0), c(1, 0), c(2, 0)]);
        assert_eq!(classes[1], vec![c(0, 5), c(1, 5)]);
    }

    #[test]
    fn absorb_merges_classes() {
        let mut a = EquivClasses::new();
        a.union(c(0, 0), c(1, 0));
        let mut b = EquivClasses::new();
        b.union(c(1, 0), c(2, 0));
        b.union(c(3, 3), c(4, 4));
        a.absorb(&b);
        assert!(a.same(c(0, 0), c(2, 0)));
        assert!(a.same(c(3, 3), c(4, 4)));
    }

    #[test]
    fn find_without_mutation() {
        let mut ec = EquivClasses::new();
        ec.union(c(0, 0), c(1, 0));
        ec.union(c(1, 0), c(2, 0));
        let ec2 = ec.clone();
        // Chains resolve to the same root from both endpoints.
        assert_eq!(ec2.find(c(0, 0)), ec2.find(c(2, 0)));
    }
}
