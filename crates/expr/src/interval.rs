//! Ranges (intervals) over column values with open, closed or unbounded
//! endpoints.
//!
//! Section 3.1.2: "We associate with each equivalence class in the query a
//! range that specifies a lower and upper bound on the columns in the
//! equivalence class. Both bounds are initially left uninitialized. We then
//! consider the range predicates one by one ... If the predicate is of type
//! `(Ti.Cp = c)` we set *both* bounds; `<` / `<=` tighten the upper bound;
//! `>` / `>=` tighten the lower bound."
//!
//! The range subsumption test then checks that every view range *contains*
//! the corresponding query range, and the difference between the two ranges
//! yields the compensating range predicates.

use crate::boolean::CmpOp;
use mv_catalog::Value;
use std::cmp::Ordering;
use std::fmt;

/// One endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Bound {
    /// No constraint (`-∞` or `+∞` depending on the side).
    #[default]
    Unbounded,
    /// Endpoint included (`>=` / `<=`).
    Incl(Value),
    /// Endpoint excluded (`>` / `<`).
    Excl(Value),
}

impl Bound {
    /// The endpoint value, if bounded.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Bound::Unbounded => None,
            Bound::Incl(v) | Bound::Excl(v) => Some(v),
        }
    }
}

/// An interval `lo .. hi`. The default is the unconstrained interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Interval {
    /// Lower bound.
    pub lo: Bound,
    /// Upper bound.
    pub hi: Bound,
}

/// Compare two lower bounds: which admits fewer values (is *tighter*)?
/// Returns `Greater` when `a` is tighter (higher) than `b`.
fn cmp_lower(a: &Bound, b: &Bound) -> Option<Ordering> {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Some(Ordering::Equal),
        (Bound::Unbounded, _) => Some(Ordering::Less),
        (_, Bound::Unbounded) => Some(Ordering::Greater),
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match av.sql_cmp(bv)? {
                Ordering::Equal => {
                    // Excl(v) is tighter than Incl(v) as a lower bound.
                    let rank = |x: &Bound| matches!(x, Bound::Excl(_)) as u8;
                    Some(rank(a).cmp(&rank(b)))
                }
                ord => Some(ord),
            }
        }
    }
}

/// Compare two upper bounds: `Less` when `a` is tighter (lower) than `b`.
fn cmp_upper(a: &Bound, b: &Bound) -> Option<Ordering> {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Some(Ordering::Equal),
        (Bound::Unbounded, _) => Some(Ordering::Greater),
        (_, Bound::Unbounded) => Some(Ordering::Less),
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match av.sql_cmp(bv)? {
                Ordering::Equal => {
                    // Excl(v) is tighter than Incl(v) as an upper bound.
                    let rank = |x: &Bound| matches!(x, Bound::Incl(_)) as u8;
                    Some(rank(a).cmp(&rank(b)))
                }
                ord => Some(ord),
            }
        }
    }
}

impl Interval {
    /// The unconstrained interval `(-∞, +∞)`.
    pub fn unconstrained() -> Self {
        Interval::default()
    }

    /// Whether any bound has been set.
    pub fn is_constrained(&self) -> bool {
        self.lo != Bound::Unbounded || self.hi != Bound::Unbounded
    }

    /// Point interval `[v, v]` — produced by an equality predicate.
    pub fn point(v: Value) -> Self {
        Interval {
            lo: Bound::Incl(v.clone()),
            hi: Bound::Incl(v),
        }
    }

    /// Tighten this interval with the predicate `col op value`.
    ///
    /// Returns `false` (and leaves the interval untouched) when the value is
    /// incomparable with an existing bound — callers then treat the
    /// predicate as residual instead of losing information.
    pub fn apply(&mut self, op: CmpOp, value: &Value) -> bool {
        let candidate = match op {
            CmpOp::Eq => Interval::point(value.clone()),
            CmpOp::Lt => Interval {
                lo: Bound::Unbounded,
                hi: Bound::Excl(value.clone()),
            },
            CmpOp::Le => Interval {
                lo: Bound::Unbounded,
                hi: Bound::Incl(value.clone()),
            },
            CmpOp::Gt => Interval {
                lo: Bound::Excl(value.clone()),
                hi: Bound::Unbounded,
            },
            CmpOp::Ge => Interval {
                lo: Bound::Incl(value.clone()),
                hi: Bound::Unbounded,
            },
            CmpOp::Ne => return false,
        };
        match self.clone().intersect(&candidate) {
            Some(next) => {
                *self = next;
                true
            }
            None => false,
        }
    }

    /// Intersection of two intervals; `None` when the bounds are mutually
    /// incomparable (e.g. a string bound against a numeric bound).
    pub fn intersect(self, other: &Interval) -> Option<Interval> {
        let lo = match cmp_lower(&self.lo, &other.lo)? {
            Ordering::Less => other.lo.clone(),
            _ => self.lo,
        };
        let hi = match cmp_upper(&self.hi, &other.hi)? {
            Ordering::Greater => other.hi.clone(),
            _ => self.hi,
        };
        // Reject mixed-type intervals (e.g. a numeric lower bound combined
        // with a string upper bound): such a pair can never be reasoned
        // about, so the caller keeps the predicate residual instead.
        if let (Some(l), Some(h)) = (lo.value(), hi.value()) {
            l.sql_cmp(h)?;
        }
        Some(Interval { lo, hi })
    }

    /// Does this interval contain `other` entirely? This is the per-class
    /// check of the range subsumption test: the *view* range must contain
    /// the *query* range. `None` when bounds are incomparable.
    pub fn contains(&self, other: &Interval) -> Option<bool> {
        let lo_ok = cmp_lower(&self.lo, &other.lo)? != Ordering::Greater;
        let hi_ok = cmp_upper(&self.hi, &other.hi)? != Ordering::Less;
        Some(lo_ok && hi_ok)
    }

    /// Is the interval certainly empty (lo > hi, or lo == hi with an open
    /// endpoint)? Incomparable bounds count as non-empty (conservative).
    pub fn is_empty(&self) -> bool {
        match (self.lo.value(), self.hi.value()) {
            (Some(lo), Some(hi)) => match lo.sql_cmp(hi) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => {
                    matches!(self.lo, Bound::Excl(_)) || matches!(self.hi, Bound::Excl(_))
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Does `v` lie within the interval? SQL semantics: NULL is never
    /// within any constrained interval; incomparable values are excluded.
    pub fn contains_value(&self, v: &Value) -> bool {
        if v.is_null() && self.is_constrained() {
            return false;
        }
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Incl(b) => matches!(v.sql_cmp(b), Some(Ordering::Greater | Ordering::Equal)),
            Bound::Excl(b) => matches!(v.sql_cmp(b), Some(Ordering::Greater)),
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Incl(b) => matches!(v.sql_cmp(b), Some(Ordering::Less | Ordering::Equal)),
            Bound::Excl(b) => matches!(v.sql_cmp(b), Some(Ordering::Less)),
        };
        lo_ok && hi_ok
    }

    /// The predicates (as `(op, value)` pairs) needed to narrow `self` down
    /// to `other`, assuming `self.contains(other)`. These become the
    /// *compensating range predicates* of section 3.1.3: "If the bounds are
    /// not equal, we must apply additional predicates to the view."
    ///
    /// A point query range is emitted as a single equality predicate rather
    /// than a `>=`/`<=` pair, matching Example 2 (`o_custkey = 123`).
    pub fn compensation(&self, other: &Interval) -> Vec<(CmpOp, Value)> {
        let mut out = Vec::new();
        if other.lo == other.hi {
            if let Bound::Incl(v) = &other.lo {
                // Point range: one equality predicate covers both ends.
                if cmp_lower(&self.lo, &other.lo) != Some(Ordering::Equal)
                    || cmp_upper(&self.hi, &other.hi) != Some(Ordering::Equal)
                {
                    out.push((CmpOp::Eq, v.clone()));
                }
                return out;
            }
        }
        if cmp_lower(&self.lo, &other.lo) != Some(Ordering::Equal) {
            match &other.lo {
                Bound::Unbounded => {}
                Bound::Incl(v) => out.push((CmpOp::Ge, v.clone())),
                Bound::Excl(v) => out.push((CmpOp::Gt, v.clone())),
            }
        }
        if cmp_upper(&self.hi, &other.hi) != Some(Ordering::Equal) {
            match &other.hi {
                Bound::Unbounded => {}
                Bound::Incl(v) => out.push((CmpOp::Le, v.clone())),
                Bound::Excl(v) => out.push((CmpOp::Lt, v.clone())),
            }
        }
        out
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Incl(v) => write!(f, "[{v}")?,
            Bound::Excl(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Incl(v) => write!(f, "{v}]"),
            Bound::Excl(v) => write!(f, "{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: Bound, hi: Bound) -> Interval {
        Interval { lo, hi }
    }

    #[test]
    fn apply_tightens() {
        let mut r = Interval::unconstrained();
        assert!(!r.is_constrained());
        assert!(r.apply(CmpOp::Gt, &Value::Int(150)));
        assert!(r.apply(CmpOp::Lt, &Value::Int(160)));
        assert_eq!(r.lo, Bound::Excl(Value::Int(150)));
        assert_eq!(r.hi, Bound::Excl(Value::Int(160)));
        // A looser bound changes nothing.
        assert!(r.apply(CmpOp::Gt, &Value::Int(100)));
        assert_eq!(r.lo, Bound::Excl(Value::Int(150)));
        // A tighter, inclusive bound at the same value stays exclusive.
        assert!(r.apply(CmpOp::Ge, &Value::Int(150)));
        assert_eq!(r.lo, Bound::Excl(Value::Int(150)));
    }

    #[test]
    fn equality_sets_point() {
        let mut r = Interval::unconstrained();
        assert!(r.apply(CmpOp::Eq, &Value::Int(123)));
        assert_eq!(r, Interval::point(Value::Int(123)));
        assert!(!r.is_empty());
        assert!(r.apply(CmpOp::Eq, &Value::Int(124)));
        assert!(r.is_empty());
    }

    #[test]
    fn ne_is_not_a_range() {
        let mut r = Interval::unconstrained();
        assert!(!r.apply(CmpOp::Ne, &Value::Int(5)));
        assert!(!r.is_constrained());
    }

    #[test]
    fn incomparable_rejected() {
        let mut r = Interval::unconstrained();
        assert!(r.apply(CmpOp::Gt, &Value::Int(10)));
        assert!(!r.apply(CmpOp::Lt, &Value::Str("zzz".into())));
        // Interval unchanged.
        assert_eq!(r.lo, Bound::Excl(Value::Int(10)));
        assert_eq!(r.hi, Bound::Unbounded);
    }

    #[test]
    fn containment_paper_example_2() {
        // View: {l_partkey} in (150, +inf); query: (150, 160).
        let view = iv(Bound::Excl(Value::Int(150)), Bound::Unbounded);
        let query = iv(Bound::Excl(Value::Int(150)), Bound::Excl(Value::Int(160)));
        assert_eq!(view.contains(&query), Some(true));
        assert_eq!(query.contains(&view), Some(false));
        // Compensation: only the upper bound differs.
        assert_eq!(
            view.compensation(&query),
            vec![(CmpOp::Lt, Value::Int(160))]
        );

        // View: o_custkey in (50, 500); query point 123.
        let view = iv(Bound::Excl(Value::Int(50)), Bound::Excl(Value::Int(500)));
        let query = Interval::point(Value::Int(123));
        assert_eq!(view.contains(&query), Some(true));
        assert_eq!(
            view.compensation(&query),
            vec![(CmpOp::Eq, Value::Int(123))]
        );
    }

    #[test]
    fn open_closed_subtleties() {
        // [10, 20] contains (10, 20) but not vice versa.
        let closed = iv(Bound::Incl(Value::Int(10)), Bound::Incl(Value::Int(20)));
        let open = iv(Bound::Excl(Value::Int(10)), Bound::Excl(Value::Int(20)));
        assert_eq!(closed.contains(&open), Some(true));
        assert_eq!(open.contains(&closed), Some(false));
        assert_eq!(
            closed.compensation(&open),
            vec![(CmpOp::Gt, Value::Int(10)), (CmpOp::Lt, Value::Int(20))]
        );
    }

    #[test]
    fn equal_ranges_need_no_compensation() {
        let a = iv(Bound::Incl(Value::Int(1)), Bound::Excl(Value::Int(9)));
        assert_eq!(a.contains(&a), Some(true));
        assert!(a.compensation(&a).is_empty());
    }

    #[test]
    fn contains_value_respects_bounds() {
        let r = iv(Bound::Excl(Value::Int(10)), Bound::Incl(Value::Int(20)));
        assert!(!r.contains_value(&Value::Int(10)));
        assert!(r.contains_value(&Value::Int(11)));
        assert!(r.contains_value(&Value::Int(20)));
        assert!(!r.contains_value(&Value::Int(21)));
        assert!(!r.contains_value(&Value::Null));
        assert!(Interval::unconstrained().contains_value(&Value::Null));
    }

    #[test]
    fn emptiness() {
        assert!(iv(Bound::Incl(Value::Int(5)), Bound::Excl(Value::Int(5))).is_empty());
        assert!(iv(Bound::Incl(Value::Int(6)), Bound::Incl(Value::Int(5))).is_empty());
        assert!(!iv(Bound::Incl(Value::Int(5)), Bound::Incl(Value::Int(5))).is_empty());
    }

    #[test]
    fn date_ranges() {
        let mut r = Interval::unconstrained();
        assert!(r.apply(CmpOp::Ge, &Value::Date(100)));
        assert!(r.apply(CmpOp::Lt, &Value::Date(200)));
        assert!(r.contains_value(&Value::Date(150)));
        assert!(!r.contains_value(&Value::Date(200)));
    }
}
