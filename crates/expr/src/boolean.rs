//! Boolean (predicate) expressions with SQL three-valued logic, and CNF
//! conversion.

use crate::colref::ColRef;
use crate::like::like_match;
use crate::scalar::ScalarExpr;
use mv_catalog::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators. The paper's range predicates use `<, <=, =, >=, >`;
/// `<>` exists in SQL but is classified as residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Eq,
    Ge,
    Gt,
    Ne,
}

impl CmpOp {
    /// The operator with the operand sides swapped: `a op b` ≡ `b op' a`.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// Logical negation: `NOT (a op b)` ≡ `a op' b` (two-valued; NULL
    /// handling is done by the caller since `NOT unknown = unknown`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Apply to an ordering.
    pub fn evaluate(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }

    /// SQL token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Ne => "<>",
        }
    }
}

/// A boolean expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Conjunction. Empty = TRUE.
    And(Vec<BoolExpr>),
    /// Disjunction. Empty = FALSE.
    Or(Vec<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Comparison between two scalar expressions.
    Compare {
        op: CmpOp,
        left: ScalarExpr,
        right: ScalarExpr,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        expr: ScalarExpr,
        pattern: String,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: ScalarExpr, negated: bool },
    /// Constant TRUE/FALSE.
    Literal(bool),
}

impl BoolExpr {
    /// Build `left op right`.
    pub fn cmp(left: ScalarExpr, op: CmpOp, right: ScalarExpr) -> Self {
        BoolExpr::Compare { op, left, right }
    }

    /// Build a column-equality predicate.
    pub fn col_eq(a: ColRef, b: ColRef) -> Self {
        BoolExpr::cmp(ScalarExpr::Column(a), CmpOp::Eq, ScalarExpr::Column(b))
    }

    /// Conjunction of possibly-empty parts (flattens nested ANDs).
    pub fn and(parts: Vec<BoolExpr>) -> Self {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                BoolExpr::And(inner) => flat.extend(inner),
                BoolExpr::Literal(true) => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => BoolExpr::Literal(true),
            1 => flat.pop().unwrap(),
            _ => BoolExpr::And(flat),
        }
    }

    /// Disjunction of parts (flattens nested ORs).
    pub fn or(parts: Vec<BoolExpr>) -> Self {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                BoolExpr::Or(inner) => flat.extend(inner),
                BoolExpr::Literal(false) => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => BoolExpr::Literal(false),
            1 => flat.pop().unwrap(),
            _ => BoolExpr::Or(flat),
        }
    }

    /// All column references, left-to-right with duplicates.
    pub fn columns(&self) -> Vec<ColRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    /// Append column references into `out`.
    pub fn collect_columns(&self, out: &mut Vec<ColRef>) {
        match self {
            BoolExpr::And(v) | BoolExpr::Or(v) => {
                for p in v {
                    p.collect_columns(out);
                }
            }
            BoolExpr::Not(p) => p.collect_columns(out),
            BoolExpr::Compare { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            BoolExpr::Like { expr, .. } | BoolExpr::IsNull { expr, .. } => {
                expr.collect_columns(out)
            }
            BoolExpr::Literal(_) => {}
        }
    }

    /// Rewrite every column reference through `f`.
    pub fn map_columns(&self, f: &mut impl FnMut(ColRef) -> ColRef) -> BoolExpr {
        self.try_map_columns(&mut |c| Some(f(c)))
            .expect("infallible mapping")
    }

    /// Rewrite column references through a fallible mapping.
    pub fn try_map_columns(
        &self,
        f: &mut impl FnMut(ColRef) -> Option<ColRef>,
    ) -> Option<BoolExpr> {
        Some(match self {
            BoolExpr::And(v) => BoolExpr::And(
                v.iter()
                    .map(|p| p.try_map_columns(f))
                    .collect::<Option<Vec<_>>>()?,
            ),
            BoolExpr::Or(v) => BoolExpr::Or(
                v.iter()
                    .map(|p| p.try_map_columns(f))
                    .collect::<Option<Vec<_>>>()?,
            ),
            BoolExpr::Not(p) => BoolExpr::Not(Box::new(p.try_map_columns(f)?)),
            BoolExpr::Compare { op, left, right } => BoolExpr::Compare {
                op: *op,
                left: left.try_map_columns(f)?,
                right: right.try_map_columns(f)?,
            },
            BoolExpr::Like {
                expr,
                pattern,
                negated,
            } => BoolExpr::Like {
                expr: expr.try_map_columns(f)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            BoolExpr::IsNull { expr, negated } => BoolExpr::IsNull {
                expr: expr.try_map_columns(f)?,
                negated: *negated,
            },
            BoolExpr::Literal(b) => BoolExpr::Literal(*b),
        })
    }

    /// SQL three-valued evaluation: `Some(true)`, `Some(false)` or `None`
    /// (unknown). A WHERE clause keeps a row iff the result is
    /// `Some(true)`.
    pub fn eval(&self, row: &impl Fn(ColRef) -> Value) -> Option<bool> {
        match self {
            BoolExpr::Literal(b) => Some(*b),
            BoolExpr::And(parts) => {
                let mut unknown = false;
                for p in parts {
                    match p.eval(row) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            BoolExpr::Or(parts) => {
                let mut unknown = false;
                for p in parts {
                    match p.eval(row) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            BoolExpr::Not(p) => p.eval(row).map(|b| !b),
            BoolExpr::Compare { op, left, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                l.sql_cmp(&r).map(|ord| op.evaluate(ord))
            }
            BoolExpr::Like {
                expr,
                pattern,
                negated,
            } => match expr.eval(row) {
                Value::Null => None,
                Value::Str(s) => Some(like_match(&s, pattern) != *negated),
                // LIKE over a non-string is a type error; treat as unknown.
                _ => None,
            },
            BoolExpr::IsNull { expr, negated } => {
                // IS NULL is two-valued even over NULL inputs.
                Some(expr.eval(row).is_null() != *negated)
            }
        }
    }

    /// Negation-normal form: push `NOT` down to the leaves.
    #[allow(clippy::wrong_self_convention)]
    fn to_nnf(self, negate: bool) -> BoolExpr {
        match self {
            BoolExpr::Not(inner) => inner.to_nnf(!negate),
            BoolExpr::And(parts) => {
                let parts = parts.into_iter().map(|p| p.to_nnf(negate)).collect();
                if negate {
                    BoolExpr::or(parts)
                } else {
                    BoolExpr::and(parts)
                }
            }
            BoolExpr::Or(parts) => {
                let parts = parts.into_iter().map(|p| p.to_nnf(negate)).collect();
                if negate {
                    BoolExpr::and(parts)
                } else {
                    BoolExpr::or(parts)
                }
            }
            BoolExpr::Compare { op, left, right } => {
                // NOTE: `NOT (a < b)` is rewritten to `a >= b`. Under SQL
                // three-valued logic both evaluate to unknown when either
                // side is NULL, so the rewrite is exact.
                let op = if negate { op.negated() } else { op };
                BoolExpr::Compare { op, left, right }
            }
            BoolExpr::Like {
                expr,
                pattern,
                negated,
            } => BoolExpr::Like {
                expr,
                pattern,
                negated: negated != negate,
            },
            BoolExpr::IsNull { expr, negated } => BoolExpr::IsNull {
                expr,
                negated: negated != negate,
            },
            BoolExpr::Literal(b) => BoolExpr::Literal(b != negate),
        }
    }

    /// Convert to conjunctive normal form and return the conjuncts.
    ///
    /// The distribution step can blow up exponentially in theory; the SQL
    /// subset the paper considers (and our generator produces) keeps
    /// predicates small, matching the paper's assumption that predicates
    /// "have been converted into conjunctive normal form".
    pub fn to_cnf(self) -> Vec<BoolExpr> {
        let nnf = self.to_nnf(false);
        let cnf = distribute(nnf);
        match cnf {
            BoolExpr::And(parts) => parts,
            BoolExpr::Literal(true) => Vec::new(),
            other => vec![other],
        }
    }
}

/// Distribute OR over AND, bottom-up.
fn distribute(e: BoolExpr) -> BoolExpr {
    match e {
        BoolExpr::And(parts) => BoolExpr::and(parts.into_iter().map(distribute).collect()),
        BoolExpr::Or(parts) => {
            let parts: Vec<BoolExpr> = parts.into_iter().map(distribute).collect();
            // Fold pairwise: or(A, B) where A, B are in CNF.
            parts.into_iter().fold(BoolExpr::Literal(false), or_of_cnfs)
        }
        other => other,
    }
}

/// OR of two CNF expressions, re-normalized to CNF.
fn or_of_cnfs(a: BoolExpr, b: BoolExpr) -> BoolExpr {
    match (a, b) {
        (BoolExpr::Literal(false), x) | (x, BoolExpr::Literal(false)) => x,
        (BoolExpr::Literal(true), _) | (_, BoolExpr::Literal(true)) => BoolExpr::Literal(true),
        (BoolExpr::And(parts), other) | (other, BoolExpr::And(parts)) => BoolExpr::and(
            parts
                .into_iter()
                .map(|p| or_of_cnfs(p, other.clone()))
                .collect(),
        ),
        (x, y) => BoolExpr::or(vec![x, y]),
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Not(p) => write!(f, "NOT {p}"),
            BoolExpr::Compare { op, left, right } => {
                write!(f, "{left} {} {right}", op.symbol())
            }
            BoolExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE '{pattern}'",
                if *negated { "NOT " } else { "" }
            ),
            BoolExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            BoolExpr::Literal(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr as S;

    fn c(i: u32) -> ColRef {
        ColRef::new(0, i)
    }

    fn row_int(vals: &[i64]) -> impl Fn(ColRef) -> Value + '_ {
        move |cr: ColRef| Value::Int(vals[cr.col.0 as usize])
    }

    #[test]
    fn three_valued_and_or() {
        let null_row = |_: ColRef| Value::Null;
        let unknown = BoolExpr::cmp(S::col(c(0)), CmpOp::Lt, S::lit(5i64));
        assert_eq!(unknown.eval(&null_row), None);
        // FALSE AND unknown = FALSE.
        let e = BoolExpr::and(vec![BoolExpr::Literal(false), unknown.clone()]);
        assert_eq!(e.eval(&null_row), Some(false));
        // TRUE AND unknown = unknown.
        let e = BoolExpr::And(vec![BoolExpr::Literal(true), unknown.clone()]);
        assert_eq!(e.eval(&null_row), None);
        // TRUE OR unknown = TRUE.
        let e = BoolExpr::Or(vec![BoolExpr::Literal(true), unknown.clone()]);
        assert_eq!(e.eval(&null_row), Some(true));
        // NOT unknown = unknown.
        let e = BoolExpr::Not(Box::new(unknown));
        assert_eq!(e.eval(&null_row), None);
    }

    #[test]
    fn comparisons() {
        let r = row_int(&[10, 20]);
        assert_eq!(
            BoolExpr::cmp(S::col(c(0)), CmpOp::Lt, S::col(c(1))).eval(&r),
            Some(true)
        );
        assert_eq!(
            BoolExpr::cmp(S::col(c(0)), CmpOp::Eq, S::lit(10i64)).eval(&r),
            Some(true)
        );
        assert_eq!(
            BoolExpr::cmp(S::col(c(0)), CmpOp::Ne, S::lit(10i64)).eval(&r),
            Some(false)
        );
    }

    #[test]
    fn like_and_is_null() {
        let r = |cr: ColRef| {
            if cr.col.0 == 0 {
                Value::Str("nickel steel wire".into())
            } else {
                Value::Null
            }
        };
        let e = BoolExpr::Like {
            expr: S::col(c(0)),
            pattern: "%steel%".into(),
            negated: false,
        };
        assert_eq!(e.eval(&r), Some(true));
        let e = BoolExpr::Like {
            expr: S::col(c(1)),
            pattern: "%steel%".into(),
            negated: false,
        };
        assert_eq!(e.eval(&r), None);
        let e = BoolExpr::IsNull {
            expr: S::col(c(1)),
            negated: false,
        };
        assert_eq!(e.eval(&r), Some(true));
        let e = BoolExpr::IsNull {
            expr: S::col(c(0)),
            negated: true,
        };
        assert_eq!(e.eval(&r), Some(true));
    }

    #[test]
    fn cnf_of_conjunction_is_identity() {
        let e = BoolExpr::and(vec![
            BoolExpr::col_eq(c(0), c(1)),
            BoolExpr::cmp(S::col(c(2)), CmpOp::Gt, S::lit(5i64)),
        ]);
        let cnf = e.to_cnf();
        assert_eq!(cnf.len(), 2);
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        // (a AND b) OR c  =>  (a OR c) AND (b OR c)
        let a = BoolExpr::cmp(S::col(c(0)), CmpOp::Eq, S::lit(1i64));
        let b = BoolExpr::cmp(S::col(c(1)), CmpOp::Eq, S::lit(2i64));
        let cc = BoolExpr::cmp(S::col(c(2)), CmpOp::Eq, S::lit(3i64));
        let e = BoolExpr::or(vec![BoolExpr::and(vec![a, b]), cc]);
        let cnf = e.clone().to_cnf();
        assert_eq!(cnf.len(), 2);
        for conj in &cnf {
            assert!(matches!(conj, BoolExpr::Or(v) if v.len() == 2));
        }
        // Semantics preserved on all 8 assignments.
        for bits in 0..8i64 {
            let vals = [bits & 1, ((bits >> 1) & 1) + 1, ((bits >> 2) & 1) + 2];
            let r = row_int(&vals);
            let orig = e.eval(&r);
            let as_cnf = BoolExpr::and(cnf.clone()).eval(&r);
            assert_eq!(orig, as_cnf, "bits={bits}");
        }
    }

    #[test]
    fn nnf_pushes_not_through_demorgan() {
        let a = BoolExpr::cmp(S::col(c(0)), CmpOp::Lt, S::lit(5i64));
        let b = BoolExpr::cmp(S::col(c(1)), CmpOp::Eq, S::lit(7i64));
        let e = BoolExpr::Not(Box::new(BoolExpr::and(vec![a, b])));
        let cnf = e.clone().to_cnf();
        // NOT(a AND b) = (NOT a) OR (NOT b) — a single OR clause.
        assert_eq!(cnf.len(), 1);
        let clause = &cnf[0];
        match clause {
            BoolExpr::Or(parts) => {
                assert!(parts.iter().all(|p| matches!(p, BoolExpr::Compare { .. })));
            }
            other => panic!("expected OR, got {other}"),
        }
        for vals in [[4, 7], [5, 7], [4, 0], [9, 9]] {
            let r = row_int(&vals);
            assert_eq!(e.eval(&r), BoolExpr::and(cnf.clone()).eval(&r));
        }
    }

    #[test]
    fn not_like_normalizes() {
        let e = BoolExpr::Not(Box::new(BoolExpr::Like {
            expr: S::col(c(0)),
            pattern: "x%".into(),
            negated: false,
        }));
        let cnf = e.to_cnf();
        assert_eq!(
            cnf,
            vec![BoolExpr::Like {
                expr: S::col(c(0)),
                pattern: "x%".into(),
                negated: true,
            }]
        );
    }

    #[test]
    fn double_negation() {
        let a = BoolExpr::cmp(S::col(c(0)), CmpOp::Lt, S::lit(5i64));
        let e = BoolExpr::Not(Box::new(BoolExpr::Not(Box::new(a.clone()))));
        assert_eq!(e.to_cnf(), vec![a]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = BoolExpr::and(vec![
            BoolExpr::col_eq(c(0), c(1)),
            BoolExpr::Like {
                expr: S::col(c(2)),
                pattern: "%x%".into(),
                negated: true,
            },
        ]);
        assert_eq!(e.to_string(), "(t0.c0 = t0.c1 AND t0.c2 NOT LIKE '%x%')");
    }
}
