//! Scalar (value-producing) expressions.

use crate::colref::ColRef;
use mv_catalog::{ColumnType, Value};
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Whether operand order is irrelevant. Used by the light
    /// canonicalization that makes `A+B` match `B+A` (the paper's example of
    /// the simplest useful matching function beyond pure syntax).
    pub fn commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul)
    }

    /// SQL token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// A scalar expression tree over column references and literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    /// A column reference.
    Column(ColRef),
    /// A literal constant.
    Literal(Value),
    /// Binary arithmetic.
    Binary {
        op: BinOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(c: ColRef) -> Self {
        ScalarExpr::Column(c)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Literal(v.into())
    }

    /// Build `self op other`.
    pub fn binary(self, op: BinOp, other: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// All column references in the expression, left-to-right, duplicates
    /// preserved (the order matters for [`crate::Template`] matching).
    pub fn columns(&self) -> Vec<ColRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    /// Append column references into `out` (allocation-friendly form).
    pub fn collect_columns(&self, out: &mut Vec<ColRef>) {
        match self {
            ScalarExpr::Column(c) => out.push(*c),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }

    /// True iff the expression is a bare column reference.
    pub fn as_column(&self) -> Option<ColRef> {
        match self {
            ScalarExpr::Column(c) => Some(*c),
            _ => None,
        }
    }

    /// True iff the expression references no columns.
    pub fn is_constant(&self) -> bool {
        match self {
            ScalarExpr::Column(_) => false,
            ScalarExpr::Literal(_) => true,
            ScalarExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
        }
    }

    /// Rewrite every column reference through `f` (used to reroute
    /// references to equivalent columns, and to remap view occurrences onto
    /// query occurrences).
    pub fn map_columns(&self, f: &mut impl FnMut(ColRef) -> ColRef) -> ScalarExpr {
        match self {
            ScalarExpr::Column(c) => ScalarExpr::Column(f(*c)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
        }
    }

    /// Rewrite column references through a fallible mapping; fails if any
    /// reference cannot be mapped. This is how compensating expressions are
    /// rerouted to view output columns in section 3.1.3: "all columns
    /// referenced in compensating predicates \[must\] be mapped to (simple)
    /// output columns of the view".
    pub fn try_map_columns(
        &self,
        f: &mut impl FnMut(ColRef) -> Option<ColRef>,
    ) -> Option<ScalarExpr> {
        match self {
            ScalarExpr::Column(c) => f(*c).map(ScalarExpr::Column),
            ScalarExpr::Literal(v) => Some(ScalarExpr::Literal(v.clone())),
            ScalarExpr::Binary { op, left, right } => Some(ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.try_map_columns(f)?),
                right: Box::new(right.try_map_columns(f)?),
            }),
        }
    }

    /// Evaluate against a row, where `row` supplies the value of each column
    /// reference. SQL semantics: any NULL operand yields NULL; division by
    /// zero yields NULL (SQL would error; NULL keeps the executor total).
    pub fn eval(&self, row: &impl Fn(ColRef) -> Value) -> Value {
        match self {
            ScalarExpr::Column(c) => row(*c),
            ScalarExpr::Literal(v) => v.clone(),
            ScalarExpr::Binary { op, left, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                eval_binop(*op, &l, &r)
            }
        }
    }

    /// Static type of the expression, given the type of each column.
    /// Arithmetic over two `Int`s is `Int` (except division, which is
    /// `Float`); anything involving a `Float` is `Float`. Non-numeric
    /// arithmetic has no type (`None`).
    pub fn infer_type(&self, col_type: &impl Fn(ColRef) -> ColumnType) -> Option<ColumnType> {
        match self {
            ScalarExpr::Column(c) => Some(col_type(*c)),
            ScalarExpr::Literal(v) => v.column_type(),
            ScalarExpr::Binary { op, left, right } => {
                let l = left.infer_type(col_type)?;
                let r = right.infer_type(col_type)?;
                if !l.is_numeric() || !r.is_numeric() {
                    return None;
                }
                if *op == BinOp::Div || l == ColumnType::Float || r == ColumnType::Float {
                    Some(ColumnType::Float)
                } else {
                    Some(ColumnType::Int)
                }
            }
        }
    }
}

/// Evaluate a single arithmetic operation with SQL NULL propagation.
pub fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    match (l, r) {
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
        },
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
            },
            _ => Value::Null,
        },
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, left, right } => {
                write!(f, "({} {} {})", left, op.symbol(), right)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colref::ColRef;

    fn c(i: u32) -> ColRef {
        ColRef::new(0, i)
    }

    #[test]
    fn columns_in_order_with_duplicates() {
        // c0 * c1 + c0
        let e = ScalarExpr::col(c(0))
            .binary(BinOp::Mul, ScalarExpr::col(c(1)))
            .binary(BinOp::Add, ScalarExpr::col(c(0)));
        assert_eq!(e.columns(), vec![c(0), c(1), c(0)]);
        assert!(!e.is_constant());
        assert!(e.as_column().is_none());
        assert_eq!(ScalarExpr::col(c(3)).as_column(), Some(c(3)));
    }

    #[test]
    fn eval_arithmetic_and_null_propagation() {
        let row = |cr: ColRef| match cr.col.0 {
            0 => Value::Int(6),
            1 => Value::Float(2.5),
            _ => Value::Null,
        };
        let e = ScalarExpr::col(c(0)).binary(BinOp::Mul, ScalarExpr::col(c(1)));
        assert_eq!(e.eval(&row), Value::Float(15.0));
        let e = ScalarExpr::col(c(0)).binary(BinOp::Add, ScalarExpr::col(c(9)));
        assert_eq!(e.eval(&row), Value::Null);
        // Integer division produces float; division by zero is NULL.
        let e = ScalarExpr::lit(7i64).binary(BinOp::Div, ScalarExpr::lit(2i64));
        assert_eq!(e.eval(&row), Value::Float(3.5));
        let e = ScalarExpr::lit(7i64).binary(BinOp::Div, ScalarExpr::lit(0i64));
        assert_eq!(e.eval(&row), Value::Null);
    }

    #[test]
    fn try_map_columns_fails_on_unmappable() {
        let e = ScalarExpr::col(c(0)).binary(BinOp::Add, ScalarExpr::col(c(1)));
        let mapped = e.try_map_columns(&mut |cr| {
            if cr.col.0 == 0 {
                Some(ColRef::new(9, 9))
            } else {
                None
            }
        });
        assert!(mapped.is_none());
        let mapped = e.try_map_columns(&mut |_| Some(ColRef::new(9, 9))).unwrap();
        assert_eq!(mapped.columns(), vec![ColRef::new(9, 9), ColRef::new(9, 9)]);
    }

    #[test]
    fn type_inference() {
        let ty = |cr: ColRef| match cr.col.0 {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            _ => ColumnType::Str,
        };
        let e = ScalarExpr::col(c(0)).binary(BinOp::Add, ScalarExpr::col(c(0)));
        assert_eq!(e.infer_type(&ty), Some(ColumnType::Int));
        let e = ScalarExpr::col(c(0)).binary(BinOp::Mul, ScalarExpr::col(c(1)));
        assert_eq!(e.infer_type(&ty), Some(ColumnType::Float));
        let e = ScalarExpr::col(c(0)).binary(BinOp::Div, ScalarExpr::col(c(0)));
        assert_eq!(e.infer_type(&ty), Some(ColumnType::Float));
        let e = ScalarExpr::col(c(2)).binary(BinOp::Add, ScalarExpr::col(c(0)));
        assert_eq!(e.infer_type(&ty), None);
    }

    #[test]
    fn display_renders_sqlish() {
        let e = ScalarExpr::col(c(0)).binary(BinOp::Mul, ScalarExpr::lit(3i64));
        assert_eq!(e.to_string(), "(t0.c0 * 3)");
    }
}
