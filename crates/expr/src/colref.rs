//! Occurrence-qualified column references.
//!
//! The paper writes column references as `Ti.Cp` where the `Ti` are table
//! *occurrences* in the `FROM` list — the same base table may appear more
//! than once (a self-join). We therefore address columns by a pair of a
//! table occurrence id (position in the expression's `FROM` list) and the
//! column id within the underlying base table.

use mv_catalog::ColumnId;
use std::fmt;

/// A table occurrence inside one SPJG expression: the index of the table in
/// the expression's `FROM` list. Two occurrences of the same base table get
/// distinct `OccId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OccId(pub u32);

impl fmt::Display for OccId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A reference to one column of one table occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Which table occurrence.
    pub occ: OccId,
    /// Which column of the underlying base table.
    pub col: ColumnId,
}

impl ColRef {
    /// Construct from raw indices; convenience for tests and generators.
    pub fn new(occ: u32, col: u32) -> Self {
        ColRef {
            occ: OccId(occ),
            col: ColumnId(col),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.occ, self.col.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_and_ordering() {
        let a = ColRef::new(0, 1);
        let b = ColRef::new(0, 1);
        let c = ColRef::new(1, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
        let set: HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(ColRef::new(2, 3).to_string(), "t2.c3");
    }
}
