//! Scalar expressions, predicates, and the predicate machinery of the
//! view-matching algorithm.
//!
//! Section 3.1 of Goldstein & Larson assumes "that the selection predicates
//! of view and query expressions have been converted into conjunctive normal
//! form (CNF)" and then divides the conjuncts of a `WHERE` clause `W` into
//! three components:
//!
//! * `PE` — column-equality predicates `Ti.Cp = Tj.Cq` ([`Conjunct::ColumnEq`]),
//! * `PR` — range predicates `Ti.Cp op constant` ([`Conjunct::Range`]),
//! * `PU` — everything else, the *residual* predicates ([`Conjunct::Residual`]).
//!
//! This crate provides:
//!
//! * [`ColRef`]/[`OccId`] — occurrence-qualified column references, so that
//!   self-joins are representable,
//! * [`ScalarExpr`] and [`BoolExpr`] — scalar and boolean expression trees
//!   with SQL three-valued evaluation,
//! * CNF conversion ([`BoolExpr::to_cnf`]) and conjunct classification
//!   ([`classify`]),
//! * [`Interval`] — ranges with open/closed/unbounded endpoints, supporting
//!   the containment reasoning of the range subsumption test,
//! * [`EquivClasses`] — the union-find over column-equality predicates from
//!   section 3.1.1,
//! * [`Template`] — the paper's shallow expression representation: "a text
//!   string and a list of column references" (section 3.1.2, residual
//!   subsumption test).

pub mod boolean;
pub mod colref;
pub mod conjunct;
pub mod equiv;
pub mod interval;
pub mod like;
pub mod scalar;
pub mod template;

pub use boolean::{BoolExpr, CmpOp};
pub use colref::{ColRef, OccId};
pub use conjunct::{classify, conjuncts_to_bool, Conjunct};
pub use equiv::{ClassIndex, EquivClasses};
pub use interval::{Bound, Interval};
pub use scalar::{BinOp, ScalarExpr};
pub use template::Template;
