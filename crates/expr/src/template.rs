//! Shallow expression templates for residual-predicate and output-expression
//! matching.
//!
//! Section 3.1.2 (residual subsumption test): "An expression is represented
//! by a text string and a list of column references. The text string
//! contains the textual version of the expression with column references
//! omitted. The list contains every column reference in the expression, in
//! the order they would occur in the textual version of the expression. To
//! compare two expressions, we first compare the strings. If they are equal,
//! we scan through the two lists comparing column references in the same
//! positions ... If both column references are contained in the same (query)
//! equivalence class, the column references match."
//!
//! We add the light canonicalization the paper suggests as the first level
//! beyond pure syntax: operand order of commutative operators (`+`, `*`,
//! `=`, `<>`, `OR`, `AND`) is normalized, and `>`/`>=` comparisons are
//! flipped to `<`/`<=`, so that `A > B` matches `B < A` and `A + B` matches
//! `B + A`. Deeper algebraic reasoning (the paper's `(A/2 + B/5)*10 = A*5 +
//! B*2` example) is deliberately out of scope, exactly as in the prototype.

use crate::boolean::{BoolExpr, CmpOp};
use crate::colref::ColRef;
use crate::scalar::ScalarExpr;
use std::fmt;

/// A rendered expression: canonical text with `?` placeholders plus the
/// column references in placeholder order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Template {
    /// Canonical text with column references replaced by `?`.
    pub text: String,
    /// Column references, in placeholder order.
    pub cols: Vec<ColRef>,
}

impl Template {
    /// Render a scalar expression.
    pub fn of_scalar(e: &ScalarExpr) -> Template {
        let mut cols = Vec::new();
        let text = render_scalar(e, &mut cols);
        Template { text, cols }
    }

    /// Render a boolean predicate.
    pub fn of_bool(e: &BoolExpr) -> Template {
        let mut cols = Vec::new();
        let text = render_bool(e, &mut cols);
        Template { text, cols }
    }

    /// Does `self` (from the view) match `other` (from the query) given a
    /// column-compatibility relation (normally: membership in the same query
    /// equivalence class)?
    pub fn matches(&self, other: &Template, same: &impl Fn(ColRef, ColRef) -> bool) -> bool {
        self.text == other.text
            && self.cols.len() == other.cols.len()
            && self.cols.iter().zip(&other.cols).all(|(a, b)| same(*a, *b))
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / [", self.text)?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Render a scalar expression, appending its columns to `cols`.
fn render_scalar(e: &ScalarExpr, cols: &mut Vec<ColRef>) -> String {
    match e {
        ScalarExpr::Column(c) => {
            cols.push(*c);
            "?".to_string()
        }
        ScalarExpr::Literal(v) => v.to_string(),
        ScalarExpr::Binary { op, left, right } => {
            let mut lcols = Vec::new();
            let mut rcols = Vec::new();
            let lt = render_scalar(left, &mut lcols);
            let rt = render_scalar(right, &mut rcols);
            let ((lt, lcols), (rt, rcols)) = if op.commutative() && rt < lt {
                ((rt, rcols), (lt, lcols))
            } else {
                ((lt, lcols), (rt, rcols))
            };
            cols.extend(lcols);
            cols.extend(rcols);
            format!("({lt} {} {rt})", op.symbol())
        }
    }
}

/// Render a boolean expression, appending its columns to `cols`.
fn render_bool(e: &BoolExpr, cols: &mut Vec<ColRef>) -> String {
    match e {
        BoolExpr::And(parts) | BoolExpr::Or(parts) => {
            let sep = if matches!(e, BoolExpr::And(_)) {
                " AND "
            } else {
                " OR "
            };
            let mut rendered: Vec<(String, Vec<ColRef>)> = parts
                .iter()
                .map(|p| {
                    let mut pc = Vec::new();
                    let pt = render_bool(p, &mut pc);
                    (pt, pc)
                })
                .collect();
            // AND/OR are commutative and associative; sort clauses by text.
            rendered.sort_by(|a, b| a.0.cmp(&b.0));
            let mut out = String::from("(");
            for (i, (t, cc)) in rendered.into_iter().enumerate() {
                if i > 0 {
                    out.push_str(sep);
                }
                out.push_str(&t);
                cols.extend(cc);
            }
            out.push(')');
            out
        }
        BoolExpr::Not(p) => {
            let inner = render_bool(p, cols);
            format!("NOT {inner}")
        }
        BoolExpr::Compare { op, left, right } => {
            // Flip > and >= so that `A > B` and `B < A` render identically.
            let (op, left, right) = match op {
                CmpOp::Gt => (CmpOp::Lt, right, left),
                CmpOp::Ge => (CmpOp::Le, right, left),
                other => (*other, left, right),
            };
            let mut lcols = Vec::new();
            let mut rcols = Vec::new();
            let lt = render_scalar(left, &mut lcols);
            let rt = render_scalar(right, &mut rcols);
            let commutative = matches!(op, CmpOp::Eq | CmpOp::Ne);
            let ((lt, lcols), (rt, rcols)) = if commutative && rt < lt {
                ((rt, rcols), (lt, lcols))
            } else {
                ((lt, lcols), (rt, rcols))
            };
            cols.extend(lcols);
            cols.extend(rcols);
            format!("{lt} {} {rt}", op.symbol())
        }
        BoolExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let t = render_scalar(expr, cols);
            format!("{t} {}LIKE '{pattern}'", if *negated { "NOT " } else { "" })
        }
        BoolExpr::IsNull { expr, negated } => {
            let t = render_scalar(expr, cols);
            format!("{t} IS {}NULL", if *negated { "NOT " } else { "" })
        }
        BoolExpr::Literal(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{BinOp, ScalarExpr as S};

    fn c(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn columns_factored_out() {
        let e = S::col(c(0, 1)).binary(BinOp::Mul, S::col(c(0, 2)));
        let t = Template::of_scalar(&e);
        assert_eq!(t.text, "(? * ?)");
        assert_eq!(t.cols, vec![c(0, 1), c(0, 2)]);
    }

    #[test]
    fn commutative_addition_canonicalizes() {
        // A + 5 and 5 + A render identically with the same column position.
        let a_plus_5 = S::col(c(0, 0)).binary(BinOp::Add, S::lit(5i64));
        let five_plus_a = S::lit(5i64).binary(BinOp::Add, S::col(c(0, 0)));
        let t1 = Template::of_scalar(&a_plus_5);
        let t2 = Template::of_scalar(&five_plus_a);
        assert_eq!(t1, t2);
        // Subtraction is NOT commutative.
        let a_minus_5 = S::col(c(0, 0)).binary(BinOp::Sub, S::lit(5i64));
        let five_minus_a = S::lit(5i64).binary(BinOp::Sub, S::col(c(0, 0)));
        assert_ne!(
            Template::of_scalar(&a_minus_5).text,
            Template::of_scalar(&five_minus_a).text
        );
    }

    #[test]
    fn flipped_comparison_matches() {
        // The paper's motivating mismatch: (A > B) vs (B < A). Our light
        // canonicalization makes them identical.
        let a_gt_b = BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Gt, S::col(c(0, 1)));
        let b_lt_a = BoolExpr::cmp(S::col(c(0, 1)), CmpOp::Lt, S::col(c(0, 0)));
        let t1 = Template::of_bool(&a_gt_b);
        let t2 = Template::of_bool(&b_lt_a);
        assert_eq!(t1.text, t2.text);
        assert_eq!(t1.cols, t2.cols);
    }

    #[test]
    fn deeper_algebra_not_recognized() {
        // (A/2 + B/5)*10 vs A*5 + B*2 — the paper's example of what a more
        // sophisticated matcher could do; ours (like the prototype) doesn't.
        let lhs = S::col(c(0, 0))
            .binary(BinOp::Div, S::lit(2i64))
            .binary(BinOp::Add, S::col(c(0, 1)).binary(BinOp::Div, S::lit(5i64)))
            .binary(BinOp::Mul, S::lit(10i64));
        let rhs = S::col(c(0, 0))
            .binary(BinOp::Mul, S::lit(5i64))
            .binary(BinOp::Add, S::col(c(0, 1)).binary(BinOp::Mul, S::lit(2i64)));
        assert_ne!(
            Template::of_scalar(&lhs).text,
            Template::of_scalar(&rhs).text
        );
    }

    #[test]
    fn matching_through_equivalence() {
        // View residual: l_quantity * l_extendedprice > 100 where view
        // references occurrence 1; query references occurrence 0, columns
        // equivalent pairwise.
        let view = BoolExpr::cmp(
            S::col(c(1, 4)).binary(BinOp::Mul, S::col(c(1, 5))),
            CmpOp::Gt,
            S::lit(100i64),
        );
        let query = BoolExpr::cmp(
            S::col(c(0, 4)).binary(BinOp::Mul, S::col(c(0, 5))),
            CmpOp::Gt,
            S::lit(100i64),
        );
        let tv = Template::of_bool(&view);
        let tq = Template::of_bool(&query);
        let same = |a: ColRef, b: ColRef| a.col == b.col; // occurrences equivalent
        assert!(tv.matches(&tq, &same));
        let never = |_: ColRef, _: ColRef| false;
        assert!(!tv.matches(&tq, &never));
    }

    #[test]
    fn literal_values_distinguish_templates() {
        let p100 = BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Gt, S::lit(100i64));
        let p200 = BoolExpr::cmp(S::col(c(0, 0)), CmpOp::Gt, S::lit(200i64));
        assert_ne!(Template::of_bool(&p100).text, Template::of_bool(&p200).text);
    }

    #[test]
    fn and_clause_order_canonicalizes() {
        let a = BoolExpr::Like {
            expr: S::col(c(0, 0)),
            pattern: "a%".into(),
            negated: false,
        };
        let b = BoolExpr::Like {
            expr: S::col(c(0, 1)),
            pattern: "b%".into(),
            negated: false,
        };
        let t1 = Template::of_bool(&BoolExpr::Or(vec![a.clone(), b.clone()]));
        let t2 = Template::of_bool(&BoolExpr::Or(vec![b, a]));
        assert_eq!(t1.text, t2.text);
        assert_eq!(t1.cols, t2.cols);
    }
}
