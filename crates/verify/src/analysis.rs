//! The analyzer's own predicate analysis, re-derived from raw conjuncts.
//!
//! This deliberately duplicates (in much simpler form) what
//! `mv-core`'s `ExprSummary` computes: the point of the analyzer is to be
//! an *independent* re-derivation of the paper's conditions, so a bug in
//! the matcher's summary machinery cannot hide from the checker. Only the
//! shared *data types* (`EquivClasses`, `Interval`, `Template`) are reused.

use mv_catalog::{Catalog, TableId};
use mv_expr::{BoolExpr, ColRef, Conjunct, EquivClasses, Interval, Template};
use mv_plan::SpjgExpr;
use std::collections::HashMap;

/// Per-equivalence-class range state: a folded interval, or "poisoned"
/// when an intersection failed (incomparable value types meeting in one
/// class). Rules skip poisoned roots rather than reasoning from a wrong
/// interval.
#[derive(Debug, Clone)]
pub enum RangeState {
    Folded(Interval),
    Poisoned,
}

/// Folded ranges and residual templates of one conjunct list, relative to
/// an externally supplied equivalence relation (usually the query's).
#[derive(Debug, Default)]
pub struct Profile {
    /// Intersection of all foldable range conjuncts, per EC root.
    pub ranges: HashMap<ColRef, RangeState>,
    /// Residual conjuncts plus range conjuncts that would not fold
    /// (`<>`, incomparable constant), as shallow templates with the
    /// originating predicate alongside.
    pub residuals: Vec<(Template, BoolExpr)>,
    /// Column-equality pairs seen in the conjunct list.
    pub equalities: Vec<(ColRef, ColRef)>,
}

impl Profile {
    /// Fold `conjuncts` relative to `ec`.
    pub fn build<'a>(conjuncts: impl IntoIterator<Item = &'a Conjunct>, ec: &EquivClasses) -> Self {
        let mut p = Profile::default();
        for conj in conjuncts {
            match conj {
                Conjunct::ColumnEq(a, b) => p.equalities.push((*a, *b)),
                Conjunct::Range { col, op, value } => {
                    let mut iv = Interval::unconstrained();
                    if iv.apply(*op, value) {
                        p.add_range(ec.find(*col), iv);
                    } else {
                        // Mirrors the summary's demotion: `<>` and
                        // type-incomparable constants become residuals.
                        let b = conj.to_bool();
                        p.residuals.push((Template::of_bool(&b), b));
                    }
                }
                Conjunct::Residual(b) => {
                    p.residuals.push((Template::of_bool(b), b.clone()));
                }
            }
        }
        p
    }

    fn add_range(&mut self, root: ColRef, iv: Interval) {
        let entry = self
            .ranges
            .entry(root)
            .or_insert(RangeState::Folded(Interval::unconstrained()));
        if let RangeState::Folded(cur) = entry {
            match cur.clone().intersect(&iv) {
                Some(merged) => *entry = RangeState::Folded(merged),
                None => *entry = RangeState::Poisoned,
            }
        }
    }

    /// The folded interval at `root`: unconstrained when absent, `None`
    /// when poisoned.
    pub fn range_at(&self, root: ColRef) -> Option<Interval> {
        match self.ranges.get(&root) {
            None => Some(Interval::unconstrained()),
            Some(RangeState::Folded(iv)) => Some(iv.clone()),
            Some(RangeState::Poisoned) => None,
        }
    }
}

/// Equivalence classes from the column-equality conjuncts of several
/// conjunct lists.
pub fn ec_of<'a>(lists: impl IntoIterator<Item = &'a [Conjunct]>) -> EquivClasses {
    let mut ec = EquivClasses::new();
    for list in lists {
        for conj in list {
            if let Conjunct::ColumnEq(a, b) = conj {
                ec.union(*a, *b);
            }
        }
    }
    ec
}

/// Check-constraint conjuncts of `table`, remapped from table space
/// (`occ = 0`) onto occurrence `occ`.
pub fn checks_for_occ(
    checks: &HashMap<TableId, Vec<Conjunct>>,
    table: TableId,
    occ: u32,
) -> Vec<Conjunct> {
    let Some(conjs) = checks.get(&table) else {
        return Vec::new();
    };
    conjs
        .iter()
        .filter_map(|c| c.try_map_columns(&mut |cr| Some(ColRef::new(occ, cr.col.0))))
        .collect()
}

/// All check conjuncts of an expression's occurrences, in that
/// expression's occurrence space.
pub fn checks_of_expr(checks: &HashMap<TableId, Vec<Conjunct>>, expr: &SpjgExpr) -> Vec<Conjunct> {
    let mut out = Vec::new();
    for (occ, table) in expr.occurrences() {
        out.extend(checks_for_occ(checks, table, occ.0));
    }
    out
}

/// Is `c` null-rejecting under the given conjuncts? True when some range
/// constrains a member of `c`'s class, a residual comparison / LIKE /
/// IS NOT NULL references a class member, or the class equates `c` with
/// another column. This is the semantic justification behind the paper's
/// §3.2 requirement that nullable FK columns be safe to join through; it
/// accepts a superset of what the matcher's `is_null_rejecting` accepts.
pub fn null_rejecting(conjuncts: &[Conjunct], ec: &EquivClasses, c: ColRef) -> bool {
    let class = ec.class_of(c);
    if class.len() > 1 {
        return true;
    }
    let in_class = |x: ColRef| class.contains(&x);
    conjuncts.iter().any(|conj| match conj {
        Conjunct::ColumnEq(a, b) => in_class(*a) || in_class(*b),
        Conjunct::Range { col, .. } => in_class(*col),
        Conjunct::Residual(b) => bool_null_rejects(b, &in_class),
    })
}

/// Does predicate `b` reject NULL in any column satisfying `in_class`?
/// Only top-level conjunctive structure is inspected; comparisons, LIKE,
/// and `IS NOT NULL` reject NULL operands under SQL three-valued logic.
fn bool_null_rejects(b: &BoolExpr, in_class: &impl Fn(ColRef) -> bool) -> bool {
    match b {
        BoolExpr::And(parts) => parts.iter().any(|p| bool_null_rejects(p, in_class)),
        BoolExpr::Compare { left, right, .. } => {
            left.columns().into_iter().any(in_class) || right.columns().into_iter().any(in_class)
        }
        BoolExpr::Like { expr, .. } => expr.columns().into_iter().any(in_class),
        BoolExpr::IsNull {
            expr,
            negated: true,
        } => expr.columns().into_iter().any(in_class),
        _ => false,
    }
}

/// Occurrence count of an expression.
pub fn occ_count(expr: &SpjgExpr) -> usize {
    expr.tables.len()
}

/// Does every referenced column of `expr` stay inside the catalog's
/// bounds? Returns the offending references.
pub fn out_of_bounds_columns(catalog: &Catalog, expr: &SpjgExpr) -> Vec<ColRef> {
    let n = expr.tables.len();
    expr.referenced_columns()
        .into_iter()
        .filter(|c| {
            (c.occ.0 as usize) >= n
                || (c.col.0 as usize) >= catalog.table(expr.tables[c.occ.0 as usize]).columns.len()
        })
        .collect()
}
