//! Substitute-level rules: an independent re-derivation of the paper's
//! §3.1.2–§3.3 soundness conditions for one `(query, view, substitute)`
//! triple.
//!
//! The verifier never calls into the matcher. It re-enumerates the
//! view-occurrence → query-occurrence correspondence from table identity,
//! re-derives equivalence classes, folded ranges, and residual templates
//! from the raw conjunct lists, re-runs foreign-key join elimination from
//! the catalog, and then checks that the substitute — view, backjoins,
//! compensating predicates, output list — computes exactly the query.
//!
//! A substitute passes if *some* occurrence correspondence passes every
//! rule; diagnostics reported are those of the best (fewest-errors)
//! correspondence, so a corrupted substitute names the rule it broke
//! rather than drowning in mapping noise.

use crate::analysis::{checks_for_occ, ec_of, null_rejecting, Profile};
use crate::diag::{Diagnostic, RuleId, Severity};
use mv_catalog::{Catalog, ColumnId, TableId};
use mv_expr::{classify, BoolExpr, ColRef, Conjunct, EquivClasses, Interval, ScalarExpr, Template};
use mv_plan::{AggFunc, OutputList, SpjgExpr, Substitute};
use std::collections::{BTreeSet, HashMap};

/// Everything the rules need besides the triple itself: the catalog, and
/// the check constraints declared on base tables (the matcher may rely on
/// them, so the verifier must know them to avoid false alarms).
pub struct VerifyContext<'a> {
    pub catalog: &'a Catalog,
    pub checks: &'a HashMap<TableId, Vec<Conjunct>>,
}

impl<'a> VerifyContext<'a> {
    pub fn new(catalog: &'a Catalog, checks: &'a HashMap<TableId, Vec<Conjunct>>) -> Self {
        VerifyContext { catalog, checks }
    }
}

/// Cap on occurrence correspondences (and backjoin resolutions) tried per
/// substitute. Far above anything real workloads produce.
const MAX_MAPPINGS: usize = 4096;

/// Verify one substitute. Returns all diagnostics of the best occurrence
/// correspondence — empty (or warnings only) means the substitute passed.
pub fn verify_substitute(
    ctx: &VerifyContext,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    view_label: &str,
    query_label: &str,
) -> Vec<Diagnostic> {
    let tag = |mut d: Diagnostic| {
        d.context.view.get_or_insert_with(|| view_label.to_string());
        d.context
            .query
            .get_or_insert_with(|| query_label.to_string());
        d
    };

    // ---- Substitute column space and basic bounds (MV001/MV012/MV014) ----
    let arity = view.output_arity();
    let mut bases = Vec::with_capacity(sub.backjoins.len());
    let mut total = arity;
    for bj in &sub.backjoins {
        bases.push(total);
        total += ctx.catalog.table(bj.table).columns.len();
    }

    let mut diags = Vec::new();
    let mut refs: Vec<ColRef> = Vec::new();
    for p in &sub.predicates {
        refs.extend(p.columns());
    }
    match &sub.output {
        OutputList::Spj(items) => {
            for it in items {
                refs.extend(it.expr.columns());
            }
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            for it in group_by {
                refs.extend(it.expr.columns());
            }
            for a in aggregates {
                if let Some(arg) = a.func.argument() {
                    refs.extend(arg.columns());
                }
            }
        }
    }
    for c in refs {
        if c.occ.0 != 0 {
            diags.push(Diagnostic::error(
                RuleId::SubstituteColumn,
                format!("substitute references {c}; only occurrence 0 (the view) is addressable"),
            ));
        } else if (c.col.0 as usize) >= total {
            diags.push(Diagnostic::error(
                RuleId::ColumnBounds,
                format!(
                    "substitute references output column {} but the view + backjoin \
                     column space has {total} columns",
                    c.col.0
                ),
            ));
        }
    }
    for (i, bj) in sub.backjoins.iter().enumerate() {
        let table = ctx.catalog.table(bj.table);
        for (pos, col) in &bj.key {
            if *pos >= bases[i] {
                diags.push(Diagnostic::error(
                    RuleId::BackjoinKey,
                    format!(
                        "backjoin {i} key position {pos} is not an already-available \
                         substitute column (base {})",
                        bases[i]
                    ),
                ));
            }
            if (col.0 as usize) >= table.columns.len() {
                diags.push(Diagnostic::error(
                    RuleId::ColumnBounds,
                    format!(
                        "backjoin {i} key column c{} is outside table {}",
                        col.0, table.name
                    ),
                ));
            }
        }
        let cols: Vec<ColumnId> = bj.key.iter().map(|(_, c)| *c).collect();
        if !table.covers_key(&cols) {
            diags.push(Diagnostic::error(
                RuleId::BackjoinKey,
                format!(
                    "backjoin {i} key columns {cols:?} do not cover a unique key of {}",
                    table.name
                ),
            ));
        }
        for c in &cols {
            if (c.0 as usize) < table.columns.len() && !table.column(*c).not_null {
                diags.push(Diagnostic::error(
                    RuleId::BackjoinKey,
                    format!(
                        "backjoin {i} joins on nullable column {}.{}; NULL keys drop rows",
                        table.name,
                        table.column(*c).name
                    ),
                ));
            }
        }
    }
    if !diags.is_empty() {
        return diags.into_iter().map(tag).collect();
    }

    // ---- Occurrence correspondences (MV004) ----
    let mappings = enumerate_mappings(query, view);
    if mappings.is_empty() {
        return vec![tag(Diagnostic::error(
            RuleId::TableCorrespondence,
            "no view-occurrence to query-occurrence correspondence exists: the query's \
             tables are not covered by the view's",
        ))];
    }

    let mut best: Option<Vec<Diagnostic>> = None;
    for m in &mappings {
        let d = check_mapping(ctx, query, view, sub, m, arity, &bases);
        let errs = d.iter().filter(|d| d.severity == Severity::Error).count();
        if errs == 0 {
            return d.into_iter().map(tag).collect();
        }
        let better = match &best {
            None => true,
            Some(b) => errs < b.iter().filter(|d| d.severity == Severity::Error).count(),
        };
        if better {
            best = Some(d);
        }
    }
    best.unwrap_or_default().into_iter().map(tag).collect()
}

/// All injective assignments of view occurrences onto query occurrences
/// with matching base tables; unassigned view occurrences are extras.
/// Every query occurrence must be covered.
fn enumerate_mappings(query: &SpjgExpr, view: &SpjgExpr) -> Vec<Vec<Option<u32>>> {
    let nq = query.tables.len();
    let nv = view.tables.len();
    let mut out = Vec::new();
    let mut current: Vec<Option<u32>> = Vec::with_capacity(nv);
    let mut used = vec![false; nq];

    fn rec(
        i: usize,
        nv: usize,
        query: &SpjgExpr,
        view: &SpjgExpr,
        used: &mut Vec<bool>,
        current: &mut Vec<Option<u32>>,
        out: &mut Vec<Vec<Option<u32>>>,
    ) {
        if out.len() >= MAX_MAPPINGS {
            return;
        }
        if i == nv {
            if used.iter().all(|&u| u) {
                out.push(current.clone());
            }
            return;
        }
        for j in 0..query.tables.len() {
            if !used[j] && query.tables[j] == view.tables[i] {
                used[j] = true;
                current.push(Some(j as u32));
                rec(i + 1, nv, query, view, used, current, out);
                current.pop();
                used[j] = false;
            }
        }
        // Leave view occurrence `i` unmapped (an extra).
        current.push(None);
        rec(i + 1, nv, query, view, used, current, out);
        current.pop();
    }

    rec(0, nv, query, view, &mut used, &mut current, &mut out);
    out
}

/// How one substitute column position expands in view-occurrence space
/// (already remapped into query space).
#[derive(Debug, Clone)]
enum Exp {
    /// A base-table column (simple view output or backjoin column).
    Col(ColRef),
    /// A complex scalar view output.
    Expr(ScalarExpr),
    /// The `k`-th aggregate output of an aggregate view.
    Agg(usize),
}

struct Expander {
    /// Scalar view outputs in query space (SPJ outputs, or group-by items).
    scalars: Vec<ScalarExpr>,
    /// Aggregate functions with arguments remapped to query space.
    aggs: Vec<AggFunc>,
    arity: usize,
    bases: Vec<usize>,
    /// Resolved view occurrence (query space) per backjoin.
    bj_occ: Vec<u32>,
}

impl Expander {
    fn expand_pos(&self, p: usize) -> Exp {
        if p < self.arity {
            if p < self.scalars.len() {
                let e = &self.scalars[p];
                match e.as_column() {
                    Some(c) => Exp::Col(c),
                    None => Exp::Expr(e.clone()),
                }
            } else {
                Exp::Agg(p - self.scalars.len())
            }
        } else {
            let mut k = self.bases.len() - 1;
            while self.bases[k] > p {
                k -= 1;
            }
            Exp::Col(ColRef::new(self.bj_occ[k], (p - self.bases[k]) as u32))
        }
    }

    /// Expand a scalar expression over substitute columns into view space;
    /// `Err(k)` when it touches aggregate output `k`.
    fn expand_scalar(&self, e: &ScalarExpr) -> Result<ScalarExpr, usize> {
        match e {
            ScalarExpr::Column(c) => match self.expand_pos(c.col.0 as usize) {
                Exp::Col(cr) => Ok(ScalarExpr::col(cr)),
                Exp::Expr(ex) => Ok(ex),
                Exp::Agg(k) => Err(k),
            },
            ScalarExpr::Literal(_) => Ok(e.clone()),
            ScalarExpr::Binary { op, left, right } => Ok(ScalarExpr::Binary {
                op: *op,
                left: Box::new(self.expand_scalar(left)?),
                right: Box::new(self.expand_scalar(right)?),
            }),
        }
    }

    fn expand_bool(&self, b: &BoolExpr) -> Result<BoolExpr, usize> {
        Ok(match b {
            BoolExpr::And(v) => BoolExpr::And(
                v.iter()
                    .map(|p| self.expand_bool(p))
                    .collect::<Result<_, _>>()?,
            ),
            BoolExpr::Or(v) => BoolExpr::Or(
                v.iter()
                    .map(|p| self.expand_bool(p))
                    .collect::<Result<_, _>>()?,
            ),
            BoolExpr::Not(p) => BoolExpr::Not(Box::new(self.expand_bool(p)?)),
            BoolExpr::Compare { op, left, right } => BoolExpr::Compare {
                op: *op,
                left: self.expand_scalar(left)?,
                right: self.expand_scalar(right)?,
            },
            BoolExpr::Like {
                expr,
                pattern,
                negated,
            } => BoolExpr::Like {
                expr: self.expand_scalar(expr)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            BoolExpr::IsNull { expr, negated } => BoolExpr::IsNull {
                expr: self.expand_scalar(expr)?,
                negated: *negated,
            },
            BoolExpr::Literal(x) => BoolExpr::Literal(*x),
        })
    }
}

/// Check one occurrence correspondence end to end.
#[allow(clippy::too_many_arguments)]
fn check_mapping(
    ctx: &VerifyContext,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    m: &[Option<u32>],
    arity: usize,
    bases: &[usize],
) -> Vec<Diagnostic> {
    let catalog = ctx.catalog;
    let nq = query.tables.len();
    let nv = view.tables.len();
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Query-space occurrence ids: mapped view occs take the query occ id,
    // extras get fresh ids nq, nq+1, ...
    let mut qocc_of_vocc = vec![0u32; nv];
    let mut extras: Vec<u32> = Vec::new();
    let mut table_of: Vec<TableId> = query.tables.clone();
    let mut next = nq as u32;
    for (i, slot) in m.iter().enumerate() {
        match slot {
            Some(j) => qocc_of_vocc[i] = *j,
            None => {
                qocc_of_vocc[i] = next;
                extras.push(next);
                table_of.push(view.tables[i]);
                next += 1;
            }
        }
    }
    let mapf = |c: ColRef| ColRef::new(qocc_of_vocc[c.occ.0 as usize], c.col.0);

    // View conjuncts in query space.
    let v_conjs_q: Vec<Conjunct> = view
        .conjuncts
        .iter()
        .filter_map(|c| c.try_map_columns(&mut |cr| Some(mapf(cr))))
        .collect();

    // Check-constraint conjuncts: per query occurrence and per extra.
    let mut q_checks: Vec<Conjunct> = Vec::new();
    for (j, t) in query.tables.iter().enumerate() {
        q_checks.extend(checks_for_occ(ctx.checks, *t, j as u32));
    }
    let mut x_checks: Vec<Conjunct> = Vec::new();
    for (k, e) in extras.iter().enumerate() {
        x_checks.extend(checks_for_occ(ctx.checks, table_of[nq + k], *e));
    }

    // Equivalence classes.
    let vec_q_own = ec_of([v_conjs_q.as_slice()]);
    let vec_q_ext = ec_of([
        v_conjs_q.as_slice(),
        q_checks.as_slice(),
        x_checks.as_slice(),
    ]);
    let mut qec_full = ec_of([query.conjuncts.as_slice(), q_checks.as_slice()]);

    // ---- MV013: re-derive FK join elimination for the extras ----
    let q_all: Vec<Conjunct> = query
        .conjuncts
        .iter()
        .chain(q_checks.iter())
        .cloned()
        .collect();
    let n_occ = next as usize;
    // edges[a] = (target, fk column pairs in query space)
    type FkEdge = (usize, Vec<(ColRef, ColRef)>);
    let mut edges: Vec<Vec<FkEdge>> = vec![Vec::new(); n_occ];
    for a in 0..n_occ {
        for fkid in catalog.foreign_keys_from(table_of[a]) {
            let fk = catalog.foreign_key(fkid);
            for (b, tb) in table_of.iter().enumerate() {
                if b == a || *tb != fk.to_table {
                    continue;
                }
                let pairs: Vec<(ColRef, ColRef)> = fk
                    .from_columns
                    .iter()
                    .zip(&fk.to_columns)
                    .map(|(f, t)| {
                        (
                            ColRef {
                                occ: mv_expr::OccId(a as u32),
                                col: *f,
                            },
                            ColRef {
                                occ: mv_expr::OccId(b as u32),
                                col: *t,
                            },
                        )
                    })
                    .collect();
                let joined = pairs.iter().all(|(f, t)| vec_q_ext.same(*f, *t));
                if !joined {
                    continue;
                }
                let safe = pairs.iter().all(|(f, _)| {
                    catalog.table(fk.from_table).column(f.col).not_null
                        || (a < nq && null_rejecting(&q_all, &qec_full, *f))
                });
                if safe {
                    edges[a].push((b, pairs));
                }
            }
        }
    }
    // Eliminate extras: repeatedly delete an extra with no outgoing edge
    // and exactly one incoming edge (the cardinality-preserving FK join),
    // folding the join's column equalities into the query's classes.
    let mut alive = vec![true; n_occ];
    let mut remaining: BTreeSet<usize> = extras.iter().map(|e| *e as usize).collect();
    let mut deleted_pairs: Vec<(ColRef, ColRef)> = Vec::new();
    loop {
        let mut victim = None;
        'scan: for &e in &remaining {
            if edges[e].iter().any(|(b, _)| alive[*b]) {
                continue; // outgoing edges remain
            }
            let mut incoming = Vec::new();
            for a in 0..n_occ {
                if !alive[a] || a == e {
                    continue;
                }
                for (b, pairs) in &edges[a] {
                    if *b == e {
                        incoming.push(pairs.clone());
                        if incoming.len() > 1 {
                            continue 'scan;
                        }
                    }
                }
            }
            if incoming.len() == 1 {
                victim = Some((e, incoming.pop().unwrap()));
                break;
            }
        }
        match victim {
            Some((e, pairs)) => {
                alive[e] = false;
                remaining.remove(&e);
                deleted_pairs.extend(pairs);
            }
            None => break,
        }
    }
    for &e in &remaining {
        diags.push(Diagnostic::error(
            RuleId::FkElimination,
            format!(
                "extra view table {} (occurrence t{e}) is not eliminable by a \
                 cardinality-preserving foreign-key join",
                catalog.table(table_of[e]).name
            ),
        ));
    }
    for (a, b) in &deleted_pairs {
        qec_full.union(*a, *b);
    }

    // ---- Backjoin resolution (MV014) ----
    // A backjoin must re-bind some view occurrence of its table: each key
    // column must be view-equal to the substitute column it is equated to.
    // Resolutions can be ambiguous (self-joins with equal keys), so try
    // every combination.
    let resolutions = resolve_backjoins(
        view,
        sub,
        arity,
        bases,
        &vec_q_ext,
        &table_of,
        &qocc_of_vocc,
    );
    if resolutions.is_empty() && !sub.backjoins.is_empty() {
        diags.push(Diagnostic::error(
            RuleId::BackjoinKey,
            "no view occurrence matches the backjoin key: key columns are not \
             view-equal to the substitute columns they join on",
        ));
        return diags;
    }
    let combos: Vec<Vec<u32>> = if sub.backjoins.is_empty() {
        vec![Vec::new()]
    } else {
        resolutions
    };

    let mut best: Option<Vec<Diagnostic>> = None;
    for combo in combos.iter().take(MAX_MAPPINGS) {
        let scalars: Vec<ScalarExpr> = view
            .scalar_outputs()
            .iter()
            .map(|ne| ne.expr.map_columns(&mut |c| mapf(c)))
            .collect();
        let aggs: Vec<AggFunc> = view
            .aggregate_outputs()
            .iter()
            .map(|na| match &na.func {
                AggFunc::CountStar => AggFunc::CountStar,
                AggFunc::Sum(e) => AggFunc::Sum(e.map_columns(&mut |c| mapf(c))),
                AggFunc::SumZero(e) => AggFunc::SumZero(e.map_columns(&mut |c| mapf(c))),
            })
            .collect();
        let exp = Expander {
            scalars,
            aggs,
            arity,
            bases: bases.to_vec(),
            bj_occ: combo.clone(),
        };
        let mut d = diags.clone();
        check_predicates_and_outputs(
            query,
            view,
            sub,
            &exp,
            &v_conjs_q,
            &q_checks,
            &x_checks,
            &vec_q_own,
            &qec_full,
            &deleted_pairs,
            &mut d,
        );
        let errs = d.iter().filter(|x| x.severity == Severity::Error).count();
        if errs == 0 {
            return d;
        }
        let better = match &best {
            None => true,
            Some(b) => errs < b.iter().filter(|x| x.severity == Severity::Error).count(),
        };
        if better {
            best = Some(d);
        }
    }
    best.unwrap_or(diags)
}

/// All ways of binding each backjoin to a view occurrence whose key
/// columns are view-equal to the joined substitute columns.
#[allow(clippy::too_many_arguments)]
fn resolve_backjoins(
    view: &SpjgExpr,
    sub: &Substitute,
    arity: usize,
    bases: &[usize],
    vec_q_ext: &EquivClasses,
    table_of: &[TableId],
    qocc_of_vocc: &[u32],
) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = Vec::new();
    let mapf = |c: ColRef| ColRef::new(qocc_of_vocc[c.occ.0 as usize], c.col.0);
    let scalars: Vec<ScalarExpr> = view
        .scalar_outputs()
        .iter()
        .map(|ne| ne.expr.map_columns(&mut |c| mapf(c)))
        .collect();

    fn rec(
        i: usize,
        sub: &Substitute,
        scalars: &[ScalarExpr],
        arity: usize,
        bases: &[usize],
        vec_q_ext: &EquivClasses,
        table_of: &[TableId],
        resolved: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if out.len() >= MAX_MAPPINGS {
            return;
        }
        if i == sub.backjoins.len() {
            out.push(resolved.clone());
            return;
        }
        let bj = &sub.backjoins[i];
        // Expand a key position to a base column, given resolutions so far.
        fn expand(
            p: usize,
            i: usize,
            arity: usize,
            scalars: &[ScalarExpr],
            bases: &[usize],
            resolved: &[u32],
        ) -> Option<ColRef> {
            if p < arity {
                scalars.get(p).and_then(|e| e.as_column())
            } else {
                let mut k = bases.len() - 1;
                while bases[k] > p {
                    k -= 1;
                }
                if k >= i {
                    return None;
                }
                Some(ColRef::new(resolved[k], (p - bases[k]) as u32))
            }
        }
        for (o, t) in table_of.iter().enumerate() {
            if *t != bj.table {
                continue;
            }
            let ok = bj.key.iter().all(|(pos, col)| {
                match expand(*pos, i, arity, scalars, bases, resolved) {
                    Some(c) => vec_q_ext.same(c, ColRef::new(o as u32, col.0)),
                    None => false,
                }
            });
            if ok {
                resolved.push(o as u32);
                rec(
                    i + 1,
                    sub,
                    scalars,
                    arity,
                    bases,
                    vec_q_ext,
                    table_of,
                    resolved,
                    out,
                );
                resolved.pop();
            }
        }
    }

    let mut resolved = Vec::new();
    rec(
        0,
        sub,
        &scalars,
        arity,
        bases,
        vec_q_ext,
        table_of,
        &mut resolved,
        &mut out,
    );
    out
}

/// The predicate- and output-level rules, once expansion is fixed.
#[allow(clippy::too_many_arguments)]
fn check_predicates_and_outputs(
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    exp: &Expander,
    v_conjs_q: &[Conjunct],
    q_checks: &[Conjunct],
    x_checks: &[Conjunct],
    vec_q_own: &EquivClasses,
    qec_full: &EquivClasses,
    deleted_pairs: &[(ColRef, ColRef)],
    diags: &mut Vec<Diagnostic>,
) {
    let same = |a: ColRef, b: ColRef| a == b || qec_full.same(a, b);

    // ---- Parse the compensating predicates ----
    let mut comp_eqs: Vec<(ColRef, ColRef)> = Vec::new();
    let mut comp_ranges: HashMap<ColRef, Option<Interval>> = HashMap::new();
    let mut comp_residuals: Vec<Template> = Vec::new();
    for p in &sub.predicates {
        for conj in classify(p.clone()) {
            match &conj {
                Conjunct::ColumnEq(a, b) => {
                    let ea = exp.expand_pos(a.col.0 as usize);
                    let eb = exp.expand_pos(b.col.0 as usize);
                    match (ea, eb) {
                        (Exp::Col(ca), Exp::Col(cb)) => comp_eqs.push((ca, cb)),
                        (Exp::Agg(_), _) | (_, Exp::Agg(_)) => {
                            diags.push(Diagnostic::error(
                                RuleId::SubstituteColumn,
                                "compensating predicate references an aggregate output; \
                                 only (simple) scalar view outputs are addressable (§3.1.3)",
                            ));
                        }
                        _ => match exp.expand_bool(&conj.to_bool()) {
                            Ok(eb) => comp_residuals.push(Template::of_bool(&eb)),
                            Err(_) => diags.push(Diagnostic::error(
                                RuleId::SubstituteColumn,
                                "compensating predicate references an aggregate output",
                            )),
                        },
                    }
                }
                Conjunct::Range { col, op, value } => match exp.expand_pos(col.col.0 as usize) {
                    Exp::Col(c) => {
                        let mut iv = Interval::unconstrained();
                        if iv.apply(*op, value) {
                            let root = qec_full.find(c);
                            let slot = comp_ranges
                                .entry(root)
                                .or_insert_with(|| Some(Interval::unconstrained()));
                            *slot = match slot.take() {
                                Some(cur) => cur.intersect(&iv),
                                None => None,
                            };
                        } else if let Ok(eb) = exp.expand_bool(&conj.to_bool()) {
                            comp_residuals.push(Template::of_bool(&eb));
                        }
                    }
                    Exp::Expr(_) => {
                        if let Ok(eb) = exp.expand_bool(&conj.to_bool()) {
                            comp_residuals.push(Template::of_bool(&eb));
                        }
                    }
                    Exp::Agg(_) => diags.push(Diagnostic::error(
                        RuleId::SubstituteColumn,
                        "compensating range predicate applies to an aggregate output",
                    )),
                },
                Conjunct::Residual(b) => match exp.expand_bool(b) {
                    Ok(eb) => comp_residuals.push(Template::of_bool(&eb)),
                    Err(_) => diags.push(Diagnostic::error(
                        RuleId::SubstituteColumn,
                        "compensating residual predicate references an aggregate output",
                    )),
                },
            }
        }
    }

    // ---- Profiles (folded by the query's classes) ----
    let q_gen = Profile::build(query.conjuncts.iter(), qec_full);
    let chk = Profile::build(q_checks.iter().chain(x_checks.iter()), qec_full);
    let v_prof = Profile::build(v_conjs_q.iter(), qec_full);

    // ---- MV005: equijoin subsumption ----
    for class in vec_q_own.nontrivial_classes() {
        let root = qec_full.find(class[0]);
        if let Some(c) = class.iter().find(|c| qec_full.find(**c) != root) {
            diags.push(Diagnostic::error(
                RuleId::EquijoinSubsumption,
                format!(
                    "view enforces column equality {} = {} that the query does not \
                     imply; the view is missing query rows (§3.1.2)",
                    class[0], c
                ),
            ));
        }
    }

    // ---- MV006: equijoin compensation, both directions ----
    let mut ec_subst = EquivClasses::new();
    for conj in v_conjs_q
        .iter()
        .chain(q_checks.iter())
        .chain(x_checks.iter())
    {
        if let Conjunct::ColumnEq(a, b) = conj {
            ec_subst.union(*a, *b);
        }
    }
    for (a, b) in deleted_pairs {
        ec_subst.union(*a, *b);
    }
    for (a, b) in &comp_eqs {
        ec_subst.union(*a, *b);
    }
    for (a, b) in &q_gen.equalities {
        if !ec_subst.same(*a, *b) {
            diags.push(Diagnostic::error(
                RuleId::EquijoinCompensation,
                format!(
                    "query equality {a} = {b} is enforced neither by the view nor by a \
                     compensating predicate (§3.1.3)"
                ),
            ));
        }
    }
    for (a, b) in &comp_eqs {
        if !same(*a, *b) {
            diags.push(Diagnostic::error(
                RuleId::EquijoinCompensation,
                format!(
                    "compensating equality {a} = {b} is stronger than anything the \
                     query implies; it would drop query rows"
                ),
            ));
        }
    }

    // ---- MV007/MV008: range subsumption and compensation ----
    let mut roots: BTreeSet<ColRef> = BTreeSet::new();
    roots.extend(q_gen.ranges.keys());
    roots.extend(chk.ranges.keys());
    roots.extend(v_prof.ranges.keys());
    roots.extend(comp_ranges.keys());
    for root in roots {
        let (Some(qg), Some(ch), Some(vv)) = (
            q_gen.range_at(root),
            chk.range_at(root),
            v_prof.range_at(root),
        ) else {
            diags.push(Diagnostic::warning(
                RuleId::EcContradiction,
                format!("incomparable values meet on the class of {root}; range rules skipped"),
            ));
            continue;
        };
        let cp = match comp_ranges.get(&root) {
            None => Interval::unconstrained(),
            Some(Some(iv)) => iv.clone(),
            Some(None) => {
                diags.push(Diagnostic::warning(
                    RuleId::EcContradiction,
                    format!("incomparable compensating bounds on the class of {root}"),
                ));
                continue;
            }
        };
        let Some(q_eff) = qg.clone().intersect(&ch) else {
            continue;
        };
        if q_eff.is_empty() {
            continue; // the query selects nothing on this class
        }
        let Some(v_eff) = vv.clone().intersect(&ch) else {
            continue;
        };
        match v_eff.contains(&q_eff) {
            Some(true) => {}
            Some(false) => {
                diags.push(Diagnostic::error(
                    RuleId::RangeSubsumption,
                    format!(
                        "view range {v_eff:?} on the class of {root} does not contain \
                         the query range {q_eff:?} (§3.1.2)"
                    ),
                ));
                continue;
            }
            None => continue,
        }
        let Some(subst) = v_eff.clone().intersect(&cp) else {
            continue;
        };
        let equal = (subst.is_empty() && q_eff.is_empty())
            || (subst.contains(&q_eff) == Some(true) && q_eff.contains(&subst) == Some(true));
        if !equal {
            let direction = if subst.contains(&q_eff) == Some(true) {
                "a compensating range conjunct is missing: the substitute keeps rows the \
                 query filters out"
            } else {
                "the compensating range is over-strong or contradictory: the substitute \
                 drops query rows"
            };
            diags.push(Diagnostic::error(
                RuleId::RangeCompensation,
                format!(
                    "on the class of {root}: substitute range {subst:?} != query range \
                     {q_eff:?}; {direction} (§3.1.3)"
                ),
            ));
        }
    }

    // ---- MV009: residual subsumption ----
    for (vt, vb) in &v_prof.residuals {
        let matched = q_gen
            .residuals
            .iter()
            .chain(chk.residuals.iter())
            .any(|(qt, _)| vt.matches(qt, &same));
        if !matched {
            diags.push(Diagnostic::error(
                RuleId::ResidualSubsumption,
                format!(
                    "view residual predicate `{vb:?}` matches no query conjunct; the \
                     view is missing query rows (§3.1.2)"
                ),
            ));
        }
    }

    // ---- MV010: residual compensation, both directions ----
    for (qt, qb) in &q_gen.residuals {
        let by_view = v_prof.residuals.iter().any(|(vt, _)| vt.matches(qt, &same));
        let by_comp = comp_residuals.iter().any(|ct| ct.matches(qt, &same));
        if !(by_view || by_comp) {
            diags.push(Diagnostic::error(
                RuleId::ResidualCompensation,
                format!(
                    "query residual predicate `{qb:?}` is enforced neither by the view \
                     nor by a compensating predicate (§3.1.3)"
                ),
            ));
        }
    }
    for ct in &comp_residuals {
        let justified = q_gen
            .residuals
            .iter()
            .chain(chk.residuals.iter())
            .any(|(qt, _)| ct.matches(qt, &same));
        if !justified {
            diags.push(Diagnostic::error(
                RuleId::ResidualCompensation,
                format!(
                    "compensating predicate `{}` is not implied by the query; it would \
                     drop query rows",
                    ct.text
                ),
            ));
        }
    }

    // ---- MV011/MV015: output mapping and aggregate rollup ----
    check_outputs(query, view, sub, exp, qec_full, diags);
}

/// Output-list rules (§3.1.4, §3.3).
fn check_outputs(
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
    exp: &Expander,
    qec_full: &EquivClasses,
    diags: &mut Vec<Diagnostic>,
) {
    let same = |a: ColRef, b: ColRef| a == b || qec_full.same(a, b);
    let scalar_match = |e: &ScalarExpr, q: &ScalarExpr| {
        Template::of_scalar(e).matches(&Template::of_scalar(q), &same)
    };

    if !query.is_aggregate() {
        if view.is_aggregate() {
            diags.push(Diagnostic::error(
                RuleId::AggRollup,
                "an SPJ query cannot be answered from an aggregate view: grouping \
                 collapses duplicate rows (§3.3)",
            ));
            return;
        }
        let OutputList::Spj(items) = &sub.output else {
            diags.push(Diagnostic::error(
                RuleId::OutputMapping,
                "SPJ query answered with an aggregated substitute output",
            ));
            return;
        };
        let q_out = query.scalar_outputs();
        if items.len() != q_out.len() {
            diags.push(Diagnostic::error(
                RuleId::OutputMapping,
                format!(
                    "substitute outputs {} columns, the query outputs {}",
                    items.len(),
                    q_out.len()
                ),
            ));
            return;
        }
        for (it, q) in items.iter().zip(q_out) {
            match exp.expand_scalar(&it.expr) {
                Ok(e) => {
                    if !scalar_match(&e, &q.expr) {
                        diags.push(Diagnostic::error(
                            RuleId::OutputMapping,
                            format!(
                                "substitute output `{}` is not equivalent to the query \
                                 output `{}` (§3.1.4)",
                                Template::of_scalar(&e),
                                q.name
                            ),
                        ));
                    }
                }
                Err(_) => diags.push(Diagnostic::error(
                    RuleId::SubstituteColumn,
                    format!("output `{}` references an aggregate view output", q.name),
                )),
            }
        }
        return;
    }

    // Aggregate query.
    let (q_gb, q_aggs) = match &query.output {
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => (group_by, aggregates),
        OutputList::Spj(_) => unreachable!("is_aggregate"),
    };

    if !view.is_aggregate() {
        // Aggregation is pushed on top of the SPJ substitute.
        let OutputList::Aggregate {
            group_by: g,
            aggregates: a,
        } = &sub.output
        else {
            diags.push(Diagnostic::error(
                RuleId::OutputMapping,
                "aggregate query over an SPJ view requires an aggregating substitute",
            ));
            return;
        };
        check_scalar_items(
            g.iter().map(|it| &it.expr),
            q_gb.iter().map(|it| (&it.expr, it.name.as_str())),
            exp,
            &scalar_match,
            diags,
        );
        if a.len() != q_aggs.len() {
            diags.push(Diagnostic::error(
                RuleId::OutputMapping,
                "substitute aggregate list differs in length from the query's",
            ));
            return;
        }
        for (sa, qa) in a.iter().zip(q_aggs) {
            let ok = match (&sa.func, &qa.func) {
                (AggFunc::CountStar, AggFunc::CountStar) => true,
                (AggFunc::Sum(e), AggFunc::Sum(qe))
                | (AggFunc::SumZero(e), AggFunc::SumZero(qe)) => match exp.expand_scalar(e) {
                    Ok(ee) => scalar_match(&ee, qe),
                    Err(_) => false,
                },
                _ => false,
            };
            if !ok {
                diags.push(Diagnostic::error(
                    RuleId::OutputMapping,
                    format!(
                        "substitute aggregate for `{}` does not recompute the query \
                         aggregate (§3.1.4)",
                        qa.name
                    ),
                ));
            }
        }
        return;
    }

    // Aggregate query over an aggregate view (§3.3).
    let scalar_len = exp.scalars.len();
    match &sub.output {
        OutputList::Spj(items) => {
            // No regrouping: view grouping must coincide with the query's.
            if items.len() != q_gb.len() + q_aggs.len() {
                diags.push(Diagnostic::error(
                    RuleId::OutputMapping,
                    "substitute output arity differs from the query's",
                ));
                return;
            }
            let mut covered: BTreeSet<usize> = BTreeSet::new();
            for (it, q) in items.iter().take(q_gb.len()).zip(q_gb) {
                if let ScalarExpr::Column(c) = &it.expr {
                    let p = c.col.0 as usize;
                    if p < scalar_len {
                        covered.insert(p);
                    }
                }
                match exp.expand_scalar(&it.expr) {
                    Ok(e) => {
                        if !scalar_match(&e, &q.expr) {
                            diags.push(Diagnostic::error(
                                RuleId::OutputMapping,
                                format!(
                                    "substitute group-by output for `{}` is not \
                                     equivalent to the query's (§3.1.4)",
                                    q.name
                                ),
                            ));
                        }
                    }
                    Err(_) => diags.push(Diagnostic::error(
                        RuleId::AggRollup,
                        format!(
                            "group-by output `{}` drawn from an aggregate view output (§3.3)",
                            q.name
                        ),
                    )),
                }
            }
            // Every view grouping column must be pinned by the query's
            // grouping, else view groups are finer and rows multiply.
            for p in 0..scalar_len {
                if covered.contains(&p) {
                    continue;
                }
                let fine = match &exp.scalars[p] {
                    ScalarExpr::Literal(_) => true,
                    ScalarExpr::Column(c) => covered.iter().any(
                        |q| matches!(&exp.scalars[*q], ScalarExpr::Column(c2) if same(*c, *c2)),
                    ),
                    _ => false,
                };
                if !fine {
                    diags.push(Diagnostic::error(
                        RuleId::AggRollup,
                        format!(
                            "view grouping column {p} is not part of the query's \
                             grouping: the view partitions finer than the query, so the \
                             ungrouped substitute returns multiple rows per group (§3.3)"
                        ),
                    ));
                }
            }
            for (it, qa) in items.iter().skip(q_gb.len()).zip(q_aggs) {
                let target = match &it.expr {
                    ScalarExpr::Column(c) => match exp.expand_pos(c.col.0 as usize) {
                        Exp::Agg(k) => Some(k),
                        _ => None,
                    },
                    _ => None,
                };
                let ok = match target {
                    Some(k) => agg_rollup_compatible(&qa.func, &exp.aggs[k], &scalar_match),
                    None => false,
                };
                if !ok {
                    diags.push(Diagnostic::error(
                        RuleId::AggRollup,
                        format!(
                            "query aggregate `{}` does not map to a matching view \
                             aggregate output (§3.3)",
                            qa.name
                        ),
                    ));
                }
            }
        }
        OutputList::Aggregate {
            group_by: g,
            aggregates: a,
        } => {
            // Regrouping: group-by compensation must be a coarsening — it
            // may only reference the view's grouping outputs.
            if g.len() != q_gb.len() || a.len() != q_aggs.len() {
                diags.push(Diagnostic::error(
                    RuleId::OutputMapping,
                    "substitute regrouping output arity differs from the query's",
                ));
                return;
            }
            for (it, q) in g.iter().zip(q_gb) {
                match exp.expand_scalar(&it.expr) {
                    Ok(e) => {
                        if !scalar_match(&e, &q.expr) {
                            diags.push(Diagnostic::error(
                                RuleId::OutputMapping,
                                format!(
                                    "regrouping output for `{}` is not equivalent to \
                                     the query's group-by expression",
                                    q.name
                                ),
                            ));
                        }
                    }
                    Err(_) => diags.push(Diagnostic::error(
                        RuleId::AggRollup,
                        format!(
                            "regrouping for `{}` references an aggregate view output — \
                             grouping compensation must be a coarsening of the view's \
                             grouping (§3.3)",
                            q.name
                        ),
                    )),
                }
            }
            for (sa, qa) in a.iter().zip(q_aggs) {
                let ok = match (&qa.func, &sa.func) {
                    (AggFunc::CountStar, AggFunc::SumZero(arg)) => {
                        matches!(agg_target(exp, arg), Some(AggFunc::CountStar))
                    }
                    (AggFunc::CountStar, AggFunc::CountStar) => {
                        diags.push(Diagnostic::error(
                            RuleId::AggRollup,
                            format!(
                                "`{}`: COUNT(*) over regrouped view rows counts view \
                                 groups, not base rows; it must roll up as \
                                 SUM(view COUNT(*)) (§3.3)",
                                qa.name
                            ),
                        ));
                        continue;
                    }
                    (AggFunc::Sum(qe), AggFunc::Sum(arg))
                    | (AggFunc::SumZero(qe), AggFunc::SumZero(arg)) => match agg_target(exp, arg) {
                        Some(AggFunc::Sum(ve)) | Some(AggFunc::SumZero(ve)) => scalar_match(ve, qe),
                        _ => false,
                    },
                    _ => false,
                };
                if !ok {
                    diags.push(Diagnostic::error(
                        RuleId::AggRollup,
                        format!(
                            "query aggregate `{}` does not roll up from a matching view \
                             aggregate (§3.3)",
                            qa.name
                        ),
                    ));
                }
            }
        }
    }
}

/// The view aggregate a rollup argument refers to, if it is a direct
/// reference to an aggregate output position.
fn agg_target<'e>(exp: &'e Expander, arg: &ScalarExpr) -> Option<&'e AggFunc> {
    match arg {
        ScalarExpr::Column(c) if c.occ.0 == 0 => match exp.expand_pos(c.col.0 as usize) {
            Exp::Agg(k) => Some(&exp.aggs[k]),
            _ => None,
        },
        _ => None,
    }
}

/// Does view aggregate `va` answer query aggregate `qa` without
/// regrouping (one view group per query group)?
fn agg_rollup_compatible(
    qa: &AggFunc,
    va: &AggFunc,
    scalar_match: &impl Fn(&ScalarExpr, &ScalarExpr) -> bool,
) -> bool {
    match (qa, va) {
        (AggFunc::CountStar, AggFunc::CountStar) => true,
        (AggFunc::Sum(qe), AggFunc::Sum(ve))
        | (AggFunc::Sum(qe), AggFunc::SumZero(ve))
        | (AggFunc::SumZero(qe), AggFunc::Sum(ve))
        | (AggFunc::SumZero(qe), AggFunc::SumZero(ve)) => scalar_match(ve, qe),
        _ => false,
    }
}

/// Compare substitute scalar items against query items positionally.
fn check_scalar_items<'a, 'b>(
    items: impl ExactSizeIterator<Item = &'a ScalarExpr>,
    q_items: impl ExactSizeIterator<Item = (&'b ScalarExpr, &'b str)>,
    exp: &Expander,
    scalar_match: &impl Fn(&ScalarExpr, &ScalarExpr) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    if items.len() != q_items.len() {
        diags.push(Diagnostic::error(
            RuleId::OutputMapping,
            "substitute group-by list differs in length from the query's",
        ));
        return;
    }
    for (it, (qe, name)) in items.zip(q_items) {
        match exp.expand_scalar(it) {
            Ok(e) => {
                if !scalar_match(&e, qe) {
                    diags.push(Diagnostic::error(
                        RuleId::OutputMapping,
                        format!(
                            "substitute output for `{name}` is not equivalent to the \
                             query's expression (§3.1.4)"
                        ),
                    ));
                }
            }
            Err(_) => diags.push(Diagnostic::error(
                RuleId::SubstituteColumn,
                format!("output for `{name}` references an aggregate view output"),
            )),
        }
    }
}
