//! Expression-level rules: checks on a single `SpjgExpr` (a query or a
//! view definition) independent of any substitute.

use crate::analysis::{checks_of_expr, ec_of, out_of_bounds_columns, Profile, RangeState};
use crate::diag::{Diagnostic, RuleId};
use mv_catalog::{Catalog, TableId, Value};
use mv_expr::{CmpOp, Conjunct};
use mv_plan::SpjgExpr;
use std::collections::HashMap;

/// Run the expression-level rules over `expr`. `checks` are the engine's
/// table check constraints (pass an empty map when none are declared);
/// `who` labels the expression in diagnostics ("query 17", "view v42").
pub fn verify_expr(
    catalog: &Catalog,
    checks: &HashMap<TableId, Vec<Conjunct>>,
    expr: &SpjgExpr,
    who: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // MV001 — column bounds. Nothing else is safe to compute on a
    // malformed expression, so bail out afterwards.
    let bad = out_of_bounds_columns(catalog, expr);
    if !bad.is_empty() {
        for c in bad {
            diags.push(
                Diagnostic::error(
                    RuleId::ColumnBounds,
                    format!("column reference {c} is outside the catalog bounds"),
                )
                .with_query(who),
            );
        }
        return diags;
    }

    let ec = ec_of([expr.conjuncts.as_slice()]);

    // MV002 — EC well-formedness: incomparable column types equated, or
    // one class pinned to two distinct constants.
    for class in ec.nontrivial_classes() {
        let tys: Vec<_> = class.iter().map(|c| expr.col_type(catalog, *c)).collect();
        for w in tys.windows(2) {
            if !w[0].comparable_with(w[1]) {
                diags.push(
                    Diagnostic::warning(
                        RuleId::EcContradiction,
                        format!(
                            "equivalence class {class:?} equates incomparable types {:?} and {:?}",
                            w[0], w[1]
                        ),
                    )
                    .with_query(who),
                );
                break;
            }
        }
        let mut pinned: Option<&Value> = None;
        for conj in &expr.conjuncts {
            if let Conjunct::Range {
                col,
                op: CmpOp::Eq,
                value,
            } = conj
            {
                if class.contains(col) {
                    match pinned {
                        Some(v) if v != value => {
                            diags.push(
                                Diagnostic::warning(
                                    RuleId::EcContradiction,
                                    format!(
                                        "class of {col} pinned to both {v} and {value}; \
                                         the expression is unsatisfiable"
                                    ),
                                )
                                .with_query(who),
                            );
                        }
                        Some(_) => {}
                        None => pinned = Some(value),
                    }
                }
            }
        }
    }

    // MV003 — unsatisfiable range conjunctions, including constraints the
    // check constraints contribute.
    let check_conjs = checks_of_expr(checks, expr);
    let profile = Profile::build(expr.conjuncts.iter().chain(check_conjs.iter()), &ec);
    let mut roots: Vec<_> = profile.ranges.keys().copied().collect();
    roots.sort();
    for root in roots {
        if let Some(RangeState::Folded(iv)) = profile.ranges.get(&root) {
            if iv.is_empty() {
                diags.push(
                    Diagnostic::warning(
                        RuleId::EmptyRange,
                        format!(
                            "range conjunction on the class of {root} is unsatisfiable \
                             ({iv:?}); the expression returns no rows"
                        ),
                    )
                    .with_query(who),
                );
            }
        }
    }

    diags
}

/// Additional rules for view definitions: an aggregate view without a
/// COUNT(*) output cannot answer COUNT or AVG rollups (§3.3).
pub fn verify_view_expr(
    catalog: &Catalog,
    checks: &HashMap<TableId, Vec<Conjunct>>,
    expr: &SpjgExpr,
    who: &str,
) -> Vec<Diagnostic> {
    let mut diags = verify_expr(catalog, checks, expr, who);
    if expr.is_aggregate() && expr.count_star_position().is_none() {
        diags.push(
            Diagnostic::warning(
                RuleId::AggViewNoCount,
                "aggregate view has no COUNT(*) output; COUNT/AVG rollups over it \
                 are impossible"
                    .to_string(),
            )
            .with_view(who),
        );
    }
    diags
}
