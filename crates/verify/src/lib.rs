//! `mv-verify` — an independent static soundness analyzer for view-matching
//! results.
//!
//! The matcher (`mv-core`) decides *whether* a materialized view can answer
//! a query and builds a [`Substitute`](mv_plan::Substitute); this crate
//! re-derives the paper's conditions (Goldstein & Larson, SIGMOD 2001,
//! §3.1–§3.3) from the raw predicates and the catalog, **sharing no logic
//! with the matcher**, and reports violations as structured diagnostics:
//!
//! * expression-level rules ([`verify_expr`], [`verify_view_expr`]) —
//!   column bounds, equivalence-class contradictions, unsatisfiable range
//!   conjunctions, rollup-hostile view shapes;
//! * substitute-level rules ([`verify_substitute`]) — table
//!   correspondence, equijoin/range/residual subsumption and compensation,
//!   output mapping, FK-join elimination, backjoin keys, and aggregate
//!   rollup validity.
//!
//! Deployment layers:
//!
//! 1. `MatchingEngine` verifies every substitute it produces behind
//!    `debug_assertions`, turning the whole test suite into an oracle for
//!    both the matcher and this analyzer.
//! 2. The `mv-lint` binary (`crates/lint`) runs the rules over the TPC-H
//!    workload and emits a machine-readable JSON report for CI.
//! 3. `mv-lint --exec-check` cross-checks flagged substitutes by executing
//!    both plans on small generated data.

pub mod analysis;
pub mod diag;
pub mod expr_rules;
pub mod plan_rules;
pub mod substitute_rules;

pub use diag::{json_string, Context, Diagnostic, Report, RuleId, Severity};
pub use expr_rules::{verify_expr, verify_view_expr};
pub use plan_rules::verify_plan;
pub use substitute_rules::{verify_substitute, VerifyContext};

use mv_catalog::TableId;
use mv_expr::Conjunct;
use std::collections::HashMap;

/// An empty check-constraint map, for callers that have none.
pub fn no_checks() -> HashMap<TableId, Vec<Conjunct>> {
    HashMap::new()
}
