//! The diagnostics framework: rule identifiers, severities, span-like
//! context naming the view/query/conjunct a finding refers to, and a
//! machine-readable JSON rendering for `mv-lint`.

use std::fmt;

/// Analyzer rules. Each rule independently re-derives one of the paper's
/// soundness conditions (section references are to Goldstein & Larson,
/// SIGMOD 2001); the analyzer shares no logic with the matcher, so a rule
/// firing on matcher output means one of the two is wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// MV001 — a column reference is outside the catalog's bounds for its
    /// table, or a substitute references a column position past the end of
    /// the view-output + backjoin column space.
    ColumnBounds,
    /// MV002 — an equivalence class pins a column to two different
    /// constants, or equates columns of incomparable types (§3.1.1).
    EcContradiction,
    /// MV003 — the range conjunction on some equivalence class is
    /// unsatisfiable (`Interval::is_empty` after intersection).
    EmptyRange,
    /// MV004 — the substitute's table mapping is broken: the query's table
    /// multiset is not covered by the view's (§3.1).
    TableCorrespondence,
    /// MV005 — equijoin subsumption (§3.1.2): the view enforces a column
    /// equality the query does not imply, so the view is missing rows.
    EquijoinSubsumption,
    /// MV006 — equijoin compensation (§3.1.3): a query column equality is
    /// enforced neither by the view nor by a compensating predicate, or a
    /// compensating equality is stronger than anything the query implies.
    EquijoinCompensation,
    /// MV007 — range subsumption (§3.1.2): the view's range on some
    /// equivalence class does not contain the query's effective range.
    RangeSubsumption,
    /// MV008 — range compensation (§3.1.3): view range ∩ compensating
    /// range differs from the query's range on some class — a dropped,
    /// contradictory, or over-strong compensating conjunct.
    RangeCompensation,
    /// MV009 — residual subsumption (§3.1.2): a view residual predicate
    /// matches no query residual, so the view may be missing rows.
    ResidualSubsumption,
    /// MV010 — residual compensation (§3.1.3): a query residual is neither
    /// enforced by the view nor reapplied as a compensating predicate, or
    /// a compensating residual matches nothing the query asked for.
    ResidualCompensation,
    /// MV011 — output mapping (§3.1.4): a substitute output expression is
    /// not equivalent to the query output it stands in for, or an output
    /// cannot be computed from the view's outputs.
    OutputMapping,
    /// MV012 — a substitute column position does not expand to a view
    /// output / backjoin column where one is required (e.g. a compensating
    /// predicate over an aggregate output).
    SubstituteColumn,
    /// MV013 — foreign-key join elimination (§3.2): an unmapped view table
    /// is not eliminable by a cardinality-preserving FK join re-derived
    /// from catalog keys and null-rejection.
    FkElimination,
    /// MV014 — a backjoin (§7 index extension) does not re-join on a
    /// non-null unique key equated to existing substitute columns.
    BackjoinKey,
    /// MV015 — aggregate rollup (§3.3): an invalid regrouping — COUNT not
    /// rolled up as SUM, a SUM drawn from a non-matching view aggregate,
    /// grouping compensation that is not a coarsening, or an SPJ query
    /// answered from an aggregate view.
    AggRollup,
    /// MV016 — an aggregate view exposes no COUNT(*) output, so COUNT and
    /// AVG rollups over it are impossible (§3.3).
    AggViewNoCount,
    /// MV017 — a plan-construction invariant reported by the optimizer's
    /// typed error path instead of a panic.
    PlanInvariant,
    /// MV018 — executed-plan cross-check: the substitute's rows differ
    /// from the query's rows on generated data (`mv-lint --exec-check`).
    ExecMismatch,

    // ------------------------------------------------------------------
    // MV101+ — the `mv-audit` completeness & catalog band (DESIGN.md §10).
    // MV10x audits the filter-tree index, MV11x the view catalog's
    // redundancy structure, MV12x the schema metadata the matcher trusts.
    // ------------------------------------------------------------------
    /// MV101 — a live view is missing from its filter tree, or is stored
    /// under keys that differ from a fresh derivation of its definition
    /// (stale entry), or the tree holds an unknown/removed view id.
    IndexEntry,
    /// MV102 — filter completeness: the exhaustive matcher accepts a view
    /// for a workload query but the filter-tree search prunes it, and the
    /// rejecting levels are not the documented §4.2.7 strict-expression
    /// conservatism. The detail names the first failing level.
    FilterCompleteness,
    /// MV103 — hub invariant (§4.2.1/§4.2.2): a stored hub key is not a
    /// subset of the view's stored source-table key, so the subset search
    /// at level 1 can prune the view for queries it should reach.
    HubInvariant,
    /// MV104 — a stored index token is out of bounds: a table/column token
    /// decodes to nothing in the catalog, or a template-text token was
    /// never minted by the interner.
    IndexTokenBounds,
    /// MV105 — a packed-descriptor arena span is invalid: a record's
    /// (offset, length) span reaches past its segment arena, a packed set
    /// is not strictly ascending, or parallel arenas (tables, occurrence
    /// counts, edge-less counts) disagree — any of which makes the
    /// branch-light precheck read garbage or panic.
    ArenaSpan,
    /// MV110 — two registered views are equivalent (each matches the
    /// other's definition); one of them is redundant storage and doubles
    /// candidate work.
    EquivalentViews,
    /// MV111 — a view is strictly subsumed: it can be computed from
    /// another view but not vice versa, so it adds no rewriting power
    /// beyond (possibly) performance.
    SubsumedView,
    /// MV112 — a view matched no query of the audited workload; dead
    /// weight in every candidate set the filter cannot rule out.
    DeadView,
    /// MV120 — a foreign-key declaration uses nullable referencing
    /// columns: §3.2's cardinality-preserving join elimination needs a
    /// null-rejecting predicate before it may rely on this FK.
    FkNullableColumn,
    /// MV121 — a foreign key references columns that cover no unique key
    /// of the referenced table: the join is not cardinality-preserving
    /// and FK-based table elimination over it is unsound.
    FkNotUniqueKey,
    /// MV122 — the paired columns of a foreign key disagree in type.
    FkTypeMismatch,
    /// MV123 — a foreign-key declaration is structurally broken: arity
    /// mismatch between the column lists, or a column id out of bounds
    /// for its table.
    FkColumnBounds,
    /// MV124 — the same foreign key is declared more than once.
    DuplicateFk,
    /// MV125 — a declared key includes a nullable column: two NULL rows
    /// are not equal, so the "unique key" does not guarantee uniqueness
    /// the way §3.2's elimination assumes. Error for primary keys,
    /// warning for secondary unique keys.
    KeyNullableColumn,
    /// MV126 — a declared key is structurally broken: empty column list,
    /// duplicate columns, or a column id out of bounds.
    KeyColumnBounds,

    // ------------------------------------------------------------------
    // MV2xx — the `mv-lint --source` concurrency-discipline band
    // (DESIGN.md §14): token-level rules over the workspace's own source
    // files, keeping the online catalog's synchronization auditable by
    // the mv-model schedule explorer.
    // ------------------------------------------------------------------
    /// MV201 — a raw `std::sync::Mutex`/`RwLock` or `std::sync::atomic`
    /// type is used outside the `mv_parallel::sync` facade (and its
    /// allowlisted homes): such a primitive is invisible to the
    /// `--cfg mv_model` schedule explorer, so the interleavings it
    /// creates are never model-checked.
    RawSyncPrimitive,
    /// MV202 — `Ordering::Relaxed` outside the statistics counters:
    /// relaxed operations order nothing, which is only sound for counters
    /// no other memory access depends on.
    RelaxedOrdering,
    /// MV203 — the engine's published snapshot field is touched outside
    /// the snapshot-guard discipline: loads anywhere but the `snapshot`
    /// accessor, or publishes in a function that never took the writer
    /// guard.
    RawEngineState,
    /// MV204 — a bare `Instant::now` outside the bench crate and the
    /// `timing.then(Instant::now)` gate: unconditional clock reads on the
    /// match path defeat the zero-clock-read configuration and inject
    /// nondeterminism under the model checker.
    UnguardedClock,
    /// MV205 — `.unwrap()` on a lock acquisition result in non-test
    /// code: a panicking thread poisons the lock and every later
    /// `.unwrap()` turns one panic into a cascade; use
    /// `mv_parallel::sync::lock_or_recover` (or the read/write variants).
    UnwrapOnLock,
    /// MV206 — `.expect(..)` on a lock acquisition result in non-test
    /// code: same cascade hazard as MV205, just with a message attached;
    /// use `mv_parallel::sync::lock_or_recover` (or the read/write
    /// variants).
    ExpectOnLock,
    /// MV301 — the prover's symbolic pass separates query and substitute:
    /// their abstract states (equivalence-class partition, per-column
    /// interval, or residual-predicate set) differ, so the rewrite cannot
    /// be equivalent. The diagnostic names the offending column or
    /// predicate.
    SymbolicMismatch,
    /// MV302 — the prover's enumerative pass found a constraint-
    /// satisfying database, within bound k, on which query and substitute
    /// return different row bags. The diagnostic renders the full witness
    /// database and a replayable seed.
    Counterexample,
    /// MV303 — the prove budget ran out (or a value domain was truncated)
    /// before the bound-k space was exhausted: no counterexample in the
    /// explored prefix, but equivalence is not certified even up to k.
    ProveBudgetExhausted,
    /// MV304 — the pair is outside the prover's supported fragment
    /// (foreign-key cycle among the referenced tables, or a row domain
    /// past the enumerator's hard cap): nothing was checked.
    ProveUnsupported,
    /// MV401 — a maintained view's stored contents differ from
    /// recompute-from-scratch as row bags: some delta was propagated
    /// wrongly (or applied twice, or skipped). The diagnostic shows the
    /// bag difference.
    MaintainedDrift,
    /// MV402 — a substitute stamped `Fresh` was served from a view whose
    /// data epochs trail the current table epochs: the freshness gate or
    /// the stamp bookkeeping is broken, and the rewrite may read data the
    /// base tables no longer contain.
    StaleServing,
    /// MV403 — an aggregate view retains a group whose maintained count
    /// reached zero (or stores a non-positive count): counting maintenance
    /// must delete emptied groups, or re-aggregation resurrects phantom
    /// groups.
    ZombieGroup,
    /// MV404 — a view's data-epoch stamp is *ahead* of the current table
    /// epoch for some base table: stamps may only trail table epochs, so a
    /// lead means forged or reordered maintenance bookkeeping.
    StampRegression,
}

impl RuleId {
    /// Stable machine-readable code.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::ColumnBounds => "MV001",
            RuleId::EcContradiction => "MV002",
            RuleId::EmptyRange => "MV003",
            RuleId::TableCorrespondence => "MV004",
            RuleId::EquijoinSubsumption => "MV005",
            RuleId::EquijoinCompensation => "MV006",
            RuleId::RangeSubsumption => "MV007",
            RuleId::RangeCompensation => "MV008",
            RuleId::ResidualSubsumption => "MV009",
            RuleId::ResidualCompensation => "MV010",
            RuleId::OutputMapping => "MV011",
            RuleId::SubstituteColumn => "MV012",
            RuleId::FkElimination => "MV013",
            RuleId::BackjoinKey => "MV014",
            RuleId::AggRollup => "MV015",
            RuleId::AggViewNoCount => "MV016",
            RuleId::PlanInvariant => "MV017",
            RuleId::ExecMismatch => "MV018",
            RuleId::IndexEntry => "MV101",
            RuleId::FilterCompleteness => "MV102",
            RuleId::HubInvariant => "MV103",
            RuleId::IndexTokenBounds => "MV104",
            RuleId::ArenaSpan => "MV105",
            RuleId::EquivalentViews => "MV110",
            RuleId::SubsumedView => "MV111",
            RuleId::DeadView => "MV112",
            RuleId::FkNullableColumn => "MV120",
            RuleId::FkNotUniqueKey => "MV121",
            RuleId::FkTypeMismatch => "MV122",
            RuleId::FkColumnBounds => "MV123",
            RuleId::DuplicateFk => "MV124",
            RuleId::KeyNullableColumn => "MV125",
            RuleId::KeyColumnBounds => "MV126",
            RuleId::RawSyncPrimitive => "MV201",
            RuleId::RelaxedOrdering => "MV202",
            RuleId::RawEngineState => "MV203",
            RuleId::UnguardedClock => "MV204",
            RuleId::UnwrapOnLock => "MV205",
            RuleId::ExpectOnLock => "MV206",
            RuleId::SymbolicMismatch => "MV301",
            RuleId::Counterexample => "MV302",
            RuleId::ProveBudgetExhausted => "MV303",
            RuleId::ProveUnsupported => "MV304",
            RuleId::MaintainedDrift => "MV401",
            RuleId::StaleServing => "MV402",
            RuleId::ZombieGroup => "MV403",
            RuleId::StampRegression => "MV404",
        }
    }

    /// Short rule name, as listed in DESIGN.md §9.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::ColumnBounds => "column-bounds",
            RuleId::EcContradiction => "ec-contradiction",
            RuleId::EmptyRange => "empty-range",
            RuleId::TableCorrespondence => "table-correspondence",
            RuleId::EquijoinSubsumption => "equijoin-subsumption",
            RuleId::EquijoinCompensation => "equijoin-compensation",
            RuleId::RangeSubsumption => "range-subsumption",
            RuleId::RangeCompensation => "range-compensation",
            RuleId::ResidualSubsumption => "residual-subsumption",
            RuleId::ResidualCompensation => "residual-compensation",
            RuleId::OutputMapping => "output-mapping",
            RuleId::SubstituteColumn => "substitute-column",
            RuleId::FkElimination => "fk-elimination",
            RuleId::BackjoinKey => "backjoin-key",
            RuleId::AggRollup => "agg-rollup",
            RuleId::AggViewNoCount => "agg-view-no-count",
            RuleId::PlanInvariant => "plan-invariant",
            RuleId::ExecMismatch => "exec-mismatch",
            RuleId::IndexEntry => "index-entry",
            RuleId::FilterCompleteness => "filter-completeness",
            RuleId::HubInvariant => "hub-invariant",
            RuleId::IndexTokenBounds => "index-token-bounds",
            RuleId::ArenaSpan => "arena-span",
            RuleId::EquivalentViews => "equivalent-views",
            RuleId::SubsumedView => "subsumed-view",
            RuleId::DeadView => "dead-view",
            RuleId::FkNullableColumn => "fk-nullable-column",
            RuleId::FkNotUniqueKey => "fk-not-unique-key",
            RuleId::FkTypeMismatch => "fk-type-mismatch",
            RuleId::FkColumnBounds => "fk-column-bounds",
            RuleId::DuplicateFk => "duplicate-fk",
            RuleId::KeyNullableColumn => "key-nullable-column",
            RuleId::KeyColumnBounds => "key-column-bounds",
            RuleId::RawSyncPrimitive => "raw-sync-primitive",
            RuleId::RelaxedOrdering => "relaxed-ordering",
            RuleId::RawEngineState => "raw-engine-state",
            RuleId::UnguardedClock => "unguarded-clock",
            RuleId::UnwrapOnLock => "unwrap-on-lock",
            RuleId::ExpectOnLock => "expect-on-lock",
            RuleId::SymbolicMismatch => "symbolic-mismatch",
            RuleId::Counterexample => "counterexample",
            RuleId::ProveBudgetExhausted => "prove-budget-exhausted",
            RuleId::ProveUnsupported => "prove-unsupported",
            RuleId::MaintainedDrift => "maintained-drift",
            RuleId::StaleServing => "stale-serving",
            RuleId::ZombieGroup => "zombie-group",
            RuleId::StampRegression => "stamp-regression",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.code(), self.name())
    }
}

/// Severity policy: `Error` means the substitute (or expression) can
/// produce wrong results; `Warning` means degenerate-but-legal (an empty
/// range, a rollup-limiting view shape); `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Span-like context: which artifact a diagnostic refers to. All fields
/// optional; renderers skip empty ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Context {
    /// View name (or id) involved, if any.
    pub view: Option<String>,
    /// Query label, if any.
    pub query: Option<String>,
    /// The conjunct, output item, or column the rule fired on.
    pub detail: Option<String>,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: RuleId,
    pub severity: Severity,
    pub message: String,
    pub context: Context,
}

impl Diagnostic {
    pub fn new(rule: RuleId, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity,
            message: message.into(),
            context: Context::default(),
        }
    }

    pub fn error(rule: RuleId, message: impl Into<String>) -> Self {
        Self::new(rule, Severity::Error, message)
    }

    pub fn warning(rule: RuleId, message: impl Into<String>) -> Self {
        Self::new(rule, Severity::Warning, message)
    }

    pub fn with_view(mut self, view: impl Into<String>) -> Self {
        self.context.view = Some(view.into());
        self
    }

    pub fn with_query(mut self, query: impl Into<String>) -> Self {
        self.context.query = Some(query.into());
        self
    }

    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.context.detail = Some(detail.into());
        self
    }

    /// Render as a JSON object (no serde in the workspace; diagnostics are
    /// flat enough to emit by hand, like the bench records).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"rule\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \"message\": {}",
            self.rule.code(),
            self.rule.name(),
            self.severity,
            json_string(&self.message)
        );
        if let Some(v) = &self.context.view {
            out.push_str(&format!(", \"view\": {}", json_string(v)));
        }
        if let Some(q) = &self.context.query {
            out.push_str(&format!(", \"query\": {}", json_string(q)));
        }
        if let Some(d) = &self.context.detail {
            out.push_str(&format!(", \"detail\": {}", json_string(d)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.severity, self.rule, self.message)?;
        if let Some(v) = &self.context.view {
            write!(f, " [view {v}]")?;
        }
        if let Some(q) = &self.context.query {
            write!(f, " [query {q}]")?;
        }
        if let Some(d) = &self.context.detail {
            write!(f, " [{d}]")?;
        }
        Ok(())
    }
}

/// A collection of diagnostics with severity tallies, renderable as a JSON
/// report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Self {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Render the whole report as a JSON document.
    pub fn to_json(&self, title: &str) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"report\": {},\n", json_string(title)));
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&d.to_json());
            if i + 1 < self.diagnostics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic::error(RuleId::RangeSubsumption, "bad \"range\"")
            .with_view("v1")
            .with_detail("line\nbreak");
        let j = d.to_json();
        assert!(j.contains("\\\"range\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("MV007"));
    }

    #[test]
    fn report_tallies() {
        let mut r = Report::new();
        r.push(Diagnostic::error(RuleId::ColumnBounds, "x"));
        r.push(Diagnostic::warning(RuleId::EmptyRange, "y"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        let json = r.to_json("test");
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 1"));
    }
}
