//! Plan-level invariants (MV017): bottom-up arity and column-reference
//! checking over a [`PhysicalPlan`].
//!
//! Every operator's output arity is derived from the catalog and the view
//! registry, and every column reference, join key, and aggregate argument
//! is checked against the arity of the operator it reads from. A plan that
//! passes cannot index past a row during execution.

use crate::diag::{Diagnostic, RuleId};
use mv_catalog::Catalog;
use mv_expr::ColRef;
use mv_plan::{PhysicalPlan, ViewSet};

/// Verify a physical plan bottom-up. Empty result = structurally sound.
pub fn verify_plan(catalog: &Catalog, views: &ViewSet, plan: &PhysicalPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    arity_of(catalog, views, plan, &mut diags);
    diags
}

fn bad(diags: &mut Vec<Diagnostic>, detail: String) {
    diags.push(Diagnostic::error(RuleId::PlanInvariant, detail));
}

/// Check that every column reference reads occurrence 0 at a position
/// below `arity`.
fn check_cols(cols: &[ColRef], arity: usize, what: &str, diags: &mut Vec<Diagnostic>) {
    for c in cols {
        if c.occ.0 != 0 {
            bad(
                diags,
                format!("{what} references {c}; plan rows are single-occurrence (occ 0)"),
            );
        } else if (c.col.0 as usize) >= arity {
            bad(
                diags,
                format!(
                    "{what} references column {} of a {arity}-column input row",
                    c.col.0
                ),
            );
        }
    }
}

/// The operator's output arity; `None` after a shape error that makes the
/// arity meaningless upstream (diagnostics already recorded).
fn arity_of(
    catalog: &Catalog,
    views: &ViewSet,
    plan: &PhysicalPlan,
    diags: &mut Vec<Diagnostic>,
) -> Option<usize> {
    match plan {
        PhysicalPlan::TableScan { table } => Some(catalog.table(*table).columns.len()),
        PhysicalPlan::ViewScan { view } => {
            if (view.0 as usize) >= views.len() {
                bad(diags, format!("plan scans unregistered view {view}"));
                return None;
            }
            Some(views.get(*view).expr.output_arity())
        }
        PhysicalPlan::Filter { input, predicate } => {
            let arity = arity_of(catalog, views, input, diags)?;
            check_cols(&predicate.columns(), arity, "filter predicate", diags);
            Some(arity)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let la = arity_of(catalog, views, left, diags);
            let ra = arity_of(catalog, views, right, diags);
            let (la, ra) = (la?, ra?);
            if left_keys.len() != right_keys.len() {
                bad(
                    diags,
                    format!(
                        "hash join key lists differ in length ({} vs {})",
                        left_keys.len(),
                        right_keys.len()
                    ),
                );
            }
            for &k in left_keys {
                if k >= la {
                    bad(
                        diags,
                        format!("hash join left key {k} exceeds left arity {la}"),
                    );
                }
            }
            for &k in right_keys {
                if k >= ra {
                    bad(
                        diags,
                        format!("hash join right key {k} exceeds right arity {ra}"),
                    );
                }
            }
            if let Some(r) = residual {
                check_cols(&r.columns(), la + ra, "hash join residual", diags);
            }
            Some(la + ra)
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let la = arity_of(catalog, views, left, diags);
            let ra = arity_of(catalog, views, right, diags);
            let (la, ra) = (la?, ra?);
            if let Some(p) = predicate {
                check_cols(&p.columns(), la + ra, "nested-loop predicate", diags);
            }
            Some(la + ra)
        }
        PhysicalPlan::Project { input, exprs } => {
            let arity = arity_of(catalog, views, input, diags)?;
            for e in exprs {
                check_cols(&e.columns(), arity, "projection expression", diags);
            }
            Some(exprs.len())
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let arity = arity_of(catalog, views, input, diags)?;
            for e in group_by {
                check_cols(&e.columns(), arity, "grouping expression", diags);
            }
            for a in aggregates {
                if let Some(arg) = a.argument() {
                    check_cols(&arg.columns(), arity, "aggregate argument", diags);
                }
            }
            Some(group_by.len() + aggregates.len())
        }
    }
}
