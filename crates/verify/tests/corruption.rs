//! The analyzer catches deliberately corrupted substitutes with the
//! expected rule, while the genuine matcher-produced originals pass.
//!
//! Each test follows the same shape: run the real matcher over a
//! (query, view) pair from the paper's running examples, assert the
//! produced substitute verifies clean, then apply one targeted mutation —
//! to the substitute, or to the view side of the triple — and assert the
//! analyzer reports exactly the rule that condition re-derives.

use mv_catalog::tpch::{tpch_catalog, TpchTables};
use mv_core::{MatchConfig, MatchingEngine};
use mv_expr::{BinOp, BoolExpr, CmpOp, ColRef, Conjunct, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr, Substitute, ViewDef};
use mv_verify::{verify_substitute, Severity, VerifyContext};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn out(items: &[(u32, u32, &str)]) -> Vec<NamedExpr> {
    items
        .iter()
        .map(|(o, c, n)| NamedExpr::new(S::col(cr(*o, *c)), *n))
        .collect()
}

/// Run the matcher over one (query, view) pair and return the substitute
/// along with the engine (which owns the catalog and check constraints).
fn matched(query: &SpjgExpr, view: SpjgExpr, config: MatchConfig) -> (MatchingEngine, Substitute) {
    let (catalog, _) = tpch_catalog();
    let engine = MatchingEngine::new(catalog, config);
    engine.add_view(ViewDef::new("v", view)).unwrap();
    let mut subs = engine.find_substitutes(query);
    assert_eq!(subs.len(), 1, "the matcher must produce this substitute");
    let (_, sub) = subs.pop().unwrap();
    (engine, sub)
}

/// Error rule codes the analyzer reports for the triple, deduplicated in
/// order of first appearance.
fn error_codes(
    engine: &MatchingEngine,
    query: &SpjgExpr,
    view: &SpjgExpr,
    sub: &Substitute,
) -> Vec<&'static str> {
    let checks = engine.check_constraints();
    let ctx = VerifyContext::new(engine.catalog(), &checks);
    let mut codes = Vec::new();
    for d in verify_substitute(&ctx, query, view, sub, "v", "q") {
        if d.severity == Severity::Error && !codes.contains(&d.rule.code()) {
            codes.push(d.rule.code());
        }
    }
    codes
}

fn assert_clean(engine: &MatchingEngine, query: &SpjgExpr, view: &SpjgExpr, sub: &Substitute) {
    let codes = error_codes(engine, query, view, sub);
    assert!(codes.is_empty(), "genuine substitute rejected: {codes:?}");
}

/// The SPJ running pair: view keeps l_quantity > 10, the query narrows to
/// (10, 30]; the matcher compensates with a range predicate on the view's
/// quantity output.
fn range_pair(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 4, "l_quantity"),
            (0, 5, "l_extendedprice"),
        ]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Le, S::lit(30i64)),
        ]),
        out(&[(0, 0, "l_orderkey"), (0, 5, "l_extendedprice")]),
    );
    (query, view)
}

/// Example 4's aggregate pair: the view groups by o_custkey with
/// count_big(*) and sum(l_quantity * l_extendedprice); the scalar query
/// rolls both up over all groups.
fn rollup_pair(t: &TpchTables) -> (SpjgExpr, SpjgExpr) {
    let revenue = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let view = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![
            NamedAgg::new(AggFunc::CountStar, "cnt"),
            NamedAgg::new(AggFunc::Sum(revenue.clone()), "revenue"),
        ],
    );
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![],
        vec![
            NamedAgg::new(AggFunc::Sum(revenue), "rev"),
            NamedAgg::new(AggFunc::CountStar, "n"),
        ],
    );
    (query, view)
}

// ---------------------------------------------------------------------
// Column-space corruptions
// ---------------------------------------------------------------------

/// MV001: an output column beyond the view + backjoin column space.
#[test]
fn out_of_range_column_caught_by_mv001() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    if let OutputList::Spj(items) = &mut bad.output {
        items[0].expr = S::col(cr(0, 99));
    }
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV001"]);
}

/// MV012: a substitute may only address occurrence 0 (the view scan).
#[test]
fn non_view_occurrence_caught_by_mv012() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    if let OutputList::Spj(items) = &mut bad.output {
        items[0].expr = S::col(cr(1, 0));
    }
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV012"]);
}

// ---------------------------------------------------------------------
// Range compensation corruptions (§3.1.3)
// ---------------------------------------------------------------------

/// MV008: dropping the compensating range keeps rows the query filters
/// out.
#[test]
fn dropped_range_compensation_caught_by_mv008() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(!sub.predicates.is_empty(), "this pair needs compensation");
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    bad.predicates.clear();
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV008"]);
}

/// MV008 (other direction): an over-strong compensating range drops query
/// rows.
#[test]
fn contradictory_range_compensation_caught_by_mv008() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    // l_quantity is substitute column 1; the query allows up to 30.
    bad.predicates
        .push(BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(0i64)));
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV008"]);
}

// ---------------------------------------------------------------------
// Equijoin compensation corruptions (§3.1.3)
// ---------------------------------------------------------------------

/// MV006: removing the compensating equality leaves a query equality
/// enforced by nothing.
#[test]
fn dropped_equality_compensation_caught_by_mv006() {
    let (_, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::Literal(true),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 10, "l_shipdate"),
            (0, 11, "l_commitdate"),
        ]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::col_eq(cr(0, 10), cr(0, 11)),
        out(&[(0, 0, "l_orderkey")]),
    );
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(!sub.predicates.is_empty(), "this pair needs compensation");
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    bad.predicates.clear();
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV006"]);
}

/// MV006 (other direction): a compensating equality the query does not
/// imply drops query rows.
#[test]
fn unjustified_equality_compensation_caught_by_mv006() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    // orderkey = quantity (substitute columns 0 and 1) is nothing the
    // query implies.
    bad.predicates.push(BoolExpr::col_eq(cr(0, 0), cr(0, 1)));
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV006"]);
}

// ---------------------------------------------------------------------
// Residual compensation corruptions (§3.1.3)
// ---------------------------------------------------------------------

/// MV010: dropping the compensating residual (a LIKE the query needs).
#[test]
fn dropped_residual_compensation_caught_by_mv010() {
    let (_, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.customer],
        BoolExpr::Literal(true),
        out(&[(0, 0, "c_custkey"), (0, 1, "c_name")]),
    );
    let query = SpjgExpr::spj(
        vec![t.customer],
        BoolExpr::Like {
            expr: S::col(cr(0, 1)),
            pattern: "%Best%".into(),
            negated: false,
        },
        out(&[(0, 0, "c_custkey")]),
    );
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(!sub.predicates.is_empty(), "this pair needs compensation");
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    bad.predicates.clear();
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV010"]);
}

/// MV010 (other direction): a compensating residual the query never asked
/// for drops query rows.
#[test]
fn unjustified_residual_compensation_caught_by_mv010() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    bad.predicates.push(BoolExpr::Like {
        expr: S::col(cr(0, 0)),
        pattern: "%7%".into(),
        negated: true,
    });
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV010"]);
}

// ---------------------------------------------------------------------
// Output mapping corruption (§3.1.4)
// ---------------------------------------------------------------------

/// MV011: projecting the wrong view column.
#[test]
fn wrong_output_column_caught_by_mv011() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    if let OutputList::Spj(items) = &mut bad.output {
        // l_quantity (column 1) instead of l_extendedprice (column 2).
        items[1].expr = S::col(cr(0, 1));
    }
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV011"]);
}

// ---------------------------------------------------------------------
// Aggregate rollup corruptions (§3.3)
// ---------------------------------------------------------------------

/// MV015: COUNT(*) over regrouped view rows counts view groups, not base
/// rows — it must roll up as SUM(view cnt).
#[test]
fn countstar_instead_of_sum_rollup_caught_by_mv015() {
    let (_, t) = tpch_catalog();
    let (query, view) = rollup_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert!(sub.regroups(), "the scalar query must re-aggregate");
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    if let OutputList::Aggregate { aggregates, .. } = &mut bad.output {
        aggregates[1].func = AggFunc::CountStar;
    }
    assert_eq!(error_codes(&engine, &query, &view, &bad), ["MV015"]);
}

/// MV015: grouping compensation must be a coarsening of the view's
/// grouping — it may not regroup on an aggregate output.
#[test]
fn group_by_on_aggregate_output_caught_by_mv015() {
    let (_, t) = tpch_catalog();
    let revenue = S::col(cr(0, 4)).binary(BinOp::Mul, S::col(cr(0, 5)));
    let (_, view) = rollup_pair(&t);
    // Same as the rollup pair, but the query keeps the o_custkey grouping
    // so the substitute has a group-by item to corrupt.
    let query = SpjgExpr::aggregate(
        vec![t.lineitem, t.orders],
        BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
        vec![NamedExpr::new(S::col(cr(1, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::Sum(revenue), "rev")],
    );
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    match &mut bad.output {
        // Same-grouping substitutes project; rewrite into a regrouping
        // substitute whose group-by sits on the view's cnt output (1).
        OutputList::Spj(items) => {
            bad.output = OutputList::Aggregate {
                group_by: vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
                aggregates: vec![NamedAgg::new(
                    AggFunc::Sum(S::col(cr(0, 2))),
                    items[1].name.clone(),
                )],
            };
        }
        OutputList::Aggregate { group_by, .. } => {
            group_by[0].expr = S::col(cr(0, 1));
        }
    }
    let codes = error_codes(&engine, &query, &view, &bad);
    assert!(codes.contains(&"MV015"), "got {codes:?}");
}

// ---------------------------------------------------------------------
// Backjoin corruption (§7 extension)
// ---------------------------------------------------------------------

/// MV014: a backjoin keyed on columns that do not cover a unique key (or
/// are not view-equal to the joined substitute columns) multiplies or
/// drops rows.
#[test]
fn broken_backjoin_key_caught_by_mv014() {
    let (_, t) = tpch_catalog();
    let view = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 3, "l_linenumber"),
            (0, 4, "l_quantity"),
        ]),
    );
    let query = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(10i64)),
            BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Le, S::lit(30i64)),
        ]),
        out(&[(0, 0, "l_orderkey"), (0, 5, "l_extendedprice")]),
    );
    let config = MatchConfig {
        allow_backjoins: true,
        ..MatchConfig::default()
    };
    let (engine, sub) = matched(&query, view.clone(), config);
    assert_eq!(sub.backjoins.len(), 1, "this pair needs a backjoin");
    assert_clean(&engine, &query, &view, &sub);

    let mut bad = sub;
    // Key the backjoin on l_quantity alone — not a unique key of lineitem.
    bad.backjoins[0].key = vec![(2, mv_catalog::ColumnId(4))];
    let codes = error_codes(&engine, &query, &view, &bad);
    assert!(codes.contains(&"MV014"), "got {codes:?}");
}

// ---------------------------------------------------------------------
// Triple-level corruptions: the view side of the (query, view,
// substitute) correspondence
// ---------------------------------------------------------------------

/// MV004: the view's tables cannot cover the query's.
#[test]
fn uncovered_tables_caught_by_mv004() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let other_query = SpjgExpr::spj(
        vec![t.orders],
        BoolExpr::Literal(true),
        out(&[(0, 0, "o_orderkey"), (0, 3, "o_totalprice")]),
    );
    assert_eq!(error_codes(&engine, &other_query, &view, &sub), ["MV004"]);
}

/// MV013: an extra view table with no cardinality-preserving foreign-key
/// join path cannot be eliminated.
#[test]
fn extra_table_without_fk_join_caught_by_mv013() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    // A cross-joined orders occurrence: tables still cover the query, but
    // nothing eliminates the extra.
    let mut cross = view.clone();
    cross.tables.push(t.orders);
    let codes = error_codes(&engine, &query, &cross, &sub);
    assert!(codes.contains(&"MV013"), "got {codes:?}");
}

/// MV005: the view enforces a column equality the query does not imply.
#[test]
fn view_only_equality_caught_by_mv005() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut eq_view = view.clone();
    eq_view
        .conjuncts
        .push(Conjunct::ColumnEq(cr(0, 10), cr(0, 11)));
    let codes = error_codes(&engine, &query, &eq_view, &sub);
    assert!(codes.contains(&"MV005"), "got {codes:?}");
}

/// MV007: the view's range does not contain the query's range.
#[test]
fn view_narrower_range_caught_by_mv007() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    // Tighten the view to l_quantity > 20; the query needs (10, 30].
    let narrow = SpjgExpr::spj(
        vec![t.lineitem],
        BoolExpr::cmp(S::col(cr(0, 4)), CmpOp::Gt, S::lit(20i64)),
        out(&[
            (0, 0, "l_orderkey"),
            (0, 4, "l_quantity"),
            (0, 5, "l_extendedprice"),
        ]),
    );
    let codes = error_codes(&engine, &query, &narrow, &sub);
    assert!(codes.contains(&"MV007"), "got {codes:?}");
}

/// MV009: the view carries a residual predicate the query lacks.
#[test]
fn view_only_residual_caught_by_mv009() {
    let (_, t) = tpch_catalog();
    let (query, view) = range_pair(&t);
    let (engine, sub) = matched(&query, view.clone(), MatchConfig::default());
    assert_clean(&engine, &query, &view, &sub);

    let mut filtered = view.clone();
    filtered.conjuncts.push(Conjunct::Residual(BoolExpr::Like {
        expr: S::col(cr(0, 1)),
        pattern: "%xyz%".into(),
        negated: false,
    }));
    let codes = error_codes(&engine, &query, &filtered, &sub);
    assert!(codes.contains(&"MV009"), "got {codes:?}");
}
