//! Pass 2 — catalog redundancy (rules MV110–MV112).
//!
//! Runs the matcher *reflexively*: each registered view's SPJG definition
//! is treated as a query against the whole catalog, which yields the
//! view-subsumption DAG — an edge `a → b` means "`a` is computable from
//! `b`" (`b` subsumes `a`). From the DAG the pass flags:
//!
//! * **MV110** (warning) — equivalent pairs: `a → b` and `b → a`. One of
//!   the two is redundant storage, and both inflate every candidate set
//!   their partition reaches.
//! * **MV111** (warning) — strictly subsumed views: `a → b` without the
//!   reverse. `a` adds no rewriting *power* over `b` (it may still win on
//!   cost, so this is advisory).
//! * **MV112** (info) — workload-dead views: views that produced no
//!   substitute for any audited workload query.
//!
//! Severities are deliberately sub-error: a randomly generated §5 workload
//! legitimately contains redundant and dead views, and CI must stay green
//! on the unmutated workload.

use mv_core::MatchingEngine;
use mv_plan::{SpjgExpr, ViewId};
use mv_verify::{Diagnostic, Report, RuleId, Severity};
use std::collections::HashSet;

/// The view-subsumption structure the pass derives.
#[derive(Debug, Default)]
pub struct RedundancyAudit {
    /// `(a, b)` with `a ≠ b`: view `a`'s definition is computable from
    /// view `b` (`b` subsumes `a`).
    pub edges: Vec<(ViewId, ViewId)>,
    /// Mutually-subsuming pairs, `(a, b)` with `a < b`.
    pub equivalent: Vec<(ViewId, ViewId)>,
    /// `(a, b)`: `a` strictly subsumed by `b` (no reverse edge).
    pub subsumed: Vec<(ViewId, ViewId)>,
    /// Live views that matched no workload query.
    pub dead: Vec<ViewId>,
}

/// Build the subsumption DAG and report redundancy findings.
pub fn audit_redundancy(
    engine: &MatchingEngine,
    queries: &[SpjgExpr],
) -> (RedundancyAudit, Report) {
    let mut audit = RedundancyAudit::default();
    let mut report = Report::new();

    let mut edge_set: HashSet<(ViewId, ViewId)> = HashSet::new();
    for (id, view) in engine.views().iter() {
        if engine.is_removed(id) {
            continue;
        }
        for (other, _) in engine.find_substitutes(&view.expr) {
            if other != id {
                edge_set.insert((id, other));
            }
        }
    }
    audit.edges = edge_set.iter().copied().collect();
    audit.edges.sort();

    let name = |id: ViewId| engine.views().get(id).name.clone();
    for &(a, b) in &audit.edges {
        if a < b && edge_set.contains(&(b, a)) {
            audit.equivalent.push((a, b));
            report.push(
                Diagnostic::warning(
                    RuleId::EquivalentViews,
                    "two registered views are equivalent — each is computable from \
                     the other; one is redundant storage",
                )
                .with_view(name(a))
                .with_detail(format!("equivalent to `{}`", name(b))),
            );
        } else if !edge_set.contains(&(b, a)) {
            audit.subsumed.push((a, b));
            report.push(
                Diagnostic::warning(
                    RuleId::SubsumedView,
                    "view is strictly subsumed by another view and adds no \
                     rewriting power",
                )
                .with_view(name(a))
                .with_detail(format!("subsumed by `{}`", name(b))),
            );
        }
    }

    let mut used: HashSet<ViewId> = HashSet::new();
    for query in queries {
        for (id, _) in engine.find_substitutes(query) {
            used.insert(id);
        }
    }
    for (id, view) in engine.views().iter() {
        if engine.is_removed(id) || used.contains(&id) {
            continue;
        }
        audit.dead.push(id);
        report.push(
            Diagnostic::new(
                RuleId::DeadView,
                Severity::Info,
                format!(
                    "view produced no substitute for any of the {} audited \
                     workload queries",
                    queries.len()
                ),
            )
            .with_view(&view.name),
        );
    }

    (audit, report)
}
