//! Pass 1 — index completeness (rules MV101–MV104).
//!
//! The filter tree (paper §4) is an *index* over the view catalog: every
//! search must return a superset of the views the exhaustive matcher would
//! accept. This pass proves that from two independent directions:
//!
//! 1. **Static entry validation** ([`audit_stored_entries`]): walk every
//!    `(view, keys)` entry both trees actually store and check it against
//!    a fresh, read-only re-derivation of the view's level keys from its
//!    definition (MV101), the hub ⊆ source-tables invariant that the
//!    level-1 subset search relies on (MV103), and token well-formedness —
//!    every stored token must decode to a catalog table/column or an
//!    interned template text (MV104).
//! 2. **Differential check** ([`audit_differential`]): for each workload
//!    query, run the filter-tree search and the exhaustive matcher over
//!    all live views; any view the matcher accepts but the filter prunes
//!    is attributed to the first level whose stored condition fails
//!    (MV102) — unless the only rejecting levels are the documented
//!    §4.2.7 strict-expression-filter conservatism, which is reported as
//!    an INFO note instead.
//!
//! The static direction also validates the *packed* catalog the precheck
//! reads (DESIGN.md §13): every record's arena spans must be in bounds
//! and well-formed (MV105), and — since the precheck trusts the packed
//! pages the way the search trusts the stored keys — the MV101/MV103/
//! MV104 re-derivations read the packed layout too: packed table counts
//! must match a fresh count over the view definition (MV101), the stored
//! hub must be contained in the packed table set (MV103), and every
//! packed token must decode against the catalog/interner (MV104).

use mv_core::{
    decode_col_token, strict_filter_exempt_levels, table_token, MatchingEngine, AGG_LEVELS,
    LEVEL_NAMES, SPJ_LEVELS,
};
use mv_plan::{SpjgExpr, ViewId};
use mv_verify::{Diagnostic, Report, RuleId, Severity};
use std::collections::HashMap;

/// Filter-tree levels keyed by table tokens.
const TABLE_LEVELS: [usize; 2] = [0, 1];
/// Filter-tree levels keyed by base-qualified column tokens.
const COL_LEVELS: [usize; 3] = [3, 5, 7];
/// Filter-tree levels keyed by interned template-text tokens.
const TEXT_LEVELS: [usize; 3] = [2, 4, 6];

/// Run the full index-completeness pass.
pub fn audit_index(engine: &MatchingEngine, queries: &[SpjgExpr]) -> Report {
    let mut report = Report::new();
    audit_stored_entries(engine, &mut report);
    audit_differential(engine, queries, &mut report);
    report
}

fn normalized(key: &[u64]) -> Vec<u64> {
    let mut k = key.to_vec();
    k.sort_unstable();
    k.dedup();
    k
}

fn view_label(engine: &MatchingEngine, id: ViewId) -> String {
    if (id.0 as usize) < engine.views().len() {
        engine.views().get(id).name.clone()
    } else {
        format!("view#{}", id.0)
    }
}

/// Static validation of every stored index entry (MV101/MV103/MV104).
pub fn audit_stored_entries(engine: &MatchingEngine, report: &mut Report) {
    let entries = engine.filter_entries();
    let mut stored: HashMap<ViewId, &Vec<Vec<u64>>> = HashMap::new();
    for (id, keys) in &entries {
        if (id.0 as usize) >= engine.views().len() || engine.is_removed(*id) {
            report.push(
                Diagnostic::error(
                    RuleId::IndexEntry,
                    "filter tree stores a view id the engine does not consider live",
                )
                .with_view(view_label(engine, *id)),
            );
            continue;
        }
        if stored.insert(*id, keys).is_some() {
            report.push(
                Diagnostic::error(
                    RuleId::IndexEntry,
                    "view is filed more than once across the filter trees",
                )
                .with_view(view_label(engine, *id)),
            );
        }
    }

    for (id, view) in engine.views().iter() {
        if engine.is_removed(id) {
            continue;
        }
        let depth = if view.expr.is_aggregate() {
            AGG_LEVELS
        } else {
            SPJ_LEVELS
        };
        let Some(keys) = stored.get(&id) else {
            report.push(
                Diagnostic::error(
                    RuleId::IndexEntry,
                    "live view is missing from its filter tree — no search can ever return it",
                )
                .with_view(&view.name),
            );
            continue;
        };
        let derived = engine
            .view_filter_keys(id)
            .expect("live view has derivable keys");
        // Stale entry: the stored keys differ from what the definition
        // derives today (MV101).
        let stale: Vec<&str> = (0..depth.min(keys.len()))
            .filter(|&lvl| keys[lvl] != normalized(&derived[lvl]))
            .map(|lvl| LEVEL_NAMES[lvl])
            .collect();
        if keys.len() != depth || !stale.is_empty() {
            report.push(
                Diagnostic::error(
                    RuleId::IndexEntry,
                    "view is filed under stale keys that no longer match its definition",
                )
                .with_view(&view.name)
                .with_detail(format!("stale levels: {stale:?}")),
            );
        }
        audit_entry_obligations(engine, &view.name, keys, report);
        audit_packed_record(engine, id, &view.name, keys, report);
    }
}

/// Validate the packed-catalog record backing the precheck for one live
/// view: span well-formedness first (MV105) — the accessors index the
/// arenas with the spans, so nothing else is checkable when they are
/// broken — then the packed re-derivations of MV101/MV103/MV104.
fn audit_packed_record(
    engine: &MatchingEngine,
    id: ViewId,
    view_name: &str,
    stored_keys: &[Vec<u64>],
    report: &mut Report,
) {
    let packed = engine.packed();
    if let Err(detail) = packed.validate_spans(id) {
        report.push(
            Diagnostic::error(
                RuleId::ArenaSpan,
                "packed descriptor record holds an invalid arena span",
            )
            .with_view(view_name)
            .with_detail(detail),
        );
        return;
    }
    let catalog = engine.catalog();
    let n_tables = catalog.table_count() as u64;

    // MV101 re-derived from the packed layout: the packed (table,
    // occurrence-count) page must equal a fresh count over the view
    // definition — a stale page prechecks against the wrong pigeonholes.
    let view = engine.views().get(id).clone();
    let mut derived: HashMap<u64, u32> = HashMap::new();
    for (_, t) in view.expr.occurrences() {
        *derived.entry(table_token(t)).or_insert(0) += 1;
    }
    let stored_counts: HashMap<u64, u32> = packed
        .table_counts(id)
        .map(|(t, occ, _)| (table_token(t), occ))
        .collect();
    if stored_counts != derived {
        report.push(
            Diagnostic::error(
                RuleId::IndexEntry,
                "packed table/occurrence page no longer matches the view definition",
            )
            .with_view(view_name)
            .with_detail(format!("packed {stored_counts:?} vs derived {derived:?}")),
        );
    }

    // MV103 re-derived from the packed layout: the stored hub must be a
    // subset of the packed table set — the precheck's merged table scan
    // assumes the hub argument holds for the pages it walks.
    if let Some(hub) = stored_keys.first() {
        if !hub.iter().all(|t| stored_counts.contains_key(t)) {
            report.push(
                Diagnostic::error(
                    RuleId::HubInvariant,
                    "stored hub key is not a subset of the packed table page",
                )
                .with_view(view_name)
                .with_detail(format!(
                    "hub {hub:?} vs packed tables {:?}",
                    packed.table_counts(id).map(|(t, ..)| t).collect::<Vec<_>>()
                )),
            );
        }
    }

    // MV104 re-derived from the packed layout: every packed token must
    // decode against the catalog (tables, equivalence/range columns) or
    // the interner (residual template texts).
    for (t, ..) in packed.table_counts(id) {
        if table_token(t) >= n_tables {
            report.push(
                Diagnostic::error(
                    RuleId::IndexTokenBounds,
                    format!("packed table token {} names no catalog table", t.0),
                )
                .with_view(view_name)
                .with_detail("packed table page".to_string()),
            );
        }
    }
    for (page, tokens) in [
        ("packed equivalence-column page", packed.ec_cols(id)),
        ("packed range-column page", packed.range_cols(id)),
    ] {
        for &c in tokens {
            let (table, col) = decode_col_token(c);
            let valid = (table.0 as u64) < n_tables
                && (col.0 as usize) < catalog.table(table).columns.len();
            if !valid {
                report.push(
                    Diagnostic::error(
                        RuleId::IndexTokenBounds,
                        format!("packed column token {c} decodes to no catalog column"),
                    )
                    .with_view(view_name)
                    .with_detail(page.to_string()),
                );
            }
        }
    }
    for &t in packed.residual_tokens(id) {
        if u64::from(t) >= engine.known_token_count() {
            report.push(
                Diagnostic::error(
                    RuleId::IndexTokenBounds,
                    format!("packed residual-token {t} was never interned"),
                )
                .with_view(view_name)
                .with_detail("packed residual-token page".to_string()),
            );
        }
    }
}

/// Per-entry monotone-condition obligations on the *stored* keys: the hub
/// invariant (MV103) and token bounds (MV104).
fn audit_entry_obligations(
    engine: &MatchingEngine,
    view_name: &str,
    keys: &[Vec<u64>],
    report: &mut Report,
) {
    let catalog = engine.catalog();
    let n_tables = catalog.table_count() as u64;

    // MV103 — the hub must be a subset of the stored source tables:
    // level 1's subset search only reaches partitions whose hub is
    // contained in the *query's* tables, and every query the view answers
    // references at least the view's eliminable-free core. A hub outside
    // the view's own table set breaks that containment argument.
    if keys.len() > 1 {
        let tables = normalized(&keys[1]);
        if !keys[0].iter().all(|t| tables.binary_search(t).is_ok()) {
            report.push(
                Diagnostic::error(
                    RuleId::HubInvariant,
                    "stored hub key is not a subset of the stored source-table key",
                )
                .with_view(view_name)
                .with_detail(format!("hub {:?} vs tables {:?}", keys[0], tables)),
            );
        }
    }

    for (lvl, key) in keys.iter().enumerate() {
        let level = LEVEL_NAMES[lvl];
        if TABLE_LEVELS.contains(&lvl) {
            for &t in key {
                if t >= n_tables {
                    report.push(
                        Diagnostic::error(
                            RuleId::IndexTokenBounds,
                            format!("stored table token {t} names no catalog table"),
                        )
                        .with_view(view_name)
                        .with_detail(format!("level {level}")),
                    );
                }
            }
        } else if COL_LEVELS.contains(&lvl) {
            for &c in key {
                let (table, col) = decode_col_token(c);
                let valid = (table.0 as u64) < n_tables
                    && (col.0 as usize) < catalog.table(table).columns.len();
                if !valid {
                    report.push(
                        Diagnostic::error(
                            RuleId::IndexTokenBounds,
                            format!("stored column token {c} decodes to no catalog column"),
                        )
                        .with_view(view_name)
                        .with_detail(format!("level {level}")),
                    );
                }
            }
        } else if TEXT_LEVELS.contains(&lvl) {
            for &t in key {
                if t >= engine.known_token_count() {
                    report.push(
                        Diagnostic::error(
                            RuleId::IndexTokenBounds,
                            format!("stored template-text token {t} was never interned"),
                        )
                        .with_view(view_name)
                        .with_detail(format!("level {level}")),
                    );
                }
            }
        }
    }
}

/// Differential completeness check over a workload (MV102): filter-tree
/// candidates must be a superset of the exhaustive matcher's accepts.
pub fn audit_differential(engine: &MatchingEngine, queries: &[SpjgExpr], report: &mut Report) {
    if !engine.config().use_filter_tree {
        return;
    }
    // Level conditions must be evaluated against the keys the tree
    // *stores* — that is what the search actually walked — not a fresh
    // re-derivation (stored-vs-derived drift is MV101's job).
    let stored: HashMap<ViewId, Vec<Vec<u64>>> = engine.filter_entries().into_iter().collect();
    for (qi, query) in queries.iter().enumerate() {
        let qlabel = format!("q{qi}");
        let qsum = engine.query_summary(query);
        let candidates = engine.candidates(query, &qsum); // sorted
        let (spj, agg) = engine.query_searches(query, &qsum);
        for (id, view) in engine.views().iter() {
            if engine.is_removed(id) || candidates.binary_search(&id).is_ok() {
                continue;
            }
            if engine.match_one_prepared(query, &qsum, id).is_none() {
                continue;
            }
            let is_agg = view.expr.is_aggregate();
            if is_agg && !query.is_aggregate() {
                report.push(
                    Diagnostic::error(
                        RuleId::FilterCompleteness,
                        "matcher accepted an aggregation view for a non-aggregate query \
                         (invalid per §3.3); the filter correctly never searches the \
                         aggregation tree here",
                    )
                    .with_view(&view.name)
                    .with_query(&qlabel),
                );
                continue;
            }
            let searches = if is_agg { &agg } else { &spj };
            let rejecting: Vec<usize> = match stored.get(&id) {
                Some(keys) => searches
                    .iter()
                    .zip(keys)
                    .enumerate()
                    .filter(|(_, (s, key))| !s.accepts(key))
                    .map(|(lvl, _)| lvl)
                    .collect(),
                // No stored entry at all: every search trivially misses
                // the view. Report with the empty rejecting set so the
                // message points at the missing entry.
                None => Vec::new(),
            };
            let exempt = strict_filter_exempt_levels(is_agg);
            if engine.config().strict_expression_filter
                && !rejecting.is_empty()
                && rejecting.iter().all(|l| exempt.contains(l))
            {
                report.push(
                    Diagnostic::new(
                        RuleId::FilterCompleteness,
                        Severity::Info,
                        "view pruned only by the documented §4.2.7 strict expression \
                         filter; the matcher could recompute the expression",
                    )
                    .with_view(&view.name)
                    .with_query(&qlabel),
                );
                continue;
            }
            let levels: Vec<&str> = rejecting.iter().map(|&l| LEVEL_NAMES[l]).collect();
            let first = levels
                .first()
                .copied()
                .unwrap_or("<none — view missing from its tree>");
            report.push(
                Diagnostic::error(
                    RuleId::FilterCompleteness,
                    "filter tree pruned a view the exhaustive matcher accepts",
                )
                .with_view(&view.name)
                .with_query(&qlabel)
                .with_detail(format!("first failing level: {first} (all: {levels:?})")),
            );
        }
    }
}
