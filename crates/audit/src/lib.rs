//! `mv-audit` — static completeness & catalog analyzer for the filter-tree
//! index and the view catalog.
//!
//! `mv-verify` (PR 2) proves *soundness*: every substitute the matcher
//! emits computes the query. This crate guards the dual failure mode —
//! the §4 filter tree silently *pruning* a view that would have matched —
//! plus the health of the catalog the whole machine indexes. Three passes,
//! all reporting through `mv-verify`'s diagnostics under the MV101+ band
//! (DESIGN.md §10):
//!
//! 1. [`audit_index`] (MV101–MV104) — re-derives every view's per-level
//!    keys from the engine's own token rendering, validates the stored
//!    index entries against them (plus the hub invariant and token
//!    bounds), and differentially checks over a workload that filter-tree
//!    candidates ⊇ exhaustive matcher accepts.
//! 2. [`audit_redundancy`] (MV110–MV112) — runs the matcher reflexively
//!    (each view definition as a query) to build the view-subsumption
//!    DAG; flags equivalent pairs, strictly subsumed views, and
//!    workload-dead views.
//! 3. [`audit_metadata`] (MV120–MV126) — validates the §3.2 preconditions
//!    the matcher trusts: FK structural soundness, unique referenced
//!    keys, null-free key/FK columns, and type agreement.
//!
//! Deployment: `mv-lint --audit` runs all three passes over the §5
//! workload and folds the findings into the CI report; the corruption
//! suite in `tests/corruption.rs` seeds index/catalog mutations and pins
//! each to its expected rule. The engine additionally asserts the
//! differential property after every `find_substitutes` in debug builds.

pub mod index;
pub mod metadata;
pub mod redundancy;

pub use index::{audit_differential, audit_index, audit_stored_entries};
pub use metadata::audit_metadata;
pub use redundancy::{audit_redundancy, RedundancyAudit};

use mv_core::MatchingEngine;
use mv_plan::SpjgExpr;
use mv_verify::Report;

/// Run all three audit passes over an engine and its workload queries,
/// folding every finding into one report.
pub fn audit_all(engine: &MatchingEngine, queries: &[SpjgExpr]) -> Report {
    let mut report = audit_index(engine, queries);
    let (_, redundancy) = audit_redundancy(engine, queries);
    report.extend(redundancy.diagnostics);
    report.extend(audit_metadata(engine.catalog()).diagnostics);
    report
}
