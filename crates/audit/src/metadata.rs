//! Pass 3 — schema metadata validation (rules MV120–MV126).
//!
//! §3.2's foreign-key join elimination silently assumes every declared FK
//! is structurally sound, references a unique key, and (for the
//! cardinality-preserving direction) rides on non-null columns. The
//! matcher re-checks nullability at match time, but a catalog ingested
//! from an external system can carry declarations that are broken in ways
//! the matcher never re-validates — this pass checks every one of §3.2's
//! preconditions offline, against the catalog alone.

use mv_catalog::{Catalog, ColumnId, ForeignKey, KeyKind, TableId};
use mv_verify::{Diagnostic, Report, RuleId, Severity};
use std::collections::HashSet;

/// Validate key and foreign-key declarations against §3.2's preconditions.
pub fn audit_metadata(catalog: &Catalog) -> Report {
    let mut report = Report::new();
    audit_keys(catalog, &mut report);
    audit_foreign_keys(catalog, &mut report);
    report
}

fn audit_keys(catalog: &Catalog, report: &mut Report) {
    for (_, table) in catalog.tables() {
        let n_cols = table.columns.len() as u32;
        for (ki, key) in table.keys.iter().enumerate() {
            let label = format!("{} key #{ki}", table.name);
            if key.columns.is_empty() {
                report.push(
                    Diagnostic::error(RuleId::KeyColumnBounds, "declared key has no columns")
                        .with_detail(label.clone()),
                );
            }
            let mut seen: HashSet<ColumnId> = HashSet::new();
            for &c in &key.columns {
                if c.0 >= n_cols {
                    report.push(
                        Diagnostic::error(
                            RuleId::KeyColumnBounds,
                            format!("key column #{} is out of bounds for `{}`", c.0, table.name),
                        )
                        .with_detail(label.clone()),
                    );
                    continue;
                }
                if !seen.insert(c) {
                    report.push(
                        Diagnostic::error(
                            RuleId::KeyColumnBounds,
                            format!("key lists column `{}` twice", table.column(c).name),
                        )
                        .with_detail(label.clone()),
                    );
                    continue;
                }
                if !table.column(c).not_null {
                    // SQL NULLs are pairwise distinct, so a nullable
                    // "unique" column does not guarantee the row
                    // uniqueness §3.2's elimination relies on. A primary
                    // key is implicitly NOT NULL — a nullable column in
                    // one is an outright contradiction.
                    let (severity, msg) = match key.kind {
                        KeyKind::Primary => {
                            (Severity::Error, "primary key includes a nullable column")
                        }
                        KeyKind::Unique => (
                            Severity::Warning,
                            "unique key includes a nullable column — uniqueness does \
                             not hold across NULLs",
                        ),
                    };
                    report.push(
                        Diagnostic::new(RuleId::KeyNullableColumn, severity, msg)
                            .with_detail(format!("{label}, column `{}`", table.column(c).name)),
                    );
                }
            }
        }
    }
}

fn audit_foreign_keys(catalog: &Catalog, report: &mut Report) {
    let n_tables = catalog.table_count() as u32;
    let mut seen: HashSet<(TableId, Vec<ColumnId>, TableId, Vec<ColumnId>)> = HashSet::new();
    for (_, fk) in catalog.foreign_keys() {
        if !fk_structurally_valid(catalog, fk, n_tables, report) {
            continue;
        }

        let signature = (
            fk.from_table,
            fk.from_columns.clone(),
            fk.to_table,
            fk.to_columns.clone(),
        );
        if !seen.insert(signature) {
            report.push(
                Diagnostic::warning(
                    RuleId::DuplicateFk,
                    "the same foreign key is declared more than once",
                )
                .with_detail(fk.name.clone()),
            );
        }

        let from_t = catalog.table(fk.from_table);
        let to_t = catalog.table(fk.to_table);

        // MV121 — §3.2: the referenced side must be a unique key, or the
        // join is not cardinality-preserving and eliminating the
        // referenced table is unsound.
        if !to_t.covers_key(&fk.to_columns) {
            report.push(
                Diagnostic::error(
                    RuleId::FkNotUniqueKey,
                    format!(
                        "foreign key references columns of `{}` that cover no unique key",
                        to_t.name
                    ),
                )
                .with_detail(fk.name.clone()),
            );
        }

        // MV120 — nullable referencing columns: rows with NULLs have no
        // join partner, so the FK join only preserves cardinality under a
        // null-rejecting predicate (the matcher checks this at match time
        // when `null_rejecting_fk` is off; flag the declaration anyway).
        for &c in &fk.from_columns {
            if !from_t.column(c).not_null {
                report.push(
                    Diagnostic::warning(
                        RuleId::FkNullableColumn,
                        format!(
                            "foreign-key column `{}.{}` is nullable — the join is \
                             cardinality-preserving only under a null-rejecting predicate",
                            from_t.name,
                            from_t.column(c).name
                        ),
                    )
                    .with_detail(fk.name.clone()),
                );
            }
        }

        // MV122 — paired column types must agree for the FK equijoin to
        // be meaningful; incomparable types are an outright error.
        for (&a, &b) in fk.from_columns.iter().zip(&fk.to_columns) {
            let ta = from_t.column(a).ty;
            let tb = to_t.column(b).ty;
            if ta != tb {
                let severity = if ta.comparable_with(tb) {
                    Severity::Warning
                } else {
                    Severity::Error
                };
                report.push(
                    Diagnostic::new(
                        RuleId::FkTypeMismatch,
                        severity,
                        format!(
                            "foreign-key column pair `{}.{}` ({ta}) vs `{}.{}` ({tb}) \
                             disagrees in type",
                            from_t.name,
                            from_t.column(a).name,
                            to_t.name,
                            to_t.column(b).name
                        ),
                    )
                    .with_detail(fk.name.clone()),
                );
            }
        }
    }
}

/// MV123 — structural validation; type/key checks only run on FKs that
/// pass (they would index out of bounds otherwise).
fn fk_structurally_valid(
    catalog: &Catalog,
    fk: &ForeignKey,
    n_tables: u32,
    report: &mut Report,
) -> bool {
    let mut ok = true;
    if fk.from_table.0 >= n_tables || fk.to_table.0 >= n_tables {
        report.push(
            Diagnostic::error(
                RuleId::FkColumnBounds,
                "foreign key names a table id outside the catalog",
            )
            .with_detail(fk.name.clone()),
        );
        return false;
    }
    if fk.from_columns.len() != fk.to_columns.len() {
        report.push(
            Diagnostic::error(
                RuleId::FkColumnBounds,
                format!(
                    "foreign key pairs {} referencing columns with {} referenced columns",
                    fk.from_columns.len(),
                    fk.to_columns.len()
                ),
            )
            .with_detail(fk.name.clone()),
        );
        ok = false;
    }
    for (side, table, cols) in [
        ("referencing", fk.from_table, &fk.from_columns),
        ("referenced", fk.to_table, &fk.to_columns),
    ] {
        let n_cols = catalog.table(table).columns.len() as u32;
        for &c in cols {
            if c.0 >= n_cols {
                report.push(
                    Diagnostic::error(
                        RuleId::FkColumnBounds,
                        format!(
                            "{side} column #{} is out of bounds for `{}`",
                            c.0,
                            catalog.table(table).name
                        ),
                    )
                    .with_detail(fk.name.clone()),
                );
                ok = false;
            }
        }
    }
    ok
}
