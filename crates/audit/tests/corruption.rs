//! The corruption suite: seed index and catalog mutations and pin each to
//! the MV1xx rule that must catch it, mirroring `crates/verify`'s
//! corruption tests for the soundness band. The dual sanity checks — the
//! unmutated fixture and the unmutated §5 workload audit clean — keep the
//! rules honest in both directions.

use mv_audit::{audit_all, audit_index, audit_metadata, audit_redundancy};
use mv_bench::{build_workload, engine_with};
use mv_catalog::tpch::tpch_catalog;
use mv_catalog::{
    Catalog, Column, ColumnId, ColumnType, ForeignKey, Key, KeyKind, Table, TableBuilder, TableId,
};
use mv_core::{col_token, table_token, MatchConfig, MatchingEngine, SPJ_LEVELS};
use mv_expr::{BoolExpr, CmpOp, ColRef, ScalarExpr as S};
use mv_plan::{AggFunc, NamedAgg, NamedExpr, SpjgExpr, ViewDef, ViewId};
use mv_verify::{Report, Severity};

fn cr(occ: u32, col: u32) -> ColRef {
    ColRef::new(occ, col)
}

fn part_view(lo: i64, hi: i64) -> SpjgExpr {
    let (_, t) = tpch_catalog();
    let pred = BoolExpr::and(vec![
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(hi)),
    ]);
    SpjgExpr::spj(
        vec![t.part],
        pred,
        vec![
            NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
            NamedExpr::new(S::col(cr(0, 5)), "p_size"),
        ],
    )
}

fn part_query(lo: i64, hi: i64) -> SpjgExpr {
    let (_, t) = tpch_catalog();
    let pred = BoolExpr::and(vec![
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(lo)),
        BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(hi)),
    ]);
    SpjgExpr::spj(
        vec![t.part],
        pred,
        vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")],
    )
}

/// Three overlapping-but-incomparable part views plus an unrelated orders
/// aggregate — the engine-test fixture, re-used so index corruptions have
/// live matching traffic to disturb.
fn fixture() -> MatchingEngine {
    let (cat, t) = tpch_catalog();
    let engine = MatchingEngine::new(cat, MatchConfig::default());
    for (name, lo, hi) in [
        ("parts_low", 0, 1000),
        ("parts_mid", 500, 2000),
        ("parts_high", 5000, 9000),
    ] {
        engine
            .add_view(ViewDef::new(name, part_view(lo, hi)))
            .unwrap();
    }
    let agg = SpjgExpr::aggregate(
        vec![t.orders],
        BoolExpr::Literal(true),
        vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
        vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
    );
    engine
        .add_view(ViewDef::new("orders_by_cust", agg))
        .unwrap();
    engine
}

fn queries() -> Vec<SpjgExpr> {
    vec![part_query(600, 900), part_query(5500, 6000)]
}

/// Deduplicated rule codes at a given severity.
fn codes(report: &Report, severity: Severity) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == severity)
        .map(|d| d.rule.code())
        .collect();
    out.sort();
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Sanity: unmutated fixtures audit clean (no errors).
// ---------------------------------------------------------------------

#[test]
fn clean_fixture_audits_without_errors() {
    let engine = fixture();
    let report = audit_all(&engine, &queries());
    assert_eq!(codes(&report, Severity::Error), Vec::<&str>::new());
}

#[test]
fn clean_workload_audits_without_errors() {
    // The §5 workload slice mv-lint audits in CI, shrunk for debug-build
    // test time.
    let workload = build_workload(40, 20);
    let engine = engine_with(&workload, 40, MatchConfig::default());
    let report = audit_all(&engine, &workload.queries);
    assert_eq!(codes(&report, Severity::Error), Vec::<&str>::new());
}

// ---------------------------------------------------------------------
// Index corruptions (MV101–MV104).
// ---------------------------------------------------------------------

#[test]
fn evicted_view_caught_by_mv101() {
    let engine = fixture();
    assert!(engine.evict_view_for_audit(ViewId(0)));
    let report = audit_index(&engine, &[]);
    assert_eq!(codes(&report, Severity::Error), vec!["MV101"]);
}

#[test]
fn evicted_view_differential_caught_by_mv102() {
    let engine = fixture();
    assert!(engine.evict_view_for_audit(ViewId(0)));
    let mut report = Report::new();
    mv_audit::audit_differential(&engine, &queries(), &mut report);
    assert_eq!(codes(&report, Severity::Error), vec!["MV102"]);
    let d = &report.diagnostics[0];
    assert_eq!(d.context.view.as_deref(), Some("parts_low"));
    assert!(d
        .context
        .detail
        .as_deref()
        .unwrap()
        .contains("missing from its tree"));
}

#[test]
fn stale_residual_key_caught_by_mv102_naming_the_level() {
    let engine = fixture();
    // File parts_low as if it carried a residual predicate no query has:
    // the level-5 subset search now rejects it for every real query.
    let mut keys = engine.view_filter_keys(ViewId(0)).unwrap();
    keys.truncate(SPJ_LEVELS);
    keys[4].push(999_999);
    assert!(engine.refile_view_for_audit(ViewId(0), &keys));
    let mut report = Report::new();
    mv_audit::audit_differential(&engine, &queries(), &mut report);
    assert_eq!(codes(&report, Severity::Error), vec!["MV102"]);
    let detail = report.diagnostics[0].context.detail.as_deref().unwrap();
    assert!(
        detail.contains("residuals"),
        "detail must name the failing level: {detail}"
    );
}

#[test]
fn foreign_hub_caught_by_mv103() {
    let (_, t) = tpch_catalog();
    let engine = fixture();
    // A hub outside the view's own table set breaks the level-1
    // containment argument.
    let mut keys = engine.view_filter_keys(ViewId(0)).unwrap();
    keys.truncate(SPJ_LEVELS);
    keys[0] = vec![table_token(t.orders)];
    assert!(engine.refile_view_for_audit(ViewId(0), &keys));
    let report = audit_index(&engine, &[]);
    let errs = codes(&report, Severity::Error);
    assert!(errs.contains(&"MV103"), "got {errs:?}");
}

#[test]
fn bogus_tokens_caught_by_mv104() {
    let engine = fixture();
    let mut keys = engine.view_filter_keys(ViewId(0)).unwrap();
    keys.truncate(SPJ_LEVELS);
    keys[5].push(col_token(TableId(999), ColumnId(7))); // no such table
    keys[2].push(1_000_000); // never-interned template text
    assert!(engine.refile_view_for_audit(ViewId(0), &keys));
    let report = audit_index(&engine, &[]);
    let errs = codes(&report, Severity::Error);
    assert!(errs.contains(&"MV104"), "got {errs:?}");
    let levels: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule.code() == "MV104")
        .map(|d| d.context.detail.as_deref().unwrap())
        .collect();
    assert!(
        levels.iter().any(|l| l.contains("range-cols")),
        "{levels:?}"
    );
    assert!(
        levels.iter().any(|l| l.contains("output-exprs")),
        "{levels:?}"
    );
}

#[test]
fn out_of_bounds_packed_span_caught_by_mv105() {
    let engine = fixture();
    assert!(engine.corrupt_packed_span_for_audit(ViewId(0)));
    let report = audit_index(&engine, &[]);
    assert_eq!(codes(&report, Severity::Error), vec!["MV105"]);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule.code() == "MV105")
        .unwrap();
    assert_eq!(d.context.view.as_deref(), Some("parts_low"));
    assert!(
        d.context.detail.as_deref().unwrap().contains("span"),
        "detail must describe the broken span: {:?}",
        d.context.detail
    );
    // The other three views' packed records are untouched: exactly one
    // MV105 diagnostic.
    assert_eq!(report.count(Severity::Error), 1);
}

// ---------------------------------------------------------------------
// Catalog redundancy (MV110–MV112).
// ---------------------------------------------------------------------

#[test]
fn equivalent_views_caught_by_mv110() {
    let engine = fixture();
    engine
        .add_view(ViewDef::new("parts_low_copy", part_view(0, 1000)))
        .unwrap();
    let (audit, report) = audit_redundancy(&engine, &[]);
    assert_eq!(audit.equivalent, vec![(ViewId(0), ViewId(4))]);
    assert_eq!(codes(&report, Severity::Warning), vec!["MV110"]);
}

#[test]
fn subsumed_view_caught_by_mv111() {
    let engine = fixture();
    // Strictly inside parts_low's range, same outputs: computable from
    // parts_low but not vice versa.
    engine
        .add_view(ViewDef::new("parts_narrow", part_view(100, 200)))
        .unwrap();
    let (audit, report) = audit_redundancy(&engine, &[]);
    assert!(audit.equivalent.is_empty());
    assert!(audit.subsumed.contains(&(ViewId(4), ViewId(0))));
    assert!(codes(&report, Severity::Warning).contains(&"MV111"));
}

#[test]
fn dead_view_caught_by_mv112() {
    let engine = fixture();
    // Part-only queries: the orders aggregate never matches.
    let (audit, report) = audit_redundancy(&engine, &queries());
    assert!(audit.dead.contains(&ViewId(3)));
    let dead: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule.code() == "MV112")
        .map(|d| d.context.view.as_deref().unwrap())
        .collect();
    assert!(dead.contains(&"orders_by_cust"), "{dead:?}");
}

// ---------------------------------------------------------------------
// Metadata corruptions (MV120–MV126).
// ---------------------------------------------------------------------

/// Parent/child pair with a valid PK each; mutations below break specific
/// §3.2 preconditions.
fn meta_catalog() -> (Catalog, TableId, TableId) {
    let mut cat = Catalog::new();
    let parent = cat.add_table(
        TableBuilder::new("parent")
            .col("id", ColumnType::Int)
            .col("code", ColumnType::Str)
            .col("extra", ColumnType::Int)
            .primary_key(&["id"])
            .build(),
    );
    let child = cat.add_table(
        TableBuilder::new("child")
            .col("id", ColumnType::Int)
            .nullable_col("pref", ColumnType::Int)
            .col("pstr", ColumnType::Str)
            .primary_key(&["id"])
            .build(),
    );
    (cat, parent, child)
}

#[test]
fn clean_meta_catalog_audits_without_findings() {
    let (mut cat, parent, child) = meta_catalog();
    cat.add_foreign_key(ForeignKey {
        name: "child_parent".into(),
        from_table: child,
        from_columns: vec![ColumnId(0)],
        to_table: parent,
        to_columns: vec![ColumnId(0)],
    });
    let report = audit_metadata(&cat);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn nullable_fk_column_caught_by_mv120() {
    let (mut cat, parent, child) = meta_catalog();
    cat.add_foreign_key(ForeignKey {
        name: "nullable_ref".into(),
        from_table: child,
        from_columns: vec![ColumnId(1)], // child.pref is nullable
        to_table: parent,
        to_columns: vec![ColumnId(0)],
    });
    let report = audit_metadata(&cat);
    assert_eq!(codes(&report, Severity::Warning), vec!["MV120"]);
    assert!(!report.has_errors());
}

#[test]
fn fk_to_non_unique_key_caught_by_mv121() {
    let (mut cat, parent, child) = meta_catalog();
    cat.add_foreign_key_unchecked(ForeignKey {
        name: "not_a_key".into(),
        from_table: child,
        from_columns: vec![ColumnId(0)],
        to_table: parent,
        to_columns: vec![ColumnId(2)], // parent.extra covers no key
    });
    let report = audit_metadata(&cat);
    assert_eq!(codes(&report, Severity::Error), vec!["MV121"]);
}

#[test]
fn fk_type_mismatch_caught_by_mv122() {
    let (mut cat, parent, child) = meta_catalog();
    cat.add_foreign_key_unchecked(ForeignKey {
        name: "str_to_int".into(),
        from_table: child,
        from_columns: vec![ColumnId(2)], // child.pstr: VARCHAR
        to_table: parent,
        to_columns: vec![ColumnId(0)], // parent.id: INT
    });
    let report = audit_metadata(&cat);
    assert_eq!(codes(&report, Severity::Error), vec!["MV122"]);
}

#[test]
fn fk_structural_breakage_caught_by_mv123() {
    let (mut cat, parent, child) = meta_catalog();
    cat.add_foreign_key_unchecked(ForeignKey {
        name: "bad_arity".into(),
        from_table: child,
        from_columns: vec![ColumnId(0), ColumnId(1)],
        to_table: parent,
        to_columns: vec![ColumnId(0)],
    });
    cat.add_foreign_key_unchecked(ForeignKey {
        name: "bad_col".into(),
        from_table: child,
        from_columns: vec![ColumnId(0)],
        to_table: parent,
        to_columns: vec![ColumnId(42)],
    });
    let report = audit_metadata(&cat);
    assert_eq!(codes(&report, Severity::Error), vec!["MV123"]);
    assert_eq!(report.count(Severity::Error), 2);
}

#[test]
fn duplicate_fk_caught_by_mv124() {
    let (mut cat, parent, child) = meta_catalog();
    for name in ["dup_a", "dup_b"] {
        cat.add_foreign_key(ForeignKey {
            name: name.into(),
            from_table: child,
            from_columns: vec![ColumnId(0)],
            to_table: parent,
            to_columns: vec![ColumnId(0)],
        });
    }
    let report = audit_metadata(&cat);
    assert_eq!(codes(&report, Severity::Warning), vec!["MV124"]);
}

#[test]
fn nullable_primary_key_caught_by_mv125() {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("t")
            .nullable_col("a", ColumnType::Int)
            .nullable_col("b", ColumnType::Int)
            .primary_key(&["a"])
            .unique(&["b"])
            .build(),
    );
    let report = audit_metadata(&cat);
    // Nullable PRIMARY KEY column is an error; nullable UNIQUE a warning.
    assert_eq!(codes(&report, Severity::Error), vec!["MV125"]);
    assert_eq!(codes(&report, Severity::Warning), vec!["MV125"]);
}

#[test]
fn broken_key_declaration_caught_by_mv126() {
    let mut cat = Catalog::new();
    cat.add_table(Table {
        name: "t".into(),
        columns: vec![Column {
            name: "a".into(),
            ty: ColumnType::Int,
            not_null: true,
        }],
        keys: vec![
            Key {
                kind: KeyKind::Unique,
                columns: vec![],
            },
            Key {
                kind: KeyKind::Primary,
                columns: vec![ColumnId(0), ColumnId(0)],
            },
            Key {
                kind: KeyKind::Unique,
                columns: vec![ColumnId(99)],
            },
        ],
    });
    let report = audit_metadata(&cat);
    assert_eq!(codes(&report, Severity::Error), vec!["MV126"]);
    assert_eq!(report.count(Severity::Error), 3);
}
