//! Physical plans produced by the optimizer and interpreted by the
//! execution engine.
//!
//! Column-reference convention: inside every operator's predicates and
//! expressions, `ColRef { occ: 0, col: i }` refers to column `i` of the
//! operator's *input* row. A join's input row is the concatenation of the
//! left row followed by the right row.

use crate::spjg::AggFunc;
use crate::view::ViewId;
use mv_catalog::TableId;
use mv_expr::{BoolExpr, ScalarExpr};
use std::fmt;

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full scan of a base table; outputs all its columns.
    TableScan {
        /// The table to scan.
        table: TableId,
    },
    /// Scan of a materialized view; outputs the view's output columns.
    ViewScan {
        /// The view to scan.
        view: ViewId,
    },
    /// Row filter.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Keep rows for which this evaluates to TRUE.
        predicate: BoolExpr,
    },
    /// Hash equi-join (inner). Output = left columns ++ right columns.
    HashJoin {
        /// Build side.
        left: Box<PhysicalPlan>,
        /// Probe side.
        right: Box<PhysicalPlan>,
        /// Key column positions in the left input.
        left_keys: Vec<usize>,
        /// Key column positions in the right input (same length).
        right_keys: Vec<usize>,
        /// Extra non-equijoin predicate over the concatenated row.
        residual: Option<BoolExpr>,
    },
    /// Cartesian product (used when no equijoin keys exist). Output =
    /// left columns ++ right columns.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated row (TRUE = cross join).
        predicate: Option<BoolExpr>,
    },
    /// Projection.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output expressions over the input row.
        exprs: Vec<ScalarExpr>,
    },
    /// Hash aggregation. Output = grouping expressions ++ aggregates.
    HashAggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Grouping expressions over the input row (may be empty for a
        /// scalar aggregate).
        group_by: Vec<ScalarExpr>,
        /// Aggregates over the input row.
        aggregates: Vec<AggFunc>,
    },
}

impl PhysicalPlan {
    /// Direct children of this operator.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. } | PhysicalPlan::ViewScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Does this plan (anywhere in the tree) scan a materialized view?
    /// Figure 4 of the paper counts final plans with this property.
    pub fn uses_view(&self) -> bool {
        matches!(self, PhysicalPlan::ViewScan { .. })
            || self.children().iter().any(|c| c.uses_view())
    }

    /// All views scanned by the plan.
    pub fn views_used(&self) -> Vec<ViewId> {
        let mut out = Vec::new();
        self.collect_views(&mut out);
        out
    }

    fn collect_views(&self, out: &mut Vec<ViewId>) {
        if let PhysicalPlan::ViewScan { view } = self {
            out.push(*view);
        }
        for c in self.children() {
            c.collect_views(out);
        }
    }

    /// Number of operators in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PhysicalPlan::TableScan { table } => writeln!(f, "{pad}TableScan({table})"),
            PhysicalPlan::ViewScan { view } => writeln!(f, "{pad}ViewScan({view})"),
            PhysicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter({predicate})")?;
                input.fmt_indented(f, indent + 1)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
            } => {
                write!(f, "{pad}HashJoin(keys {left_keys:?}={right_keys:?}")?;
                if let Some(r) = residual {
                    write!(f, ", residual {r}")?;
                }
                writeln!(f, ")")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                match predicate {
                    Some(p) => writeln!(f, "{pad}NestedLoopJoin({p})")?,
                    None => writeln!(f, "{pad}NestedLoopJoin(cross)")?,
                }
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            PhysicalPlan::Project { input, exprs } => {
                write!(f, "{pad}Project(")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                writeln!(f, ")")?;
                input.fmt_indented(f, indent + 1)
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
            } => {
                write!(f, "{pad}HashAggregate(by ")?;
                for (i, e) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "; ")?;
                for (i, a) in aggregates.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match a {
                        AggFunc::CountStar => write!(f, "count(*)")?,
                        AggFunc::Sum(e) => write!(f, "sum({e})")?,
                        AggFunc::SumZero(e) => write!(f, "sum0({e})")?,
                    }
                }
                writeln!(f, ")")?;
                input.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_expr::{ColRef, ScalarExpr as S};

    fn sample_plan() -> PhysicalPlan {
        PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::TableScan { table: TableId(0) }),
                right: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::ViewScan { view: ViewId(2) }),
                    predicate: BoolExpr::Literal(true),
                }),
                left_keys: vec![0],
                right_keys: vec![1],
                residual: None,
            }),
            exprs: vec![S::col(ColRef::new(0, 0))],
        }
    }

    #[test]
    fn view_detection() {
        let p = sample_plan();
        assert!(p.uses_view());
        assert_eq!(p.views_used(), vec![ViewId(2)]);
        let scan = PhysicalPlan::TableScan { table: TableId(1) };
        assert!(!scan.uses_view());
    }

    #[test]
    fn node_count_and_children() {
        let p = sample_plan();
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.children().len(), 1);
    }

    #[test]
    fn display_is_indented_tree() {
        let text = sample_plan().to_string();
        assert!(text.contains("Project"));
        assert!(text.contains("  HashJoin"));
        assert!(text.contains("    TableScan(T0)"));
        assert!(text.contains("      ViewScan(V2)"));
    }
}
