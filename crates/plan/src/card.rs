//! Cardinality estimation over SPJG blocks.
//!
//! A deliberately simple System-R style estimator: uniformity within
//! columns, independence between predicates, and the containment assumption
//! for equijoins. It exists for two consumers:
//!
//! * the workload generator of section 5, which tunes range predicates
//!   "until the estimated cardinality of the SPJ part of the result was
//!   within 25-75% of the largest table included", and
//! * the optimizer's cost model, which ranks substitutes and join orders.
//!
//! View matching itself never consults cardinalities.

use crate::spjg::{OutputList, SpjgExpr};
use mv_catalog::{Catalog, ColumnStats};
use mv_expr::{BoolExpr, Bound, CmpOp, ColRef, Conjunct, Interval};
use std::collections::HashMap;

/// Default selectivity for predicates we cannot interpret (LIKE, complex
/// residuals). The classic System-R guess.
pub const DEFAULT_RESIDUAL_SELECTIVITY: f64 = 0.25;

/// Default row count assumed for tables without statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Column statistics for a reference inside an expression.
fn col_stats<'a>(expr: &SpjgExpr, catalog: &'a Catalog, c: ColRef) -> Option<&'a ColumnStats> {
    let table = expr.table_of(c.occ);
    catalog
        .stats(table)
        .and_then(|s| s.columns.get(c.col.0 as usize))
}

/// Row count of a table occurrence.
fn table_rows(expr: &SpjgExpr, catalog: &Catalog, occ: usize) -> f64 {
    catalog
        .stats(expr.tables[occ])
        .map(|s| s.rows as f64)
        .unwrap_or(DEFAULT_TABLE_ROWS)
}

/// Number of distinct values of a column (≥ 1).
fn col_ndv(expr: &SpjgExpr, catalog: &Catalog, c: ColRef) -> f64 {
    col_stats(expr, catalog, c)
        .map(|s| (s.ndv as f64).max(1.0))
        .unwrap_or(100.0)
}

/// Selectivity of the accumulated interval on one column.
fn interval_selectivity(stats: Option<&ColumnStats>, iv: &Interval) -> f64 {
    if iv.is_empty() {
        return 0.0;
    }
    let Some(stats) = stats else {
        return DEFAULT_RESIDUAL_SELECTIVITY;
    };
    // Point interval: equality selectivity.
    if iv.lo == iv.hi && matches!(iv.lo, Bound::Incl(_)) {
        return stats.eq_selectivity();
    }
    let lo = iv.lo.value().cloned().unwrap_or_else(|| stats.min.clone());
    let hi = iv.hi.value().cloned().unwrap_or_else(|| stats.max.clone());
    stats
        .range_selectivity(&lo, &hi)
        .unwrap_or(DEFAULT_RESIDUAL_SELECTIVITY)
        .max(1e-9)
}

/// Estimate the number of rows produced by the select-project-join part of
/// `expr` (ignoring any final group-by).
pub fn estimate_spj_rows(expr: &SpjgExpr, catalog: &Catalog) -> f64 {
    let mut rows: f64 = (0..expr.tables.len())
        .map(|i| table_rows(expr, catalog, i))
        .product();
    if expr.tables.is_empty() {
        return 1.0;
    }

    // Accumulate range predicates into per-column intervals so that a
    // BETWEEN pair is costed once, then apply equijoin and residual
    // selectivities independently.
    let mut intervals: HashMap<ColRef, Interval> = HashMap::new();
    for conj in &expr.conjuncts {
        match conj {
            Conjunct::ColumnEq(a, b) => {
                let ndv = col_ndv(expr, catalog, *a).max(col_ndv(expr, catalog, *b));
                rows /= ndv;
            }
            Conjunct::Range { col, op, value } => {
                let iv = intervals.entry(*col).or_default();
                if !iv.apply(*op, value) {
                    rows *= DEFAULT_RESIDUAL_SELECTIVITY;
                }
            }
            Conjunct::Residual(p) => {
                rows *= residual_selectivity(p);
            }
        }
    }
    for (col, iv) in &intervals {
        rows *= interval_selectivity(col_stats(expr, catalog, *col), iv);
    }
    rows.max(if intervals.values().any(|iv| iv.is_empty()) {
        0.0
    } else {
        1.0
    })
}

/// Heuristic selectivity of a residual predicate.
fn residual_selectivity(p: &BoolExpr) -> f64 {
    match p {
        BoolExpr::IsNull { negated: true, .. } => 0.9,
        BoolExpr::IsNull { negated: false, .. } => 0.1,
        BoolExpr::Compare { op: CmpOp::Ne, .. } => 0.9,
        BoolExpr::Literal(true) => 1.0,
        BoolExpr::Literal(false) => 0.0,
        _ => DEFAULT_RESIDUAL_SELECTIVITY,
    }
}

/// Estimate the output row count of the whole block, including the final
/// group-by if present: `min(spj_rows, Π ndv(group column))`.
pub fn estimate_rows(expr: &SpjgExpr, catalog: &Catalog) -> f64 {
    let spj = estimate_spj_rows(expr, catalog);
    match &expr.output {
        OutputList::Spj(_) => spj,
        OutputList::Aggregate { group_by, .. } => {
            if group_by.is_empty() {
                return 1.0;
            }
            let mut groups = 1.0f64;
            for g in group_by {
                let ndv = match g.expr.as_column() {
                    Some(c) => col_ndv(expr, catalog, c),
                    None => {
                        // Expression grouping: bounded by the product of the
                        // source columns' NDVs, capped to keep it sane.
                        g.expr
                            .columns()
                            .iter()
                            .map(|c| col_ndv(expr, catalog, *c))
                            .product::<f64>()
                            .min(1e6)
                    }
                };
                groups *= ndv;
            }
            groups.min(spj).max(if spj == 0.0 { 0.0 } else { 1.0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spjg::{AggFunc, NamedAgg, NamedExpr};
    use mv_catalog::tpch::tpch_catalog;
    use mv_catalog::{TableStats, Value as V};
    use mv_expr::{BoolExpr, ScalarExpr as S};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    /// Catalog with made-up stats: orders 10k rows, o_orderkey ndv 10k in
    /// [0, 10000); lineitem 40k rows, l_orderkey ndv 10k.
    fn stat_catalog() -> (Catalog, mv_catalog::tpch::TpchTables) {
        let (mut cat, t) = tpch_catalog();
        let mut orders = TableStats::with_unknown_columns(10_000, 9);
        orders.columns[0] = ColumnStats {
            min: V::Int(0),
            max: V::Int(10_000),
            ndv: 10_000,
            null_fraction: 0.0,
        };
        orders.columns[1] = ColumnStats {
            min: V::Int(0),
            max: V::Int(1_000),
            ndv: 1_000,
            null_fraction: 0.0,
        };
        cat.set_stats(t.orders, orders);
        let mut li = TableStats::with_unknown_columns(40_000, 16);
        li.columns[0] = ColumnStats {
            min: V::Int(0),
            max: V::Int(10_000),
            ndv: 10_000,
            null_fraction: 0.0,
        };
        cat.set_stats(t.lineitem, li);
        (cat, t)
    }

    #[test]
    fn single_table_scan() {
        let (cat, t) = stat_catalog();
        let e = SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        assert!((estimate_rows(&e, &cat) - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn range_predicate_interpolates() {
        let (cat, t) = stat_catalog();
        // o_orderkey between 0 and 1000 → ~10%.
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Ge, S::lit(0i64)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Le, S::lit(1000i64)),
        ]);
        let e = SpjgExpr::spj(
            vec![t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let est = estimate_rows(&e, &cat);
        assert!((900.0..=1100.0).contains(&est), "est={est}");
    }

    #[test]
    fn equality_uses_ndv() {
        let (cat, t) = stat_catalog();
        let pred = BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Eq, S::lit(42i64));
        let e = SpjgExpr::spj(
            vec![t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let est = estimate_rows(&e, &cat);
        assert!((9.0..=11.0).contains(&est), "est={est}"); // 10k / 1k ndv
    }

    #[test]
    fn fk_join_preserves_child_cardinality() {
        let (cat, t) = stat_catalog();
        // lineitem join orders on orderkey: 40k * 10k / max(ndv)=10k = 40k.
        let pred = BoolExpr::col_eq(cr(0, 0), cr(1, 0));
        let e = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        let est = estimate_rows(&e, &cat);
        assert!((39_000.0..=41_000.0).contains(&est), "est={est}");
    }

    #[test]
    fn group_by_caps_at_ndv() {
        let (cat, t) = stat_catalog();
        let e = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        );
        let est = estimate_rows(&e, &cat);
        assert!((990.0..=1010.0).contains(&est), "est={est}");
        // Scalar aggregate → one row.
        let e = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        );
        assert_eq!(estimate_rows(&e, &cat), 1.0);
    }

    #[test]
    fn contradictory_range_estimates_zero() {
        let (cat, t) = stat_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Gt, S::lit(5000i64)),
            BoolExpr::cmp(S::col(cr(0, 0)), CmpOp::Lt, S::lit(1000i64)),
        ]);
        let e = SpjgExpr::spj(
            vec![t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        assert_eq!(estimate_rows(&e, &cat), 0.0);
    }

    #[test]
    fn missing_stats_fall_back() {
        let (cat, t) = tpch_catalog(); // no stats at all
        let e = SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "k")],
        );
        assert_eq!(estimate_rows(&e, &cat), DEFAULT_TABLE_ROWS);
    }
}
