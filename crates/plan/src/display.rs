//! Rendering SPJG blocks and substitutes back to readable SQL.
//!
//! Internal column references are positional (`t0.c3`); for diagnostics,
//! examples and error messages we re-attach real table and column names
//! from the catalog.

use crate::spjg::{AggFunc, OutputList, SpjgExpr};
use crate::substitute::Substitute;
use crate::view::ViewSet;
use mv_catalog::Catalog;
use mv_expr::{conjuncts_to_bool, BoolExpr, ColRef, ScalarExpr};

use std::fmt::Write as _;

/// Render a scalar expression with real names. `name_of` supplies the
/// rendering of each column reference.
fn render_scalar(e: &ScalarExpr, name_of: &impl Fn(ColRef) -> String) -> String {
    match e {
        ScalarExpr::Column(c) => name_of(*c),
        ScalarExpr::Literal(v) => v.to_string(),
        ScalarExpr::Binary { op, left, right } => format!(
            "({} {} {})",
            render_scalar(left, name_of),
            op.symbol(),
            render_scalar(right, name_of)
        ),
    }
}

/// Render a boolean expression with real names.
fn render_bool(e: &BoolExpr, name_of: &impl Fn(ColRef) -> String) -> String {
    match e {
        BoolExpr::And(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| render_bool(p, name_of)).collect();
            format!("({})", inner.join(" AND "))
        }
        BoolExpr::Or(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| render_bool(p, name_of)).collect();
            format!("({})", inner.join(" OR "))
        }
        BoolExpr::Not(p) => format!("NOT {}", render_bool(p, name_of)),
        BoolExpr::Compare { op, left, right } => format!(
            "{} {} {}",
            render_scalar(left, name_of),
            op.symbol(),
            render_scalar(right, name_of)
        ),
        BoolExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE '{}'",
            render_scalar(expr, name_of),
            if *negated { "NOT " } else { "" },
            pattern
        ),
        BoolExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_scalar(expr, name_of),
            if *negated { "NOT " } else { "" }
        ),
        BoolExpr::Literal(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

/// Column naming for a block over base tables: `alias.column` when the same
/// base table appears more than once, bare column names otherwise.
fn base_namer<'a>(expr: &'a SpjgExpr, catalog: &'a Catalog) -> impl Fn(ColRef) -> String + 'a {
    let needs_alias = expr.tables.len()
        != expr
            .tables
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
    move |c: ColRef| {
        let table = catalog.table(expr.table_of(c.occ));
        let col = &table.column(c.col).name;
        if needs_alias {
            format!("t{}.{}", c.occ.0, col)
        } else {
            col.clone()
        }
    }
}

/// Render an SPJG block as SQL.
pub fn sql_of(expr: &SpjgExpr, catalog: &Catalog) -> String {
    let namer = base_namer(expr, catalog);
    let mut out = String::from("SELECT ");
    match &expr.output {
        OutputList::Spj(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{} AS {}",
                    render_scalar(&item.expr, &namer),
                    item.name
                );
            }
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            let mut first = true;
            for item in group_by {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{} AS {}",
                    render_scalar(&item.expr, &namer),
                    item.name
                );
            }
            for agg in aggregates {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                match &agg.func {
                    AggFunc::CountStar => {
                        let _ = write!(out, "COUNT_BIG(*) AS {}", agg.name);
                    }
                    AggFunc::Sum(e) => {
                        let _ = write!(out, "SUM({}) AS {}", render_scalar(e, &namer), agg.name);
                    }
                    AggFunc::SumZero(e) => {
                        let _ = write!(
                            out,
                            "COALESCE(SUM({}), 0) AS {}",
                            render_scalar(e, &namer),
                            agg.name
                        );
                    }
                }
            }
        }
    }
    out.push_str("\nFROM ");
    let needs_alias = expr.tables.len()
        != expr
            .tables
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
    for (i, t) in expr.tables.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&catalog.table(*t).name);
        if needs_alias {
            let _ = write!(out, " t{i}");
        }
    }
    if !expr.conjuncts.is_empty() {
        let pred = conjuncts_to_bool(&expr.conjuncts);
        if pred != BoolExpr::Literal(true) {
            let _ = write!(out, "\nWHERE {}", render_bool(&pred, &namer));
        }
    }
    if let OutputList::Aggregate { group_by, .. } = &expr.output {
        if !group_by.is_empty() {
            out.push_str("\nGROUP BY ");
            for (i, g) in group_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_scalar(&g.expr, &namer));
            }
        }
    }
    out
}

/// Render a substitute as SQL over the view it scans. Backjoined base
/// tables require the catalog for column names; pass `None` to render
/// their columns positionally.
pub fn sql_of_substitute(sub: &Substitute, views: &ViewSet) -> String {
    sql_of_substitute_with(sub, views, None)
}

/// Render a substitute, resolving backjoin column names via the catalog.
pub fn sql_of_substitute_with(
    sub: &Substitute,
    views: &ViewSet,
    catalog: Option<&Catalog>,
) -> String {
    let view = views.get(sub.view);
    let mut names: Vec<String> = view
        .expr
        .output_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    for bj in &sub.backjoins {
        match catalog {
            Some(cat) => {
                for col in &cat.table(bj.table).columns {
                    names.push(col.name.clone());
                }
            }
            None => {
                let start = names.len();
                let max_col = bj
                    .key
                    .iter()
                    .map(|(_, c)| c.0 as usize + 1)
                    .max()
                    .unwrap_or(0);
                // Without a catalog we do not know the arity; reserve
                // generously using the largest key column plus headroom.
                for i in 0..max_col.max(32) {
                    names.push(format!("bj{}_c{}", bj.table.0, i + start));
                }
            }
        }
    }
    let namer = |c: ColRef| {
        names
            .get(c.col.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("c{}", c.col.0))
    };
    let mut out = String::from("SELECT ");
    match &sub.output {
        OutputList::Spj(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{} AS {}",
                    render_scalar(&item.expr, &namer),
                    item.name
                );
            }
        }
        OutputList::Aggregate {
            group_by,
            aggregates,
        } => {
            let mut first = true;
            for item in group_by {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{} AS {}",
                    render_scalar(&item.expr, &namer),
                    item.name
                );
            }
            for agg in aggregates {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                match &agg.func {
                    AggFunc::CountStar => {
                        let _ = write!(out, "COUNT_BIG(*) AS {}", agg.name);
                    }
                    AggFunc::Sum(e) => {
                        let _ = write!(out, "SUM({}) AS {}", render_scalar(e, &namer), agg.name);
                    }
                    AggFunc::SumZero(e) => {
                        let _ = write!(
                            out,
                            "COALESCE(SUM({}), 0) AS {}",
                            render_scalar(e, &namer),
                            agg.name
                        );
                    }
                }
            }
        }
    }
    let _ = write!(out, "\nFROM {}", view.name);
    for bj in &sub.backjoins {
        match catalog {
            Some(cat) => {
                let _ = write!(out, " JOIN {} USING (key)", cat.table(bj.table).name);
            }
            None => {
                let _ = write!(out, " JOIN T{} USING (key)", bj.table.0);
            }
        }
    }
    if !sub.predicates.is_empty() {
        let pred = BoolExpr::and(sub.predicates.clone());
        let _ = write!(out, "\nWHERE {}", render_bool(&pred, &namer));
    }
    if let OutputList::Aggregate { group_by, .. } = &sub.output {
        if !group_by.is_empty() {
            out.push_str("\nGROUP BY ");
            for (i, g) in group_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_scalar(&g.expr, &namer));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spjg::{NamedAgg, NamedExpr};
    use crate::substitute::Freshness;
    use crate::view::ViewDef;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{CmpOp, ScalarExpr as S};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    #[test]
    fn spj_sql_rendering() {
        let (cat, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)),
            BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Ge, S::lit(50i64)),
        ]);
        let e = SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            pred,
            vec![NamedExpr::new(S::col(cr(0, 1)), "l_partkey")],
        );
        let sql = sql_of(&e, &cat);
        assert!(sql.contains("SELECT l_partkey AS l_partkey"), "{sql}");
        assert!(sql.contains("FROM lineitem, orders"), "{sql}");
        assert!(sql.contains("l_orderkey = o_orderkey"), "{sql}");
        assert!(sql.contains("o_custkey >= 50"), "{sql}");
    }

    #[test]
    fn aggregate_sql_rendering() {
        let (cat, t) = tpch_catalog();
        let e = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![NamedAgg::new(AggFunc::CountStar, "cnt")],
        );
        let sql = sql_of(&e, &cat);
        assert!(sql.contains("COUNT_BIG(*) AS cnt"), "{sql}");
        assert!(sql.contains("GROUP BY o_custkey"), "{sql}");
        assert!(!sql.contains("WHERE"), "{sql}");
    }

    #[test]
    fn self_join_uses_aliases() {
        let (cat, t) = tpch_catalog();
        let e = SpjgExpr::spj(
            vec![t.nation, t.nation],
            BoolExpr::col_eq(cr(0, 2), cr(1, 2)),
            vec![NamedExpr::new(S::col(cr(0, 1)), "n1_name")],
        );
        let sql = sql_of(&e, &cat);
        assert!(sql.contains("FROM nation t0, nation t1"), "{sql}");
        assert!(sql.contains("t0.n_regionkey = t1.n_regionkey"), "{sql}");
    }

    #[test]
    fn backjoined_substitute_rendering() {
        use crate::substitute::BackJoin;
        let (cat, t) = tpch_catalog();
        let mut views = ViewSet::new();
        let vexpr = SpjgExpr::spj(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")],
        );
        let vid = views.add(ViewDef::new("okeys", vexpr)).unwrap();
        // Backjoin orders on its key; filter on the recovered o_custkey
        // (position 1 of view output + column 1 of orders = position 2).
        let sub = Substitute {
            view: vid,
            backjoins: vec![BackJoin {
                table: t.orders,
                key: vec![(0, mv_catalog::ColumnId(0))],
            }],
            predicates: vec![BoolExpr::cmp(S::col(cr(0, 2)), CmpOp::Le, S::lit(10i64))],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(cr(0, 0)), "o_orderkey")]),
            freshness: Freshness::Fresh,
        };
        let sql = sql_of_substitute_with(&sub, &views, Some(&cat));
        assert!(sql.contains("FROM okeys JOIN orders"), "{sql}");
        assert!(sql.contains("o_custkey <= 10"), "{sql}");
        // Positional fallback without a catalog still renders.
        let sql = sql_of_substitute(&sub, &views);
        assert!(sql.contains("JOIN T"), "{sql}");
    }

    #[test]
    fn substitute_sql_rendering() {
        let (_, t) = tpch_catalog();
        let mut views = ViewSet::new();
        let vexpr = SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(cr(0, 0)), "p_partkey"),
                NamedExpr::new(S::col(cr(0, 5)), "p_size"),
            ],
        );
        let vid = views.add(ViewDef::new("v_parts", vexpr)).unwrap();
        let sub = Substitute {
            view: vid,
            backjoins: vec![],
            predicates: vec![BoolExpr::cmp(S::col(cr(0, 1)), CmpOp::Lt, S::lit(10i64))],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(cr(0, 0)), "p_partkey")]),
            freshness: Freshness::Fresh,
        };
        let sql = sql_of_substitute(&sub, &views);
        assert!(sql.contains("FROM v_parts"), "{sql}");
        assert!(sql.contains("WHERE p_size < 10"), "{sql}");
    }
}
