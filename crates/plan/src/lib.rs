//! Plan representations: the SPJG normal form that view matching operates
//! on, materialized-view definitions, substitute expressions, physical
//! plans, and cardinality estimation.
//!
//! The paper restricts both queries and views to single-block SQL —
//! selections, inner joins and an optional final group-by (section 2). We
//! represent such a block in a normal form, [`SpjgExpr`]: a list of table
//! occurrences, a classified CNF predicate, and an output list that is
//! either a projection (SPJ) or a grouping with aggregates (SPJG).

pub mod card;
pub mod display;
pub mod physical;
pub mod spjg;
pub mod substitute;
pub mod view;

pub use card::estimate_rows;
pub use physical::PhysicalPlan;
pub use spjg::{AggFunc, NamedAgg, NamedExpr, OutputList, SpjgExpr};
pub use substitute::{BackJoin, Freshness, Substitute, SubstituteGrouping};
pub use view::{ViewDef, ViewId, ViewSet};
