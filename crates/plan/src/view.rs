//! Materialized-view definitions and the registry of all views known to
//! the matcher.

use crate::spjg::{OutputList, SpjgExpr};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a materialized view (dense index into a [`ViewSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u32);

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// A materialized (indexed) view: a name, the defining SPJG expression, a
/// unique clustered key, and optional secondary indexes.
///
/// SQL Server 2000 materializes a view "by creating a unique clustered
/// index on an existing view. ... Once the clustered index has been
/// created, additional secondary indexes can be created" (section 2). Keys
/// and indexes are stored as positions into the view's output list.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// The defining SPJG expression.
    pub expr: SpjgExpr,
    /// Output positions forming the unique clustered key. For aggregation
    /// views this is the set of grouping columns.
    pub key: Vec<usize>,
    /// Secondary index definitions (output positions each).
    pub secondary_indexes: Vec<Vec<usize>>,
}

impl ViewDef {
    /// Define a view. For aggregation views the clustered key defaults to
    /// the grouping columns (which SQL Server requires to be the key); for
    /// SPJ views the caller supplies it via [`ViewDef::with_key`], default
    /// all output columns.
    pub fn new(name: impl Into<String>, expr: SpjgExpr) -> Self {
        let key = match &expr.output {
            OutputList::Aggregate { group_by, .. } => (0..group_by.len()).collect(),
            OutputList::Spj(outputs) => (0..outputs.len()).collect(),
        };
        ViewDef {
            name: name.into(),
            expr,
            key,
            secondary_indexes: Vec::new(),
        }
    }

    /// Override the clustered key.
    pub fn with_key(mut self, key: Vec<usize>) -> Self {
        assert!(
            key.iter().all(|&p| p < self.expr.output_arity()),
            "key position out of range for view {}",
            self.name
        );
        self.key = key;
        self
    }

    /// Add a secondary index.
    pub fn with_secondary_index(mut self, cols: Vec<usize>) -> Self {
        assert!(
            cols.iter().all(|&p| p < self.expr.output_arity()),
            "index position out of range for view {}",
            self.name
        );
        self.secondary_indexes.push(cols);
        self
    }

    /// Check the indexed-view rules of section 2: an aggregation view must
    /// output a `COUNT(*)` column (so deletions can be handled
    /// incrementally).
    pub fn check_indexable(&self) -> Result<(), String> {
        if self.expr.is_aggregate() && self.expr.count_star_position().is_none() {
            return Err(format!(
                "aggregation view {} must include a count_big(*) output column",
                self.name
            ));
        }
        Ok(())
    }
}

/// The registry of materialized views.
///
/// Definitions are stored behind `Arc` so cloning the registry — which
/// the online catalog does on every registration to build the next
/// published snapshot — costs one pointer bump per view plus the name
/// index, never a deep copy of the expressions.
#[derive(Debug, Clone, Default)]
pub struct ViewSet {
    views: Vec<std::sync::Arc<ViewDef>>,
    by_name: HashMap<String, ViewId>,
}

impl ViewSet {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a view. Enforces the indexed-view rules and unique names.
    pub fn add(&mut self, view: ViewDef) -> Result<ViewId, String> {
        view.check_indexable()?;
        if self.by_name.contains_key(&view.name) {
            return Err(format!("duplicate view name {}", view.name));
        }
        let id = ViewId(self.views.len() as u32);
        self.by_name.insert(view.name.clone(), id);
        self.views.push(std::sync::Arc::new(view));
        Ok(id)
    }

    /// The definition of `id`. Panics if out of range.
    pub fn get(&self, id: ViewId) -> &ViewDef {
        self.views[id.0 as usize].as_ref()
    }

    /// Look up a view by name.
    pub fn by_name(&self, name: &str) -> Option<ViewId> {
        self.by_name.get(name).copied()
    }

    /// All views with ids.
    pub fn iter(&self) -> impl Iterator<Item = (ViewId, &ViewDef)> {
        self.views
            .iter()
            .enumerate()
            .map(|(i, v)| (ViewId(i as u32), v.as_ref()))
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spjg::{AggFunc, NamedAgg, NamedExpr};
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{BoolExpr, ColRef, ScalarExpr as S};

    fn spj_view() -> SpjgExpr {
        let (_, t) = tpch_catalog();
        SpjgExpr::spj(
            vec![t.part],
            BoolExpr::Literal(true),
            vec![
                NamedExpr::new(S::col(ColRef::new(0, 0)), "p_partkey"),
                NamedExpr::new(S::col(ColRef::new(0, 1)), "p_name"),
            ],
        )
    }

    fn agg_view(with_count: bool) -> SpjgExpr {
        let (_, t) = tpch_catalog();
        let mut aggs = vec![NamedAgg::new(
            AggFunc::Sum(S::col(ColRef::new(0, 3))),
            "total",
        )];
        if with_count {
            aggs.insert(0, NamedAgg::new(AggFunc::CountStar, "cnt"));
        }
        SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(ColRef::new(0, 1)), "o_custkey")],
            aggs,
        )
    }

    #[test]
    fn default_keys() {
        let v = ViewDef::new("v_spj", spj_view());
        assert_eq!(v.key, vec![0, 1]);
        let v = ViewDef::new("v_agg", agg_view(true));
        // Aggregation views are keyed on the grouping columns.
        assert_eq!(v.key, vec![0]);
    }

    #[test]
    fn aggregation_views_require_count() {
        let mut set = ViewSet::new();
        assert!(set.add(ViewDef::new("good", agg_view(true))).is_ok());
        let err = set.add(ViewDef::new("bad", agg_view(false))).unwrap_err();
        assert!(err.contains("count_big"), "{err}");
    }

    #[test]
    fn registry_lookup() {
        let mut set = ViewSet::new();
        let id = set.add(ViewDef::new("v1", spj_view())).unwrap();
        assert_eq!(set.by_name("v1"), Some(id));
        assert_eq!(set.get(id).name, "v1");
        assert_eq!(set.len(), 1);
        assert!(set.add(ViewDef::new("v1", spj_view())).is_err());
    }

    #[test]
    fn secondary_indexes_validated() {
        let v = ViewDef::new("v", spj_view()).with_secondary_index(vec![1]);
        assert_eq!(v.secondary_indexes.len(), 1);
    }

    #[test]
    #[should_panic(expected = "key position out of range")]
    fn bad_key_position_panics() {
        let _ = ViewDef::new("v", spj_view()).with_key(vec![5]);
    }
}
