//! The SPJG normal form.

use mv_catalog::{Catalog, ColumnType, TableId};
use mv_expr::{classify, BoolExpr, ColRef, Conjunct, EquivClasses, OccId, ScalarExpr};

/// A named output expression (`expr AS name`).
///
/// "Output columns defined by arithmetic or other expressions must be
/// assigned names (using the AS clause) so that they can be referred to"
/// (section 2, Example 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedExpr {
    /// The expression.
    pub expr: ScalarExpr,
    /// Output column name.
    pub name: String,
}

impl NamedExpr {
    /// Convenience constructor.
    pub fn new(expr: ScalarExpr, name: impl Into<String>) -> Self {
        NamedExpr {
            expr,
            name: name.into(),
        }
    }
}

/// Aggregation functions allowed in materialized views and queries.
///
/// Section 2: "Aggregation functions are limited to sum and count."
/// `AVG(E)` is rewritten to `SUM(E) / COUNT(*)` by the SQL front end
/// (section 3.3), so it never reaches the plan layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT_BIG(*)`.
    CountStar,
    /// `SUM(expr)`.
    Sum(ScalarExpr),
    /// `SUM(expr)` that yields 0 instead of NULL over empty input —
    /// `COALESCE(SUM(expr), 0)`. Produced by the matcher when a query's
    /// `COUNT(*)` is rolled up as a sum over a view's count column
    /// (section 3.3): a plain SUM would return NULL where the original
    /// scalar `COUNT(*)` returns 0.
    SumZero(ScalarExpr),
}

impl AggFunc {
    /// The argument expression, if any.
    pub fn argument(&self) -> Option<&ScalarExpr> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Sum(e) | AggFunc::SumZero(e) => Some(e),
        }
    }
}

/// A named aggregate output (`SUM(x) AS name`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedAgg {
    /// The aggregation function.
    pub func: AggFunc,
    /// Output column name.
    pub name: String,
}

impl NamedAgg {
    /// Convenience constructor.
    pub fn new(func: AggFunc, name: impl Into<String>) -> Self {
        NamedAgg {
            func,
            name: name.into(),
        }
    }
}

/// The output side of an SPJG block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputList {
    /// Plain projection (no aggregation).
    Spj(Vec<NamedExpr>),
    /// Grouping plus aggregates. The output columns are the grouping
    /// expressions followed by the aggregates, in that order — matching
    /// the materialized-view requirement that "all group-by expressions
    /// must also be in the output list" (section 3.3).
    Aggregate {
        /// Grouping expressions. May be empty (scalar aggregation).
        group_by: Vec<NamedExpr>,
        /// Aggregate outputs.
        aggregates: Vec<NamedAgg>,
    },
}

/// One SPJG block: `SELECT <output> FROM <tables> WHERE <conjuncts>
/// [GROUP BY ...]`.
///
/// Tables are *occurrences*: position `i` in [`SpjgExpr::tables`] is
/// occurrence [`OccId`]`(i)`, and every [`ColRef`] in the block addresses
/// `(occurrence, column)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpjgExpr {
    /// The FROM list: base table of each occurrence.
    pub tables: Vec<TableId>,
    /// The WHERE clause in classified CNF.
    pub conjuncts: Vec<Conjunct>,
    /// The output list.
    pub output: OutputList,
}

impl SpjgExpr {
    /// Build an SPJ block from an unclassified predicate.
    pub fn spj(tables: Vec<TableId>, predicate: BoolExpr, output: Vec<NamedExpr>) -> Self {
        SpjgExpr {
            tables,
            conjuncts: classify(predicate),
            output: OutputList::Spj(output),
        }
    }

    /// Build an aggregation block from an unclassified predicate.
    pub fn aggregate(
        tables: Vec<TableId>,
        predicate: BoolExpr,
        group_by: Vec<NamedExpr>,
        aggregates: Vec<NamedAgg>,
    ) -> Self {
        SpjgExpr {
            tables,
            conjuncts: classify(predicate),
            output: OutputList::Aggregate {
                group_by,
                aggregates,
            },
        }
    }

    /// Is this an aggregation block?
    pub fn is_aggregate(&self) -> bool {
        matches!(self.output, OutputList::Aggregate { .. })
    }

    /// Table occurrences with their base tables.
    pub fn occurrences(&self) -> impl Iterator<Item = (OccId, TableId)> + '_ {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (OccId(i as u32), *t))
    }

    /// The base table of an occurrence. Panics if out of range.
    pub fn table_of(&self, occ: OccId) -> TableId {
        self.tables[occ.0 as usize]
    }

    /// Number of output columns.
    pub fn output_arity(&self) -> usize {
        match &self.output {
            OutputList::Spj(v) => v.len(),
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => group_by.len() + aggregates.len(),
        }
    }

    /// Names of all output columns, in order.
    pub fn output_names(&self) -> Vec<&str> {
        match &self.output {
            OutputList::Spj(v) => v.iter().map(|e| e.name.as_str()).collect(),
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => group_by
                .iter()
                .map(|e| e.name.as_str())
                .chain(aggregates.iter().map(|a| a.name.as_str()))
                .collect(),
        }
    }

    /// The scalar (non-aggregate) output expressions: the projection list
    /// for SPJ blocks, the grouping expressions for aggregation blocks.
    pub fn scalar_outputs(&self) -> &[NamedExpr] {
        match &self.output {
            OutputList::Spj(v) => v,
            OutputList::Aggregate { group_by, .. } => group_by,
        }
    }

    /// Aggregate outputs (empty for SPJ blocks).
    pub fn aggregate_outputs(&self) -> &[NamedAgg] {
        match &self.output {
            OutputList::Spj(_) => &[],
            OutputList::Aggregate { aggregates, .. } => aggregates,
        }
    }

    /// Position of the `COUNT(*)` output, if any. Materialized aggregation
    /// views are required to carry one (section 2): the matcher uses it to
    /// rewrite a query's `COUNT(*)` as `SUM(cnt)` and to roll groups up.
    pub fn count_star_position(&self) -> Option<usize> {
        match &self.output {
            OutputList::Spj(_) => None,
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => aggregates
                .iter()
                .position(|a| a.func == AggFunc::CountStar)
                .map(|i| group_by.len() + i),
        }
    }

    /// Compute the column equivalence classes of this block (section
    /// 3.1.1): one union per column-equality conjunct.
    pub fn equiv_classes(&self) -> EquivClasses {
        let mut ec = EquivClasses::new();
        for c in &self.conjuncts {
            if let Conjunct::ColumnEq(a, b) = c {
                ec.union(*a, *b);
            }
        }
        ec
    }

    /// The type of a column reference, resolved through the catalog.
    pub fn col_type(&self, catalog: &Catalog, c: ColRef) -> ColumnType {
        catalog.table(self.table_of(c.occ)).column(c.col).ty
    }

    /// Every column referenced anywhere in the block (predicates and
    /// outputs), deduplicated, in first-appearance order.
    pub fn referenced_columns(&self) -> Vec<ColRef> {
        let mut seen = Vec::new();
        let mut push = |c: ColRef| {
            if !seen.contains(&c) {
                seen.push(c);
            }
        };
        for conj in &self.conjuncts {
            for c in conj.columns() {
                push(c);
            }
        }
        match &self.output {
            OutputList::Spj(v) => {
                for e in v {
                    for c in e.expr.columns() {
                        push(c);
                    }
                }
            }
            OutputList::Aggregate {
                group_by,
                aggregates,
            } => {
                for e in group_by {
                    for c in e.expr.columns() {
                        push(c);
                    }
                }
                for a in aggregates {
                    if let Some(arg) = a.func.argument() {
                        for c in arg.columns() {
                            push(c);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Validate internal consistency: every column reference addresses an
    /// existing occurrence and column; aggregate-view style rules are *not*
    /// enforced here (they belong to view registration).
    pub fn validate(&self, catalog: &Catalog) -> Result<(), String> {
        for c in self.referenced_columns() {
            let Some(&table) = self.tables.get(c.occ.0 as usize) else {
                return Err(format!("column {c} references missing occurrence"));
            };
            if catalog.table(table).columns.len() <= c.col.0 as usize {
                return Err(format!(
                    "column {c} out of range for table {}",
                    catalog.table(table).name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_catalog::tpch::tpch_catalog;
    use mv_expr::{CmpOp, ScalarExpr as S};

    fn cr(occ: u32, col: u32) -> ColRef {
        ColRef::new(occ, col)
    }

    /// lineitem (occ 0) join orders (occ 1) with a range predicate.
    fn sample_spj() -> SpjgExpr {
        let (_, t) = tpch_catalog();
        let pred = BoolExpr::and(vec![
            BoolExpr::col_eq(cr(0, 0), cr(1, 0)), // l_orderkey = o_orderkey
            BoolExpr::cmp(S::col(cr(1, 1)), CmpOp::Ge, S::lit(50i64)), // o_custkey >= 50
        ]);
        SpjgExpr::spj(
            vec![t.lineitem, t.orders],
            pred,
            vec![
                NamedExpr::new(S::col(cr(0, 1)), "l_partkey"),
                NamedExpr::new(S::col(cr(0, 4)), "l_quantity"),
            ],
        )
    }

    #[test]
    fn spj_accessors() {
        let e = sample_spj();
        assert!(!e.is_aggregate());
        assert_eq!(e.output_arity(), 2);
        assert_eq!(e.output_names(), vec!["l_partkey", "l_quantity"]);
        assert_eq!(e.occurrences().count(), 2);
        assert!(e.count_star_position().is_none());
        assert_eq!(e.aggregate_outputs().len(), 0);
    }

    #[test]
    fn equiv_classes_from_conjuncts() {
        let e = sample_spj();
        let ec = e.equiv_classes();
        assert!(ec.same(cr(0, 0), cr(1, 0)));
        assert!(ec.is_trivial(cr(1, 1)));
    }

    #[test]
    fn aggregate_block_output_positions() {
        let (_, t) = tpch_catalog();
        let e = SpjgExpr::aggregate(
            vec![t.orders],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 1)), "o_custkey")],
            vec![
                NamedAgg::new(AggFunc::CountStar, "cnt"),
                NamedAgg::new(AggFunc::Sum(S::col(cr(0, 3))), "total"),
            ],
        );
        assert!(e.is_aggregate());
        assert_eq!(e.output_arity(), 3);
        assert_eq!(e.count_star_position(), Some(1));
        assert_eq!(e.output_names(), vec!["o_custkey", "cnt", "total"]);
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let e = sample_spj();
        let cols = e.referenced_columns();
        assert_eq!(cols, vec![cr(0, 0), cr(1, 0), cr(1, 1), cr(0, 1), cr(0, 4)]);
    }

    #[test]
    fn validate_catches_bad_references() {
        let (cat, t) = tpch_catalog();
        let good = sample_spj();
        assert!(good.validate(&cat).is_ok());
        let bad = SpjgExpr::spj(
            vec![t.region],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(0, 99)), "nope")],
        );
        assert!(bad.validate(&cat).is_err());
        let bad = SpjgExpr::spj(
            vec![t.region],
            BoolExpr::Literal(true),
            vec![NamedExpr::new(S::col(cr(3, 0)), "nope")],
        );
        assert!(bad.validate(&cat).is_err());
    }
}
