//! Substitute expressions: the rewrites that view matching produces.
//!
//! A substitute evaluates a query expression from a materialized view: scan
//! the view, apply *compensating predicates* (section 3.1.3), project or
//! re-aggregate (section 3.3). All column references inside a substitute
//! use the convention `ColRef { occ: 0, col: i }` = "output column `i` of
//! the view" — the view plays the role of the single table occurrence.

use crate::spjg::OutputList;
use crate::view::ViewId;
use mv_catalog::{ColumnId, TableId};
use mv_expr::BoolExpr;

/// A compensating group-by for an aggregation query answered from a view
/// that is less aggregated than the query (or not aggregated at all).
pub type SubstituteGrouping = OutputList;

/// A base-table backjoin (the section 7 extension): the view "contains all
/// tables and rows needed but some columns are missing", and outputs a
/// non-null unique key of a base table, so the missing columns can be
/// pulled in by joining the view back to that table.
///
/// Each view row joins exactly one base row (equijoin on a unique key
/// whose columns are `NOT NULL`), so the join is cardinality preserving
/// and merely extends the row. The joined table's columns follow the view
/// outputs (and any earlier backjoins) in the substitute's column space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackJoin {
    /// The base table to join back to.
    pub table: TableId,
    /// Key pairs: (position in the substitute's column space so far,
    /// column of `table`), covering a non-null unique key of `table`.
    pub key: Vec<(usize, ColumnId)>,
}

/// The staleness guarantee a freshness-aware matcher attaches to a
/// substitute: either the view's materialized state reflects the current
/// data epoch of every base table it is computed from, or it lags the
/// current epochs by some number of write rounds. Engines that never see
/// base-table writes stamp everything [`Freshness::Fresh`], so the default
/// preserves the static-catalog behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Freshness {
    /// The view's data epochs equal the current table data epochs: the
    /// substitute is an exact rewrite of the query over current data.
    #[default]
    Fresh,
    /// The view's materialized state trails the current data epochs.
    Stale {
        /// Largest per-table epoch gap across the view's base tables.
        lag: u64,
    },
}

impl Freshness {
    /// Classify a maximum per-table epoch gap.
    pub fn from_lag(lag: u64) -> Freshness {
        if lag == 0 {
            Freshness::Fresh
        } else {
            Freshness::Stale { lag }
        }
    }

    /// The epoch gap (0 when fresh).
    pub fn lag(&self) -> u64 {
        match self {
            Freshness::Fresh => 0,
            Freshness::Stale { lag } => *lag,
        }
    }

    /// Is the substitute guaranteed current?
    pub fn is_fresh(&self) -> bool {
        matches!(self, Freshness::Fresh)
    }
}

/// A single-view substitute expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Substitute {
    /// The view to scan.
    pub view: ViewId,
    /// Base-table backjoins applied (in order) before the predicates.
    /// Column space: view outputs, then each backjoin's table columns.
    /// Empty unless the backjoin extension is enabled.
    pub backjoins: Vec<BackJoin>,
    /// Compensating predicates over the substitute's column space,
    /// implicitly ANDed. Empty when the view contains exactly the
    /// required rows.
    pub predicates: Vec<BoolExpr>,
    /// The output computation over the (filtered) rows: a projection for
    /// SPJ queries, or a compensating group-by with rolled-up aggregates
    /// for aggregation queries.
    pub output: OutputList,
    /// The freshness guarantee the producing engine attached (see
    /// [`Freshness`]).
    pub freshness: Freshness,
}

impl Substitute {
    /// Does this substitute need no compensation at all (pure view scan +
    /// projection)?
    pub fn is_filter_free(&self) -> bool {
        self.predicates.is_empty() && self.backjoins.is_empty()
    }

    /// Does this substitute re-aggregate the view?
    pub fn regroups(&self) -> bool {
        matches!(self.output, OutputList::Aggregate { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spjg::NamedExpr;
    use mv_expr::{CmpOp, ColRef, ScalarExpr as S};

    #[test]
    fn substitute_flags() {
        let sub = Substitute {
            view: ViewId(3),
            backjoins: vec![],
            predicates: vec![],
            output: OutputList::Spj(vec![NamedExpr::new(S::col(ColRef::new(0, 0)), "a")]),
            freshness: Freshness::Fresh,
        };
        assert!(sub.is_filter_free());
        assert!(!sub.regroups());

        let sub = Substitute {
            view: ViewId(3),
            backjoins: vec![],
            predicates: vec![BoolExpr::cmp(
                S::col(ColRef::new(0, 1)),
                CmpOp::Lt,
                S::lit(10i64),
            )],
            output: OutputList::Aggregate {
                group_by: vec![],
                aggregates: vec![],
            },
            freshness: Freshness::Stale { lag: 2 },
        };
        assert!(!sub.is_filter_free());
        assert!(sub.regroups());
    }
}
