//! Schema catalog for the view-matching library.
//!
//! This crate provides the metadata substrate that the view-matching
//! algorithm of Goldstein & Larson (SIGMOD 2001) relies on:
//!
//! * scalar [`types::ColumnType`]s and runtime [`types::Value`]s,
//! * [`schema::Table`] and [`schema::Column`] definitions with the four
//!   kinds of constraints the paper exploits (`NOT NULL`, primary keys,
//!   unique constraints, foreign keys),
//! * per-column [`stats::ColumnStats`] used by the cost model and the
//!   workload generator,
//! * the full TPC-H schema ([`tpch::tpch_catalog`]) used by every worked
//!   example in the paper and by the experimental evaluation.
//!
//! The catalog is deliberately independent of expressions, plans and data:
//! everything else in the workspace builds on top of it.

pub mod schema;
pub mod stats;
pub mod tpch;
pub mod types;

pub use schema::{
    Catalog, Column, ColumnId, ForeignKey, ForeignKeyId, Key, KeyKind, SchemaError, Table,
    TableBuilder, TableId,
};
pub use stats::{ColumnStats, TableStats};
pub use types::{ColumnType, Value};
