//! The TPC-H/R schema with full constraint declarations.
//!
//! Every worked example in the paper (Examples 1-4) and the entire
//! experimental evaluation (section 5) run against TPC-H, so we declare the
//! complete eight-table schema including the primary keys and foreign keys
//! the benchmark specification mandates. The foreign-key graph is exactly
//! what drives the cardinality-preserving-join analysis of section 3.2:
//!
//! ```text
//!   lineitem -> orders -> customer -> nation -> region
//!   lineitem -> part
//!   lineitem -> supplier -> nation
//!   lineitem -> partsupp -> part
//!                partsupp -> supplier
//! ```

use crate::schema::{Catalog, ForeignKey, TableBuilder, TableId};
use crate::types::ColumnType::{Date, Float, Int, Str};

/// Table ids of the TPC-H tables inside the catalog built by
/// [`tpch_catalog`], for convenient direct access.
#[derive(Debug, Clone, Copy)]
pub struct TpchTables {
    pub region: TableId,
    pub nation: TableId,
    pub supplier: TableId,
    pub customer: TableId,
    pub part: TableId,
    pub partsupp: TableId,
    pub orders: TableId,
    pub lineitem: TableId,
}

impl TpchTables {
    /// All eight table ids, biggest-to-smallest by TPC-H row counts.
    pub fn all(&self) -> [TableId; 8] {
        [
            self.lineitem,
            self.orders,
            self.partsupp,
            self.part,
            self.customer,
            self.supplier,
            self.nation,
            self.region,
        ]
    }
}

/// Build the TPC-H schema and return the catalog together with the table
/// handles.
pub fn tpch_catalog() -> (Catalog, TpchTables) {
    let mut cat = Catalog::new();

    let region = cat.add_table(
        TableBuilder::new("region")
            .col("r_regionkey", Int)
            .col("r_name", Str)
            .col("r_comment", Str)
            .primary_key(&["r_regionkey"])
            .build(),
    );

    let nation = cat.add_table(
        TableBuilder::new("nation")
            .col("n_nationkey", Int)
            .col("n_name", Str)
            .col("n_regionkey", Int)
            .col("n_comment", Str)
            .primary_key(&["n_nationkey"])
            .build(),
    );

    let supplier = cat.add_table(
        TableBuilder::new("supplier")
            .col("s_suppkey", Int)
            .col("s_name", Str)
            .col("s_address", Str)
            .col("s_nationkey", Int)
            .col("s_phone", Str)
            .col("s_acctbal", Float)
            .col("s_comment", Str)
            .primary_key(&["s_suppkey"])
            .build(),
    );

    let customer = cat.add_table(
        TableBuilder::new("customer")
            .col("c_custkey", Int)
            .col("c_name", Str)
            .col("c_address", Str)
            .col("c_nationkey", Int)
            .col("c_phone", Str)
            .col("c_acctbal", Float)
            .col("c_mktsegment", Str)
            .col("c_comment", Str)
            .primary_key(&["c_custkey"])
            .build(),
    );

    let part = cat.add_table(
        TableBuilder::new("part")
            .col("p_partkey", Int)
            .col("p_name", Str)
            .col("p_mfgr", Str)
            .col("p_brand", Str)
            .col("p_type", Str)
            .col("p_size", Int)
            .col("p_container", Str)
            .col("p_retailprice", Float)
            .col("p_comment", Str)
            .primary_key(&["p_partkey"])
            .build(),
    );

    let partsupp = cat.add_table(
        TableBuilder::new("partsupp")
            .col("ps_partkey", Int)
            .col("ps_suppkey", Int)
            .col("ps_availqty", Int)
            .col("ps_supplycost", Float)
            .col("ps_comment", Str)
            .primary_key(&["ps_partkey", "ps_suppkey"])
            .build(),
    );

    let orders = cat.add_table(
        TableBuilder::new("orders")
            .col("o_orderkey", Int)
            .col("o_custkey", Int)
            .col("o_orderstatus", Str)
            .col("o_totalprice", Float)
            .col("o_orderdate", Date)
            .col("o_orderpriority", Str)
            .col("o_clerk", Str)
            .col("o_shippriority", Int)
            .col("o_comment", Str)
            .primary_key(&["o_orderkey"])
            .build(),
    );

    let lineitem = cat.add_table(
        TableBuilder::new("lineitem")
            .col("l_orderkey", Int)
            .col("l_partkey", Int)
            .col("l_suppkey", Int)
            .col("l_linenumber", Int)
            .col("l_quantity", Float)
            .col("l_extendedprice", Float)
            .col("l_discount", Float)
            .col("l_tax", Float)
            .col("l_returnflag", Str)
            .col("l_linestatus", Str)
            .col("l_shipdate", Date)
            .col("l_commitdate", Date)
            .col("l_receiptdate", Date)
            .col("l_shipinstruct", Str)
            .col("l_shipmode", Str)
            .col("l_comment", Str)
            .primary_key(&["l_orderkey", "l_linenumber"])
            .build(),
    );

    let fk =
        |cat: &mut Catalog, name: &str, from: TableId, fc: &[&str], to: TableId, tc: &[&str]| {
            let from_columns = fc
                .iter()
                .map(|n| cat.table(from).column_by_name(n).expect("fk column").0)
                .collect();
            let to_columns = tc
                .iter()
                .map(|n| cat.table(to).column_by_name(n).expect("fk column").0)
                .collect();
            cat.add_foreign_key(ForeignKey {
                name: name.to_string(),
                from_table: from,
                from_columns,
                to_table: to,
                to_columns,
            });
        };

    fk(
        &mut cat,
        "nation_region",
        nation,
        &["n_regionkey"],
        region,
        &["r_regionkey"],
    );
    fk(
        &mut cat,
        "supplier_nation",
        supplier,
        &["s_nationkey"],
        nation,
        &["n_nationkey"],
    );
    fk(
        &mut cat,
        "customer_nation",
        customer,
        &["c_nationkey"],
        nation,
        &["n_nationkey"],
    );
    fk(
        &mut cat,
        "partsupp_part",
        partsupp,
        &["ps_partkey"],
        part,
        &["p_partkey"],
    );
    fk(
        &mut cat,
        "partsupp_supplier",
        partsupp,
        &["ps_suppkey"],
        supplier,
        &["s_suppkey"],
    );
    fk(
        &mut cat,
        "orders_customer",
        orders,
        &["o_custkey"],
        customer,
        &["c_custkey"],
    );
    fk(
        &mut cat,
        "lineitem_orders",
        lineitem,
        &["l_orderkey"],
        orders,
        &["o_orderkey"],
    );
    fk(
        &mut cat,
        "lineitem_part",
        lineitem,
        &["l_partkey"],
        part,
        &["p_partkey"],
    );
    fk(
        &mut cat,
        "lineitem_supplier",
        lineitem,
        &["l_suppkey"],
        supplier,
        &["s_suppkey"],
    );
    fk(
        &mut cat,
        "lineitem_partsupp",
        lineitem,
        &["l_partkey", "l_suppkey"],
        partsupp,
        &["ps_partkey", "ps_suppkey"],
    );

    (
        cat,
        TpchTables {
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_present() {
        let (cat, t) = tpch_catalog();
        assert_eq!(cat.table_count(), 8);
        for name in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(cat.table_by_name(name).is_some(), "missing {name}");
        }
        assert_eq!(cat.table(t.lineitem).columns.len(), 16);
        assert_eq!(cat.table(t.orders).columns.len(), 9);
    }

    #[test]
    fn foreign_key_graph_shape() {
        let (cat, t) = tpch_catalog();
        assert_eq!(cat.foreign_keys().count(), 10);
        // lineitem has four outgoing FKs.
        assert_eq!(cat.foreign_keys_from(t.lineitem).count(), 4);
        // region has none.
        assert_eq!(cat.foreign_keys_from(t.region).count(), 0);
        // All TPC-H foreign keys are over NOT NULL columns.
        for (id, _) in cat.foreign_keys() {
            assert!(cat.fk_is_non_null(id));
        }
    }

    #[test]
    fn composite_keys() {
        let (cat, t) = tpch_catalog();
        let li = cat.table(t.lineitem);
        let ok = li.column_by_name("l_orderkey").unwrap().0;
        let ln = li.column_by_name("l_linenumber").unwrap().0;
        assert!(li.is_key(&[ok, ln]));
        assert!(!li.covers_key(&[ok]));
        let ps = cat.table(t.partsupp);
        let pk = ps.column_by_name("ps_partkey").unwrap().0;
        let sk = ps.column_by_name("ps_suppkey").unwrap().0;
        assert!(ps.is_key(&[pk, sk]));
    }

    #[test]
    fn composite_fk_lineitem_partsupp() {
        let (cat, t) = tpch_catalog();
        let fk = cat
            .foreign_keys()
            .find(|(_, fk)| fk.name == "lineitem_partsupp")
            .unwrap()
            .1;
        assert_eq!(fk.from_table, t.lineitem);
        assert_eq!(fk.to_table, t.partsupp);
        assert_eq!(fk.from_columns.len(), 2);
    }
}
