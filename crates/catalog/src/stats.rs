//! Per-table and per-column statistics.
//!
//! The view-matching algorithm itself never consults statistics — one of the
//! paper's design points is that matching is purely structural. Statistics
//! feed two other parts of the reproduction:
//!
//! * the cost model of the Cascades-style optimizer (picking among the
//!   substitutes that matching produced), and
//! * the workload generator of section 5, which adds range predicates to a
//!   view "until the estimated cardinality of the SPJ part of the result was
//!   within 25-75% of the largest table included".

use crate::types::Value;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest non-null value observed.
    pub min: Value,
    /// Largest non-null value observed.
    pub max: Value,
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Fraction of rows that are NULL in this column.
    pub null_fraction: f64,
}

impl ColumnStats {
    /// Stats for a column with no usable information (e.g. all NULL).
    pub fn unknown() -> Self {
        ColumnStats {
            min: Value::Null,
            max: Value::Null,
            ndv: 0,
            null_fraction: 0.0,
        }
    }

    /// Estimated selectivity of `column = constant` under uniformity.
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv == 0 {
            1.0
        } else {
            (1.0 - self.null_fraction) / self.ndv as f64
        }
    }

    /// Estimated selectivity of restricting the column to `[lo, hi]` where
    /// the bounds are expressed as fractions of the observed value span.
    ///
    /// Returns `None` when the column is non-numeric-like (no interpolation
    /// possible), in which case callers should fall back to a default guess.
    pub fn range_selectivity(&self, lo: &Value, hi: &Value) -> Option<f64> {
        let (min, max) = (self.numeric(&self.min)?, self.numeric(&self.max)?);
        if max <= min {
            return Some(1.0);
        }
        let lo = self.numeric(lo)?.clamp(min, max);
        let hi = self.numeric(hi)?.clamp(min, max);
        if hi < lo {
            return Some(0.0);
        }
        Some(((hi - lo) / (max - min)).clamp(0.0, 1.0) * (1.0 - self.null_fraction))
    }

    fn numeric(&self, v: &Value) -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Per-column stats, indexed by column position.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats declaring `rows` rows and unknown column distributions.
    pub fn with_unknown_columns(rows: u64, n_columns: usize) -> Self {
        TableStats {
            rows,
            columns: (0..n_columns).map(|_| ColumnStats::unknown()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_stats(min: i64, max: i64, ndv: u64) -> ColumnStats {
        ColumnStats {
            min: Value::Int(min),
            max: Value::Int(max),
            ndv,
            null_fraction: 0.0,
        }
    }

    #[test]
    fn eq_selectivity_uniform() {
        let s = int_stats(1, 100, 100);
        assert!((s.eq_selectivity() - 0.01).abs() < 1e-12);
        assert_eq!(ColumnStats::unknown().eq_selectivity(), 1.0);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let s = int_stats(0, 100, 100);
        let sel = s
            .range_selectivity(&Value::Int(25), &Value::Int(75))
            .unwrap();
        assert!((sel - 0.5).abs() < 1e-12);
        // Clamped to the observed span.
        let sel = s
            .range_selectivity(&Value::Int(-50), &Value::Int(50))
            .unwrap();
        assert!((sel - 0.5).abs() < 1e-12);
        // Empty interval.
        let sel = s
            .range_selectivity(&Value::Int(80), &Value::Int(20))
            .unwrap();
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn range_selectivity_on_dates() {
        let s = ColumnStats {
            min: Value::Date(0),
            max: Value::Date(1000),
            ndv: 1000,
            null_fraction: 0.0,
        };
        let sel = s
            .range_selectivity(&Value::Date(0), &Value::Date(100))
            .unwrap();
        assert!((sel - 0.1).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_strings_unknown() {
        let s = ColumnStats {
            min: Value::Str("a".into()),
            max: Value::Str("z".into()),
            ndv: 26,
            null_fraction: 0.0,
        };
        assert!(s
            .range_selectivity(&Value::Str("a".into()), &Value::Str("m".into()))
            .is_none());
    }

    #[test]
    fn null_fraction_scales_selectivity() {
        let s = ColumnStats {
            min: Value::Int(0),
            max: Value::Int(10),
            ndv: 10,
            null_fraction: 0.5,
        };
        let sel = s
            .range_selectivity(&Value::Int(0), &Value::Int(10))
            .unwrap();
        assert!((sel - 0.5).abs() < 1e-12);
        assert!((s.eq_selectivity() - 0.05).abs() < 1e-12);
    }
}
